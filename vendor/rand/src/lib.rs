//! A dependency-free stand-in for the subset of the `rand` crate API this
//! workspace uses, vendored because the build environment has no access to
//! crates.io. It mirrors the rand 0.9 surface the code was written against:
//!
//! * [`Rng`] — `random::<T>()` and `random_range(range)`;
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`rngs::StdRng`] — the deterministic seeded generator.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real crate's ChaCha12, but the workspace only requires
//! *determinism per seed*, not stream compatibility. Every engine, test and
//! experiment here derives its randomness from `StdRng::seed_from_u64`, so
//! results are reproducible bit for bit across runs and platforms.

use std::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from raw random bits ("standard"
/// distribution): `f64`/`f32` in `[0, 1)`, `bool` fair coin, full-range
/// integers.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's multiply-shift maps 64 random bits onto [0, span)
                // with bias below 2^-64 — negligible and deterministic.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], mirroring the real crate).
pub trait Rng: RngCore {
    /// One value of `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// One value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A fair-ish coin with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! The deterministic standard generator.

    use super::{RngCore, SeedableRng};

    /// xoshiro256** — fast, high-quality, and fully deterministic per seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as the xoshiro authors
            // recommend (never yields the all-zero state).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let i = rng.random_range(0..7usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.random_range(3.0f64..5.0);
            assert!((3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_000..6_000).contains(&heads), "unbalanced coin: {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5..5usize);
    }
}
