//! E8 (kernel) — cost of the novelty score ρ(x) of Eq. (1) as the
//! reference set (population ∪ offspring ∪ archive) and `k` grow. This is
//! the master-side overhead ESS-NS adds per generation over the baselines,
//! and the path the batched novelty subsystem accelerates: the bench
//! compares the per-subject brute-force reference against the batched
//! engines — chunked brute force, the sorted-scan index, and their
//! backend-parallel (2-worker) variants — on identical inputs. All paths
//! produce bit-identical scores; only the wall time differs.

use ess_benches::microbench::{bench, group};
use evoalg::novelty::novelty_score;
use evoalg::{BehaviourMatrix, NoveltyEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn main() {
    group("novelty_knn (score one full generation, 1-D behaviours)");
    let mut rng = StdRng::seed_from_u64(7);
    for &n in &[64usize, 256, 1024, 4096] {
        // 1-D fitness behaviours — the paper's Eq. (2).
        let behaviours: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.random::<f64>()]).collect();
        let matrix = BehaviourMatrix::from_rows(&behaviours);
        for &k in &[5usize, 15] {
            // The reference: one brute-force call per subject over the
            // nested Vec<Vec<f64>> layout (Algorithm 1 lines 12–14 before
            // the batched subsystem).
            bench(&format!("n={n} k={k} per-subject brute"), 10, || {
                let mut acc = 0.0;
                for i in 0..behaviours.len() {
                    acc += novelty_score(black_box(i), black_box(&behaviours), k);
                }
                black_box(acc)
            });
            // The batched engines over the flat BehaviourMatrix.
            for engine in [
                NoveltyEngine::brute_force(),
                NoveltyEngine::brute_force().with_workers(2),
                NoveltyEngine::indexed(),
                NoveltyEngine::indexed().with_workers(2),
            ] {
                bench(&format!("n={n} k={k} engine {engine}"), 10, || {
                    black_box(engine.novelty_scores(black_box(&matrix), n, k))
                });
            }
        }
    }

    group("novelty_knn cross-check (all paths bit-identical)");
    let behaviours: Vec<Vec<f64>> = (0..512).map(|_| vec![rng.random::<f64>()]).collect();
    let matrix = BehaviourMatrix::from_rows(&behaviours);
    let reference: Vec<f64> = (0..512).map(|i| novelty_score(i, &behaviours, 5)).collect();
    for engine in [
        NoveltyEngine::brute_force(),
        NoveltyEngine::indexed(),
        NoveltyEngine::indexed().with_workers(2),
    ] {
        assert_eq!(
            engine.novelty_scores(&matrix, 512, 5),
            reference,
            "{engine} diverged"
        );
    }
    println!("cross-check OK: 3 engines × 512 subjects bit-identical to novelty_score");
}
