//! E8 (kernel) — cost of the novelty score ρ(x) of Eq. (1) as the
//! reference set (population ∪ offspring ∪ archive) and `k` grow. This is
//! the master-side overhead ESS-NS adds per generation over the baselines.

use ess_benches::microbench::{bench, group};
use evoalg::novelty::novelty_score;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn main() {
    group("novelty_knn (score one full generation)");
    let mut rng = StdRng::seed_from_u64(7);
    for &n in &[64usize, 256, 1024] {
        // 1-D fitness behaviours — the paper's Eq. (2).
        let behaviours: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.random::<f64>()]).collect();
        for &k in &[5usize, 15] {
            bench(&format!("n={n} k={k}"), 10, || {
                // Score a full generation (every member) like Algorithm 1's
                // lines 12–14.
                let mut acc = 0.0;
                for i in 0..behaviours.len() {
                    acc += novelty_score(black_box(i), black_box(&behaviours), k);
                }
                black_box(acc)
            });
        }
    }
}
