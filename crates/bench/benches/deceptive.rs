//! E5 (kernel) — full-search wall time of the NS-GA vs the fitness GA on
//! a deceptive benchmark at an equal evaluation budget: quantifies the
//! price of the novelty bookkeeping when the objective itself is cheap
//! (on the fire problem the simulations dominate and this overhead
//! disappears — compare with the `eval_backends` group).

use ess_benches::microbench::{bench, group};
use ess_ns::{NoveltyGa, NoveltyGaConfig};
use evoalg::benchmarks::deceptive_trap;
use evoalg::{GaConfig, GaEngine};
use std::hint::black_box;

const DIMS: usize = 16;
const GENS: u32 = 30;

fn main() {
    group("deceptive_trap_search (30 generations)");

    bench("ns_ga", 10, || {
        let cfg = NoveltyGaConfig {
            population_size: 24,
            offspring: 24,
            max_generations: GENS,
            fitness_threshold: 2.0,
            seed: 5,
            ..NoveltyGaConfig::default()
        };
        let mut eval =
            |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| deceptive_trap(g, 4)).collect() };
        black_box(
            NoveltyGa::new(DIMS, cfg)
                .run(&mut eval)
                .best_set
                .max_fitness(),
        )
    });

    bench("fitness_ga", 10, || {
        let mut engine = GaEngine::new(
            DIMS,
            GaConfig {
                population_size: 24,
                offspring: 24,
                seed: 5,
                ..GaConfig::default()
            },
        );
        let mut eval =
            |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| deceptive_trap(g, 4)).collect() };
        engine.evaluate_initial(&mut eval);
        for _ in 0..GENS {
            engine.step(&mut eval);
        }
        black_box(engine.stats().best_fitness)
    });
}
