//! E4 — fire simulator kernel throughput: one full propagation per
//! (grid size × fuel model), the cost model underneath every other
//! experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use firelib::sim::centre_ignition;
use firelib::{FireSim, Scenario, Terrain};
use std::hint::black_box;

fn bench_firesim(c: &mut Criterion) {
    let mut group = c.benchmark_group("firesim");
    group.sample_size(20);
    for &n in &[32usize, 64, 128] {
        for &model in &[1u8, 4, 10] {
            let sim = FireSim::new(Terrain::uniform(n, n, 100.0));
            let scenario = Scenario { model, wind_speed_mph: 10.0, ..Scenario::reference() };
            let ignition = centre_ignition(n, n);
            group.throughput(Throughput::Elements((n * n) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("NFFL{model:02}"), format!("{n}x{n}")),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(sim.simulate(
                            black_box(&scenario),
                            black_box(&ignition),
                            0.0,
                            500.0,
                        ))
                    })
                },
            );
        }
    }
    group.finish();

    // Per-cell override path (the two_ridge terrain): measures the
    // per-cell spread-table cost relative to the uniform fast path.
    let mut group = c.benchmark_group("firesim_overrides");
    group.sample_size(20);
    let n = 64usize;
    let mut slope = landscape::Grid::filled(n, n, 0.0f64);
    for r in 0..n {
        for c2 in 0..n {
            slope.set(r, c2, (c2 % 20) as f64);
        }
    }
    let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope));
    let scenario = Scenario { model: 2, wind_speed_mph: 8.0, ..Scenario::reference() };
    let ignition = centre_ignition(n, n);
    group.bench_function("per_cell_slope_64x64", |b| {
        b.iter(|| black_box(sim.simulate(&scenario, &ignition, 0.0, 500.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_firesim);
criterion_main!(benches);
