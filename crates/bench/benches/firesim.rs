//! E4 — fire simulator kernel throughput: one full propagation per
//! (grid size × fuel model), the cost model underneath every other
//! experiment — plus the SimArena acceptance benchmark: the arena hot path
//! against an emulation of the pre-arena per-cell evaluation on the
//! 200×200 corpus workload.

use ess_benches::microbench::{bench, group};
use firelib::sim::centre_ignition;
use firelib::spread::{wind_slope_max, SpreadInputs};
use firelib::{FireSim, Scenario, Terrain};
use std::hint::black_box;

fn main() {
    group("firesim (one 500-min propagation)");
    for &n in &[32usize, 64, 128] {
        for &model in &[1u8, 4, 10] {
            let sim = FireSim::new(Terrain::uniform(n, n, 100.0));
            let scenario = Scenario {
                model,
                wind_speed_mph: 10.0,
                ..Scenario::reference()
            };
            let ignition = centre_ignition(n, n);
            bench(&format!("NFFL{model:02} {n}x{n}"), 20, || {
                black_box(sim.simulate(black_box(&scenario), black_box(&ignition), 0.0, 500.0))
            });
        }
    }

    // Per-cell override path (the two_ridge terrain): measures the
    // per-cell spread-table cost relative to the uniform fast path.
    group("firesim_overrides");
    let n = 64usize;
    let mut slope = landscape::Grid::filled(n, n, 0.0f64);
    for r in 0..n {
        for c in 0..n {
            slope.set(r, c, (c % 20) as f64);
        }
    }
    let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope));
    let scenario = Scenario {
        model: 2,
        wind_speed_mph: 8.0,
        ..Scenario::reference()
    };
    let ignition = centre_ignition(n, n);
    bench("per_cell_slope_64x64", 20, || {
        black_box(sim.simulate(&scenario, &ignition, 0.0, 500.0))
    });

    // Arena vs per-cell slope path: same terrain, reused buffers.
    let mut arena = sim.arena();
    bench("per_cell_slope_64x64 (arena)", 20, || {
        sim.simulate_arena(&scenario, &ignition, 0.0, 500.0, &mut arena);
        black_box(arena.map().burned_count_at(500.0))
    });

    // The acceptance benchmark: one scenario evaluation on the 200×200
    // corpus workload, (a) emulating the pre-arena evaluation — a fresh
    // per-cell directional table plus a fresh-allocation simulate, exactly
    // the work the seed's simulate_into performed on a fuel mosaic — and
    // (b) on the SimArena hot path (per-fuel table cache + reused
    // buffers). The two propagations are asserted bit-identical first.
    group("workload archipelago_large (200x200 fuel mosaic)");
    let workload = firelib::workload::archipelago_large().build();
    let sim = workload.sim();
    let truth = workload.truth[0];
    let ignition = workload.ignition.clone();
    let horizon = *workload.times.last().expect("non-empty");

    let mut arena = sim.arena();
    let fresh = sim.simulate(&truth, &ignition, 0.0, horizon);
    let reused = sim.simulate_arena(&truth, &ignition, 0.0, horizon, &mut arena);
    assert_eq!(&fresh, reused, "arena path must be bit-identical");

    let beds = firelib::combustion::standard_beds();
    let terrain = sim.terrain();
    let (rows, cols) = (terrain.rows(), terrain.cols());
    let pre = bench("pre-arena emulation (per-cell tables)", 10, || {
        // The seed recomputed one directional table per cell per call …
        let mut tables = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let bed = &beds[terrain.fuel_at(r, c, truth.model) as usize];
                let table = if bed.burnable {
                    let inputs = SpreadInputs {
                        wind_fpm: truth.wind_speed_mph * firelib::MPH_TO_FPM,
                        wind_azimuth: truth.wind_dir_deg,
                        slope_steepness: truth.slope_deg.to_radians().tan(),
                        aspect_azimuth: truth.aspect_deg,
                    };
                    wind_slope_max(bed, &truth.moisture(), &inputs).compass_ros()
                } else {
                    [0.0; 8]
                };
                tables.push(table);
            }
        }
        black_box(&tables);
        // … and allocated the output map fresh.
        black_box(sim.simulate(&truth, &ignition, 0.0, horizon))
    });
    let arena_m = bench("SimArena hot path", 30, || {
        sim.simulate_arena(&truth, &ignition, 0.0, horizon, &mut arena);
        black_box(arena.map().burned_count_at(horizon))
    });
    println!(
        "\narena speedup on 200x200 workload: {:.2}x (min {:.3} ms -> {:.3} ms)",
        pre.min_ms / arena_m.min_ms,
        pre.min_ms,
        arena_m.min_ms
    );
}
