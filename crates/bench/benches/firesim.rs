//! E4 — fire simulator kernel throughput: one full propagation per
//! (grid size × fuel model), the cost model underneath every other
//! experiment.

use ess_benches::microbench::{bench, group};
use firelib::sim::centre_ignition;
use firelib::{FireSim, Scenario, Terrain};
use std::hint::black_box;

fn main() {
    group("firesim (one 500-min propagation)");
    for &n in &[32usize, 64, 128] {
        for &model in &[1u8, 4, 10] {
            let sim = FireSim::new(Terrain::uniform(n, n, 100.0));
            let scenario = Scenario {
                model,
                wind_speed_mph: 10.0,
                ..Scenario::reference()
            };
            let ignition = centre_ignition(n, n);
            bench(&format!("NFFL{model:02} {n}x{n}"), 20, || {
                black_box(sim.simulate(black_box(&scenario), black_box(&ignition), 0.0, 500.0))
            });
        }
    }

    // Per-cell override path (the two_ridge terrain): measures the
    // per-cell spread-table cost relative to the uniform fast path.
    group("firesim_overrides");
    let n = 64usize;
    let mut slope = landscape::Grid::filled(n, n, 0.0f64);
    for r in 0..n {
        for c in 0..n {
            slope.set(r, c, (c % 20) as f64);
        }
    }
    let sim = FireSim::new(Terrain::uniform(n, n, 100.0).with_slope(slope));
    let scenario = Scenario {
        model: 2,
        wind_speed_mph: 8.0,
        ..Scenario::reference()
    };
    let ignition = centre_ignition(n, n);
    bench("per_cell_slope_64x64", 20, || {
        black_box(sim.simulate(&scenario, &ignition, 0.0, 500.0))
    });
}
