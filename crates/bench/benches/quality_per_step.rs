//! E1 (kernel) — wall time of one full prediction step (OS + SS + CS + PS)
//! per system, at a reduced budget so the bench stays fast. The quality
//! comparison itself is the harness's `e1-quality` table; this bench pins
//! the per-step cost of each system.

use ess::cases;
use ess::fitness::EvalBackend;
use ess::pipeline::PredictionPipeline;
use ess_benches::microbench::{bench, group};
use ess_benches::Method;
use std::hint::black_box;

fn main() {
    let case = cases::tiny_test_case();
    group("prediction_run (tiny case, 0.25x budget)");
    for method in Method::ALL {
        bench(method.name(), 10, || {
            let mut opt = method.make(0.25);
            let pipeline = PredictionPipeline::new(EvalBackend::Serial, 7);
            black_box(pipeline.run(&case, opt.as_mut()).mean_quality())
        });
    }
}
