//! E1 (kernel) — wall time of one full prediction step (OS + SS + CS + PS)
//! per system, at a reduced budget so the bench stays fast. The quality
//! comparison itself is the harness's `e1-quality` table; this bench pins
//! the per-step cost of each system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ess::cases;
use ess::fitness::EvalBackend;
use ess::pipeline::PredictionPipeline;
use ess_benches::Method;
use std::hint::black_box;

fn bench_quality_step(c: &mut Criterion) {
    let case = cases::tiny_test_case();
    let mut group = c.benchmark_group("prediction_run");
    group.sample_size(10);
    for method in Method::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(method.name()),
            &method,
            |b, &method| {
                b.iter(|| {
                    let mut opt = method.make(0.25);
                    let pipeline = PredictionPipeline::new(EvalBackend::Serial, 7);
                    black_box(pipeline.run(&case, opt.as_mut()).mean_quality())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quality_step);
criterion_main!(benches);
