//! E3 (kernel) — one batch of scenario evaluations through each backend:
//! serial, the channel Master/Worker farm, and rayon work stealing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ess::cases;
use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use evoalg::BatchEvaluator;
use firelib::ScenarioSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

fn bench_backends(c: &mut Criterion) {
    let case = cases::chaparral_slope();
    let ctx = Arc::new(StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[0].clone(),
        case.fire_lines[1].clone(),
        case.times[0],
        case.times[1],
    ));
    let mut rng = StdRng::seed_from_u64(11);
    let batch: Vec<Vec<f64>> =
        (0..64).map(|_| ScenarioSpace.sample_genes(&mut rng).to_vec()).collect();

    let mut group = c.benchmark_group("eval_backends");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch.len() as u64));
    for (label, backend) in [
        ("serial", EvalBackend::Serial),
        ("master_worker_2", EvalBackend::MasterWorker(2)),
        ("rayon_2", EvalBackend::Rayon(2)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &backend, |b, &backend| {
            let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), backend);
            b.iter(|| black_box(evaluator.evaluate(black_box(&batch))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
