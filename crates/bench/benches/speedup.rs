//! E3 (kernel) — one batch of scenario evaluations through each backend of
//! the unified evaluation layer: serial, the channel Master/Worker farm,
//! and work stealing. The three produce bit-identical fitness vectors, so
//! this isolates pure scheduling cost.

use ess::cases;
use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use ess_benches::microbench::{bench, group};
use evoalg::BatchEvaluator;
use firelib::ScenarioSpace;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let case = cases::chaparral_slope();
    let ctx = Arc::new(StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[0].clone(),
        case.fire_lines[1].clone(),
        case.times[0],
        case.times[1],
    ));
    let mut rng = StdRng::seed_from_u64(11);
    let batch: Vec<Vec<f64>> = (0..64)
        .map(|_| ScenarioSpace.sample_genes(&mut rng).to_vec())
        .collect();

    group("eval_backends (64 scenarios/batch)");
    let mut reference: Option<Vec<u64>> = None;
    for backend in [
        EvalBackend::Serial,
        EvalBackend::WorkerPool(2),
        EvalBackend::Rayon(2),
    ] {
        let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), backend);
        let fitness = evaluator.evaluate(&batch);
        let bits: Vec<u64> = fitness.iter().map(|f| f.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "{backend} diverged from serial"),
        }
        bench(&backend.name(), 10, || evaluator.evaluate(&batch));
    }
}
