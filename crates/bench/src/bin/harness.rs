//! The report harness: regenerates every table and figure of the
//! reproduction (DESIGN.md §4) as aligned text on stdout plus CSV files in
//! `reports/`.
//!
//! ```text
//! harness <experiment|all> [--seeds N] [--scale F] [--cases a,b]
//!         [--backend serial|worker-pool:N|rayon:N] [--out DIR]
//!
//! experiments:
//!   table1      Table I   — fireLib parameter space
//!   fig1-trace  Fig. 1    — ESS dataflow trace
//!   fig2-kign   Fig. 2    — SKign calibration curve
//!   fig3-trace  Fig. 3    — ESS-NS dataflow trace (NS blocks visible)
//!   e1-quality  E1        — quality per step, per case, per method
//!   e2-diversity E2       — result-set diversity per method
//!   e3-speedup  E3        — Master/Worker + rayon scaling
//!   e4-throughput E4      — simulator throughput
//!   e5-deceptive E5       — NS vs fitness GA on deceptive functions
//!   e6-tuning   E6        — ESSIM-DE tuning operators
//!   e7-hybrid   E7        — weighted fitness/novelty ablation
//!   e8-ablation E8        — k / archive / bestSet / behaviour ablation
//!   e9-inclusion E9       — result-set composition under drift
//!   e10-noise   E10       — robustness to observation noise
//!   workloads   W         — workload corpus × backend sweep (+ BENCH_*.json)
//!   service     S         — concurrent-session throughput sweep (+ BENCH_service.json)
//!   novelty     N         — novelty-engine sweep: pop × archive × engine (+ BENCH_novelty.json)
//!   loadgen     L         — protocol-v2 load generation per scheduling policy (+ BENCH_serve_v2.json)
//!   fusion      F         — cross-session batch fusion vs per-session rounds (+ BENCH_fusion.json)
//!   landscape   K         — heap vs bucket vs tiled simulation kernels on the XL corpus (+ BENCH_landscape.json, bench_summary.md)
//!   serve                 — line-delimited JSON prediction service on stdin/stdout
//!   lint                  — workspace source lint pass (+ LINT_findings.json)
//!   audit                 — semantic audit: panic prover, layering DAG, determinism taint (+ AUDIT.json)
//!   verify-invariants     — model checking + adversarial invariant suite (+ INVARIANTS.json)
//! ```
//!
//! `all` regenerates every paper artifact (table1 … e10); `workloads`,
//! `service` and `novelty` benchmark this repo's own engine and must be
//! requested explicitly.
//!
//! `serve` turns the harness into a prediction server: each stdin line is
//! a JSON request — protocol v1 (`{"op":"run",...}`) or protocol v2
//! (`{"v":2,"id":N,"kind":"run",...}`, with streaming progress frames,
//! checkpoint/resume and bounded `advance`) — each stdout line a JSON
//! event; every accepted session multiplexes the one shared backend
//! selected with `--backend`, scheduled under `--policy` (round-robin,
//! weighted-fair-share or deadline-first).
//! `serve --self-test` runs the canned v1 script through the same loop
//! and verifies the summary; `serve --self-test-v2` runs the recorded v2
//! multi-client script, kills one session mid-script, resumes it from its
//! snapshot, and diffs the final reports against the uninterrupted golden
//! transcript (the CI smoke configurations).
//!
//! `--scale` shrinks every per-step evaluation budget proportionally
//! (default 1.0); `--seeds` sets the replicate count (default 3);
//! `--backend` selects the scenario-evaluation backend for the
//! pipeline-driven experiments (results are backend-independent — every
//! backend produces bit-identical fitness values — so this only changes
//! wall time; default `serial`); `--kernel` selects the fire-propagation
//! kernel those experiments simulate with (`heap`, `bucket` or
//! `tiled[:TILE[xWORKERS]]` — rasters are kernel-independent, so this too
//! only changes wall time; default `bucket`); `--quick` shrinks the
//! `workloads` sweep to smoke-test size (the CI configuration).
//!
//! `workloads` additionally writes one `BENCH_<workload>.json` per corpus
//! workload into `--out`, recording evaluation throughput per backend and
//! the end-to-end pipeline wall time — the cross-PR perf trail.

use ess::fitness::EvalBackend;
use ess::report::TextTable;
use ess_benches::experiments as exp;
use firelib::Kernel;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    experiment: String,
    seeds: usize,
    scale: f64,
    cases: Vec<String>,
    out: PathBuf,
    workers: Vec<usize>,
    backend: EvalBackend,
    kernel: Kernel,
    policy: ess_service::PolicyKind,
    quick: bool,
    fused: bool,
    self_test: bool,
    self_test_v2: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let experiment = argv.next().ok_or_else(usage)?;
    let mut args = Args {
        experiment,
        seeds: 3,
        scale: 1.0,
        cases: vec![
            "grass_uniform".into(),
            "chaparral_slope".into(),
            "shifting_wind".into(),
            "moisture_front".into(),
            "two_ridge".into(),
        ],
        out: PathBuf::from("reports"),
        workers: vec![2, 4],
        backend: EvalBackend::Serial,
        kernel: Kernel::Bucket,
        policy: ess_service::PolicyKind::RoundRobin,
        quick: false,
        fused: false,
        self_test: false,
        self_test_v2: false,
    };
    while let Some(flag) = argv.next() {
        let mut value = || argv.next().ok_or(format!("missing value for {flag}"));
        match flag.as_str() {
            "--seeds" => args.seeds = value()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--scale" => args.scale = value()?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--cases" => args.cases = value()?.split(',').map(str::to_string).collect(),
            "--out" => args.out = PathBuf::from(value()?),
            "--backend" => {
                args.backend = value()?
                    .parse()
                    .map_err(|e: parworker::ParseBackendError| e.to_string())?
            }
            "--kernel" => {
                args.kernel = value()?
                    .parse()
                    .map_err(|e: firelib::ParseKernelError| e.to_string())?
            }
            "--policy" => {
                args.policy = value()?
                    .parse()
                    .map_err(|e: ess_service::policy::ParsePolicyError| e.to_string())?
            }
            "--quick" => args.quick = true,
            "--fused" => args.fused = true,
            "--self-test" => args.self_test = true,
            "--self-test-v2" => args.self_test_v2 = true,
            "--workers" => {
                args.workers = value()?
                    .split(',')
                    .map(|w| w.parse().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<_, _>>()?
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.seeds == 0 {
        return Err("--seeds must be positive".into());
    }
    Ok(args)
}

fn usage() -> String {
    "usage: harness <table1|fig1-trace|fig2-kign|fig3-trace|e1-quality|e2-diversity|e3-speedup|e4-throughput|e5-deceptive|e6-tuning|e7-hybrid|e8-ablation|e9-inclusion|e10-noise|workloads|service|novelty|loadgen|fusion|landscape|serve|lint|audit|verify-invariants|all> [--seeds N] [--scale F] [--cases a,b] [--workers 2,4] [--backend serial|worker-pool:N|rayon:N] [--kernel heap|bucket|tiled[:TILE[xWORKERS]]] [--policy round-robin|weighted-fair-share|deadline-first] [--quick] [--fused] [--self-test] [--self-test-v2] [--out DIR]".to_string()
}

fn emit(args: &Args, id: &str, title: &str, table: &TextTable) {
    println!("== {id}: {title} ==\n");
    println!("{}", table.render());
    let path = args.out.join(format!("{id}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[written {}]\n", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}\n", path.display()),
    }
}

fn emit_text(args: &Args, id: &str, text: &str) {
    println!("{text}");
    let path = args.out.join(format!("{id}.txt"));
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, text) {
        Ok(()) => println!("[written {}]\n", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}\n", path.display()),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // The prediction server and the correctness tools: not experiments,
    // so they dispatch first.
    if args.experiment == "serve" {
        return serve_main(&args);
    }
    if args.experiment == "lint" {
        return lint_main(&args);
    }
    if args.experiment == "audit" {
        return audit_main(&args);
    }
    if args.experiment == "verify-invariants" {
        return verify_main(&args);
    }

    // Misspelled case names fail up front with a one-line error naming the
    // valid set, instead of panicking mid-experiment or silently skipping.
    if let Some(unknown) = args
        .cases
        .iter()
        .find(|name| ess::cases::by_name(name).is_none())
    {
        eprintln!(
            "{}\navailable cases: {}",
            ess::ServiceError::UnknownCase(unknown.clone()),
            ess::cases::case_names().join(", ")
        );
        return ExitCode::FAILURE;
    }

    let seeds: Vec<u64> = (0..args.seeds as u64).map(|i| 1000 + i).collect();
    let case_refs: Vec<&str> = args.cases.iter().map(String::as_str).collect();

    let mut ran = false;
    let want = |id: &str| args.experiment == id || args.experiment == "all";

    if want("table1") {
        emit(
            &args,
            "table1",
            "Table I — fireLib scenario parameters",
            &exp::table1(),
        );
        ran = true;
    }
    if want("fig1-trace") {
        emit_text(&args, "fig1-trace", &exp::fig1_trace());
        ran = true;
    }
    if want("fig2-kign") {
        emit(
            &args,
            "fig2-kign",
            "Fig. 2 — SKign calibration curve",
            &exp::fig2_kign(),
        );
        ran = true;
    }
    if want("fig3-trace") {
        emit_text(&args, "fig3-trace", &exp::fig3_trace());
        ran = true;
    }
    if want("e1-quality") {
        emit(
            &args,
            "e1-quality",
            "E1 — prediction quality per step (Jaccard), per case and method",
            &exp::e1_quality(&seeds, args.scale, &case_refs, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e2-diversity") {
        emit(
            &args,
            "e2-diversity",
            "E2 — diversity of the result set fed to the Statistical Stage",
            &exp::e2_diversity(&seeds, args.scale, &case_refs, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e3-speedup") {
        emit(
            &args,
            "e3-speedup",
            "E3 — Optimization Stage scaling by backend and worker count",
            &exp::e3_speedup(&args.workers),
        );
        ran = true;
    }
    if want("e4-throughput") {
        emit(
            &args,
            "e4-throughput",
            "E4 — fire simulator throughput",
            &exp::e4_throughput(),
        );
        ran = true;
    }
    if want("e5-deceptive") {
        emit(
            &args,
            "e5-deceptive",
            "E5 — NS-GA vs fitness GA on deceptive landscapes",
            &exp::e5_deceptive(&seeds),
        );
        ran = true;
    }
    if want("e6-tuning") {
        emit(
            &args,
            "e6-tuning",
            "E6 — effect of the ESSIM-DE tuning operators",
            &exp::e6_tuning(&seeds, args.scale, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e7-hybrid") {
        emit(
            &args,
            "e7-hybrid",
            "E7 — weighted fitness/novelty scoring ablation",
            &exp::e7_hybrid(&seeds, args.scale, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e8-ablation") {
        emit(
            &args,
            "e8-ablation",
            "E8 — NS hyper-parameter ablation (k, archive, bestSet, behaviour)",
            &exp::e8_ablation(&seeds, args.scale, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e9-inclusion") {
        emit(
            &args,
            "e9-inclusion",
            "E9 — result-set composition under a drifting truth",
            &exp::e9_inclusion(&seeds, args.scale, args.backend, args.kernel),
        );
        ran = true;
    }
    if want("e10-noise") {
        emit(
            &args,
            "e10-noise",
            "E10 — robustness to observation noise on the fire lines",
            &exp::e10_noise(&seeds, args.scale, args.backend, args.kernel),
        );
        ran = true;
    }

    // Not part of `all`: the corpus and serving sweeps benchmark this
    // repo's engine, they are not among the paper's tables/figures.
    if args.experiment == "workloads" {
        emit(
            &args,
            "workloads",
            "W — workload corpus × backend sweep (arena hot path)",
            &exp::workloads_sweep(&args.workers, args.quick, &args.out),
        );
        ran = true;
    }
    if args.experiment == "service" {
        emit(
            &args,
            "service",
            "S — concurrent sessions over one shared backend (scheduler throughput)",
            &exp::service_sweep(&args.workers, args.quick, &args.out),
        );
        ran = true;
    }
    if args.experiment == "novelty" {
        emit(
            &args,
            "novelty",
            "N — novelty-scoring engines: population × archive × engine (1-D behaviour)",
            &exp::novelty_sweep(&args.workers, args.quick, &args.out),
        );
        ran = true;
    }
    if args.experiment == "loadgen" {
        emit(
            &args,
            "loadgen",
            "L — protocol-v2 load generation: N clients × M sessions per scheduling policy",
            &ess_benches::loadgen::loadgen_sweep(args.quick, &args.out),
        );
        ran = true;
    }
    if args.experiment == "fusion" {
        emit(
            &args,
            "fusion",
            "F — cross-session batch fusion: fused vs unfused rounds per session count",
            &exp::fusion_sweep(args.quick, &args.out),
        );
        ran = true;
    }
    if args.experiment == "landscape" {
        emit(
            &args,
            "landscape",
            "K — simulation kernels on the XL landscape corpus (heap vs bucket vs tiled, serial vs pool)",
            &exp::landscape_sweep(args.quick, &args.out),
        );
        ran = true;
    }

    if !ran {
        eprintln!("unknown experiment '{}'\n{}", args.experiment, usage());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `harness lint`: the workspace source pass. Prints every finding
/// (allowed ones as the audit trail, unallowed ones as errors), writes
/// `reports/LINT_findings.json`, and fails the process when any finding
/// lacks a justified `// lint: allow(...)`.
fn lint_main(args: &Args) -> ExitCode {
    use ess_analysis::lint;
    let root = match lint::find_workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("lint: no enclosing Cargo workspace found");
            return ExitCode::FAILURE;
        }
    };
    let report = match lint::lint_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    for f in &report.findings {
        if f.allowed {
            let reason = f.reason.as_deref().unwrap_or("");
            println!("allow  {}:{} [{}] {reason}", f.file, f.line, f.rule);
        }
    }
    for f in report.unallowed() {
        eprintln!("error  {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
    }
    let path = args.out.join("LINT_findings.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, report.to_json().to_pretty()) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
    let unallowed = report.unallowed().len();
    println!(
        "lint: {} files scanned, {allowed} allowed finding(s), {unallowed} unallowed",
        report.files_scanned
    );
    if unallowed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `harness audit`: the semantic workspace auditor — panic-path prover
/// over the call graph, machine-checked layer map, determinism taint,
/// and the dead-API sweep. Prints every finding (allowed ones as the
/// audit trail), writes `reports/AUDIT.json`, and fails the process when
/// any finding lacks a justified `// audit: allow(...)`.
fn audit_main(args: &Args) -> ExitCode {
    use ess_analysis::audit;
    let started = std::time::Instant::now();
    let report = match audit::audit_current_workspace() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("audit: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed();
    let allowed = report.findings.iter().filter(|f| f.allowed).count();
    for f in &report.findings {
        if f.allowed {
            let reason = f.reason.as_deref().unwrap_or("");
            println!("allow  {}:{} [{}] {reason}", f.file, f.line, f.rule);
        }
    }
    for f in report.unallowed() {
        eprintln!("error  {}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        if let Some(witness) = &f.witness {
            eprintln!("       via {witness}");
        }
    }
    for r in &report.roots {
        println!(
            "root   {:<32} {} reachable fn(s), {} allowed site(s), {} unallowed",
            r.root, r.reachable, r.allowed_sites, r.unallowed_sites
        );
    }
    let path = args.out.join("AUDIT.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, report.to_json().to_pretty()) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
    let unallowed = report.unallowed().len();
    println!(
        "audit: {} files, {} symbols, {} call edges, {allowed} allowed finding(s), \
         {unallowed} unallowed in {} ms",
        report.files_scanned,
        report.symbols,
        report.call_edges,
        elapsed.as_millis()
    );
    if unallowed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `harness verify-invariants [--quick]`: bounded model checking of the
/// concurrency and protocol layers plus the adversarial fuzz and firelib
/// invariant drivers. Writes `reports/INVARIANTS.json`; any violation
/// prints a reproducible description and fails the process.
fn verify_main(args: &Args) -> ExitCode {
    let budget = if args.quick {
        ess_analysis::VerifyBudget::quick()
    } else {
        ess_analysis::VerifyBudget::full()
    };
    let report = match ess_analysis::verify_all(0x2022_1995, budget) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("verify-invariants: VIOLATION\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for run in &report.concurrency {
        println!(
            "checked {:<24} {:>8} schedules {:>10} steps",
            run.name, run.stats.schedules, run.stats.steps
        );
    }
    println!(
        "protocol walk: depth {} → {} op sequences over {} states",
        report.walk.depth, report.walk.sequences, report.walk.states
    );
    println!(
        "serve conformance: {} scripts, {} requests, {} frames checked",
        report.replay.scripts, report.replay.requests, report.replay.frames
    );
    println!(
        "fuzz: jsonio {} inputs ({} accepted), envelopes {}, serve lines {}",
        report.jsonio.inputs, report.jsonio.accepted, report.envelopes.inputs, report.serve.inputs
    );
    println!(
        "firelib: {} landscapes / {} cells bit-identical across kernels, {} hostile samples",
        report.firelib.terrains, report.firelib.cells, report.hostile.ros_samples
    );
    let path = args.out.join("INVARIANTS.json");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, report.to_json().to_pretty()) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
    println!("verify-invariants: all invariants hold");
    ExitCode::SUCCESS
}

/// `harness serve`: the line-delimited JSON prediction service. Every
/// accepted session multiplexes the one shared `--backend` pool. With
/// `--self-test`, a canned request script (8 concurrent sessions across
/// all four systems, plus error and cancel lines) runs through the same
/// loop and the summary is verified.
fn serve_main(args: &Args) -> ExitCode {
    use ess_service::serve;
    let stdout = std::io::stdout();
    if args.self_test {
        return match serve::self_test(stdout.lock(), args.backend) {
            Ok(summary) => {
                eprintln!(
                    "serve self-test OK on {}: {} accepted, {} finished, {} exhausted, \
                     {} cancelled, {} errors",
                    args.backend.name(),
                    summary.accepted,
                    summary.finished,
                    summary.exhausted,
                    summary.cancelled,
                    summary.errors
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.self_test_v2 {
        return match ess_benches::loadgen::serve_v2_self_test(args.backend) {
            Ok(transcript) => {
                println!("{transcript}");
                eprintln!(
                    "serve v2 self-test OK on {}: kill/resume transcript matches golden",
                    args.backend.name()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let stdin = std::io::stdin();
    match serve::serve_configured(
        stdin.lock(),
        stdout.lock(),
        args.backend,
        args.policy,
        args.fused,
    ) {
        Ok(summary) => {
            eprintln!(
                "served {} sessions on {}{} under {} ({} finished, {} exhausted, {} cancelled, \
                 {} restored, {} errors)",
                summary.accepted,
                args.backend.name(),
                if args.fused { " (fused rounds)" } else { "" },
                args.policy,
                summary.finished,
                summary.exhausted,
                summary.cancelled,
                summary.restored,
                summary.errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve transport error: {e}");
            ExitCode::FAILURE
        }
    }
}
