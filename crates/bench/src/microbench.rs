//! A tiny timing harness for the `benches/` targets.
//!
//! The benches were originally criterion targets; the workspace now builds
//! without external dependencies, so they are plain `harness = false`
//! binaries using this helper: warm up, run a fixed number of timed
//! iterations, and print min/mean per-iteration wall time (min is the
//! stable statistic on a noisy machine). Run with `cargo bench`.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Timed iterations.
    pub iters: u32,
    /// Minimum per-iteration wall time (ms).
    pub min_ms: f64,
    /// Mean per-iteration wall time (ms).
    pub mean_ms: f64,
}

/// Times `f` over `iters` iterations (plus one warm-up) and prints an
/// aligned result row under `label`.
pub fn bench<T, F: FnMut() -> T>(label: &str, iters: u32, mut f: F) -> Measurement {
    assert!(iters > 0, "need at least one iteration");
    black_box(f()); // warm-up: page in code paths and caches
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        let ms = t.elapsed().as_secs_f64() * 1e3;
        total += ms;
        min = min.min(ms);
    }
    let m = Measurement {
        iters,
        min_ms: min,
        mean_ms: total / iters as f64,
    };
    println!(
        "{label:<44} {:>10.3} ms min {:>10.3} ms mean  ({iters} iters)",
        m.min_ms, m.mean_ms
    );
    m
}

/// Prints a group header.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let m = bench("spin", 3, || {
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert_eq!(m.iters, 3);
        assert!(m.min_ms >= 1.0, "sleep mis-measured: {m:?}");
        assert!(m.mean_ms >= m.min_ms);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iters_rejected() {
        let _ = bench("nope", 0, || ());
    }
}
