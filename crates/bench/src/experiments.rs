//! The experiment implementations behind the `harness` binary — one
//! function per table/figure of DESIGN.md §4.

use crate::methods::Method;
use ess::calibration::skign_search;
use ess::cases::{self, BurnCase};
use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use ess::pipeline::{PredictionPipeline, RunReport};
use ess::report::{f2, f4, TextTable};
use ess::stages::statistical_stage_genomes;
use ess_ns::{
    BehaviourSpace, EssNs, EssNsConfig, InclusionPolicy, NoveltyGa, NoveltyGaConfig, ScoringPolicy,
};
use ess_service::jsonio::Json;
use evoalg::benchmarks::{deceptive_trap, two_peaks};
use evoalg::{BatchEvaluator, GaConfig, GaEngine};
use firelib::sim::centre_ignition;
use firelib::{FireSim, Kernel, Scenario, ScenarioSpace, Terrain};
use parworker::{SpeedupRow, Stopwatch};
use std::sync::Arc;

/// T1 — regenerates Table I from the in-code parameter definitions.
pub fn table1() -> TextTable {
    let mut t = TextTable::new(["Parameter", "Description", "Range", "Unit"]);
    for d in ScenarioSpace.params() {
        let range = if d.integer {
            format!("{}-{}", d.lo as i64, d.hi as i64)
        } else {
            format!("{}-{}", d.lo, d.hi)
        };
        t.row([
            d.name.to_string(),
            d.description.to_string(),
            range,
            d.unit.to_string(),
        ]);
    }
    t
}

/// Builds the step-1 evaluation context of a case.
fn step1_context(case: &BurnCase) -> Arc<StepContext> {
    Arc::new(StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[0].clone(),
        case.fire_lines[1].clone(),
        case.times[0],
        case.times[1],
    ))
}

/// F1 — a narrated trace of one ESS prediction step (the Fig. 1 dataflow).
pub fn fig1_trace() -> String {
    let case = cases::grass_uniform();
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 1 dataflow trace — one ESS prediction step on '{}'\n\n",
        case.name
    ));
    let ctx = step1_context(&case);
    out.push_str(&format!(
        "[input]      RFL_0: {} burned cells at t={} min; RFL_1: {} cells at t={} min\n",
        case.fire_lines[0].burned_area(),
        case.times[0],
        case.fire_lines[1].burned_area(),
        case.times[1],
    ));

    // OS-Master / OS-Workers: fitness GA over scenarios (PV{1..n} → FS → FF).
    let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::WorkerPool(2));
    let mut ess = Method::Ess.make(1.0);
    let outcome = ess.optimize(&mut evaluator, 1);
    out.push_str(&format!(
        "[OS]         PEA evolved {} generations; {} scenario evaluations scattered to 2 workers; best FF = {}\n",
        outcome.generations,
        outcome.evaluations,
        f4(outcome.best_fitness),
    ));
    out.push_str(&format!(
        "[OS output]  PV{{1..{}}}: the final population (ESS result-set policy)\n",
        outcome.result_set.len()
    ));

    // SS: aggregation into the probability matrix.
    let matrix = statistical_stage_genomes(&ctx, &outcome.result_set);
    out.push_str(&format!(
        "[SS]         aggregated {} simulated maps into an ignition-probability matrix ({} distinct levels)\n",
        matrix.samples(),
        matrix.distinct_levels().len(),
    ));

    // CS: SKign.
    let cal = skign_search(&matrix, &case.fire_lines[1], Some(&case.fire_lines[0]));
    out.push_str(&format!(
        "[CS]         SKign over {} candidate thresholds → Kign = {} (fitness {})\n",
        cal.curve.len(),
        f4(cal.kign),
        f4(cal.fitness),
    ));

    // PS: prediction for t2 with the calibrated Kign.
    let next_ctx = StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[1].clone(),
        case.fire_lines[2].clone(),
        case.times[1],
        case.times[2],
    );
    let pred_matrix = statistical_stage_genomes(&next_ctx, &outcome.result_set);
    let ps = ess::calibration::PredictionStage::new(cal.kign);
    let quality = ps.quality(&pred_matrix, &case.fire_lines[2], Some(&case.fire_lines[1]));
    out.push_str(&format!(
        "[PS]         PFL_2 = threshold(matrix_2, Kign) → prediction quality vs RFL_2 = {}\n",
        f4(quality),
    ));
    out
}

/// F2 — the SKign calibration curve (threshold vs fitness) on one step.
pub fn fig2_kign() -> TextTable {
    let case = cases::grass_uniform();
    let ctx = step1_context(&case);
    let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::Serial);
    let mut essns = Method::EssNs.make(1.0);
    let outcome = essns.optimize(&mut evaluator, 2);
    let matrix = statistical_stage_genomes(&ctx, &outcome.result_set);
    let cal = skign_search(&matrix, &case.fire_lines[1], Some(&case.fire_lines[0]));
    let mut t = TextTable::new(["threshold", "fitness", "chosen"]);
    for (k, f) in &cal.curve {
        t.row([
            f4(*k),
            f4(*f),
            if (*k - cal.kign).abs() < 1e-12 {
                "<= Kign"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// F3 — a narrated trace of one ESS-NS step (the Fig. 3 dataflow), showing
/// the NS-specific blocks: ρ(x), the archive, and bestSet.
pub fn fig3_trace() -> String {
    let case = cases::grass_uniform();
    let ctx = step1_context(&case);
    let mut out = String::new();
    out.push_str(&format!(
        "Fig. 3 dataflow trace — one ESS-NS prediction step on '{}'\n\n",
        case.name
    ));
    let cfg = NoveltyGaConfig {
        max_generations: 10,
        ..NoveltyGaConfig::default()
    };
    let engine = NoveltyGa::new(firelib::GENE_COUNT, cfg);
    let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::WorkerPool(2));
    let outcome = engine.run(&mut evaluator);
    out.push_str(
        "[OS: NS-based GA] per-generation state (novelty-driven; fitness only recorded)\n",
    );
    out.push_str(
        "gen  maxFitness(bestSet)  meanNovelty(pop)  meanFitness(pop)  archive  bestSet\n",
    );
    for h in &outcome.history {
        out.push_str(&format!(
            "{:<4} {:<20} {:<17} {:<17} {:<8} {}\n",
            h.generation,
            f4(h.max_fitness),
            f4(h.mean_novelty),
            f4(h.mean_fitness),
            h.archive_len,
            h.best_set_len,
        ));
    }
    out.push_str(&format!(
        "\n[OS output]  bestSet: {} accumulated high-fitness scenarios (NOT the final population)\n",
        outcome.best_set.len()
    ));
    let genomes = outcome.best_set.genomes();
    let matrix = statistical_stage_genomes(&ctx, &genomes);
    let cal = skign_search(&matrix, &case.fire_lines[1], Some(&case.fire_lines[0]));
    out.push_str(&format!(
        "[SS]         {} maps aggregated; [CS] Kign = {} (fitness {})\n",
        matrix.samples(),
        f4(cal.kign),
        f4(cal.fitness)
    ));
    let div = evoalg::diversity::report(&genomes);
    out.push_str(&format!(
        "[diversity]  result set: mean pairwise distance {}, {} distinct of {}\n",
        f4(div.mean_pairwise),
        div.distinct,
        div.size
    ));
    out
}

/// Runs one method over one case for several seeds.
pub fn run_replicates(
    method: Method,
    case: &BurnCase,
    seeds: &[u64],
    scale: f64,
    backend: EvalBackend,
    kernel: Kernel,
) -> Vec<RunReport> {
    seeds
        .iter()
        .map(|&seed| {
            let mut opt = method.make(scale);
            PredictionPipeline::new(backend, seed)
                .with_kernel(kernel)
                .run(case, opt.as_mut())
        })
        .collect()
}

fn mean_of(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// E1 — prediction quality per step, per case, per method (the headline
/// comparison; reproduces the quality-per-step evaluation protocol of the
/// predecessor systems). `backend` selects where scenario batches run;
/// results are backend-independent (only wall time changes).
pub fn e1_quality(
    seeds: &[u64],
    scale: f64,
    case_names: &[&str],
    backend: EvalBackend,
    kernel: Kernel,
) -> TextTable {
    let mut t = TextTable::new([
        "case",
        "method",
        "step",
        "quality_mean",
        "quality_min",
        "quality_max",
        "evals_mean",
    ]);
    for name in case_names {
        let case = cases::by_name(name).unwrap_or_else(|| panic!("unknown case {name}"));
        for method in Method::ALL {
            let reports = run_replicates(method, &case, seeds, scale, backend, kernel);
            // Per predicted instant: collect quality across seeds.
            let n_steps = reports[0].steps.len();
            for si in 0..n_steps {
                let qs: Vec<f64> = reports.iter().filter_map(|r| r.steps[si].quality).collect();
                if qs.is_empty() {
                    continue; // the first step has no prediction
                }
                let evals: Vec<f64> = reports
                    .iter()
                    .map(|r| r.steps[si].evaluations as f64)
                    .collect();
                t.row([
                    case.name.to_string(),
                    method.name().to_string(),
                    format!("t{}", reports[0].steps[si].step + 1),
                    f4(mean_of(&qs)),
                    f4(qs.iter().copied().fold(f64::INFINITY, f64::min)),
                    f4(qs.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                    f2(mean_of(&evals)),
                ]);
            }
            // Summary row.
            let means: Vec<f64> = reports.iter().map(RunReport::mean_quality).collect();
            t.row([
                case.name.to_string(),
                method.name().to_string(),
                "mean".to_string(),
                f4(mean_of(&means)),
                f4(means.iter().copied().fold(f64::INFINITY, f64::min)),
                f4(means.iter().copied().fold(f64::NEG_INFINITY, f64::max)),
                f2(mean_of(
                    &reports
                        .iter()
                        .map(|r| r.total_evaluations() as f64)
                        .collect::<Vec<_>>(),
                )),
            ]);
        }
    }
    t
}

/// E2 — diversity of the result set fed to the Statistical Stage.
pub fn e2_diversity(
    seeds: &[u64],
    scale: f64,
    case_names: &[&str],
    backend: EvalBackend,
    kernel: Kernel,
) -> TextTable {
    let mut t = TextTable::new([
        "case",
        "method",
        "mean_pairwise_dist",
        "mean_gene_std",
        "distinct_frac",
        "fitness_iqr_of_set",
    ]);
    for name in case_names {
        let case = cases::by_name(name).unwrap_or_else(|| panic!("unknown case {name}"));
        for method in Method::ALL {
            let reports = run_replicates(method, &case, seeds, scale, backend, kernel);
            let mut pair = Vec::new();
            let mut gstd = Vec::new();
            let mut dfrac = Vec::new();
            for r in &reports {
                for s in &r.steps {
                    pair.push(s.diversity.mean_pairwise);
                    gstd.push(s.diversity.mean_gene_std);
                    dfrac.push(s.diversity.distinct as f64 / s.diversity.size.max(1) as f64);
                }
            }
            // Fitness IQR of the result set on the first step of the first
            // seed (re-evaluated): spread of the *scores* in the set.
            let ctx = step1_context(&case);
            let mut opt = method.make(scale);
            let mut ev = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::Serial);
            let out = opt.optimize(&mut ev, seeds[0]);
            let fits = ev.evaluate(&out.result_set);
            t.row([
                case.name.to_string(),
                method.name().to_string(),
                f4(mean_of(&pair)),
                f4(mean_of(&gstd)),
                f4(mean_of(&dfrac)),
                f4(landscape::metrics::iqr(&fits)),
            ]);
        }
    }
    t
}

/// Builds the E3 scaling workload: a deployment-scale raster (128×128,
/// hour-long step) so one simulation costs milliseconds, like the
/// predecessor systems' maps — on toy grids the task farm's channel
/// overhead would dominate and hide the scheduling behaviour.
fn speedup_context() -> Arc<StepContext> {
    let n = 128usize;
    let sim = Arc::new(FireSim::new(Terrain::uniform(n, n, 100.0)));
    let ignition = centre_ignition(n, n);
    let truth = Scenario {
        wind_speed_mph: 10.0,
        wind_dir_deg: 45.0,
        ..Scenario::reference()
    };
    let target = sim.simulate_fire_line(&truth, &ignition, 0.0, 60.0);
    Arc::new(StepContext::new(sim, ignition, target, 0.0, 60.0))
}

/// E3 — Master/Worker scaling of one Optimization Stage. This is the
/// apples-to-apples backend comparison: every configuration runs the
/// identical search (bit-identical fitness values), so the table isolates
/// pure scheduling cost.
pub fn e3_speedup(worker_counts: &[usize]) -> TextTable {
    let ctx = speedup_context();
    let run_with = |backend: EvalBackend| -> f64 {
        let mut opt = Method::EssNs.make(1.0);
        let mut ev = ScenarioEvaluator::new(Arc::clone(&ctx), backend);
        let sw = Stopwatch::start();
        let _ = opt.optimize(&mut ev, 99);
        sw.elapsed_ms()
    };
    // Warm-up (page in the simulator paths).
    let _ = run_with(EvalBackend::Serial);
    let baseline_ms = run_with(EvalBackend::Serial);
    let baseline = std::time::Duration::from_secs_f64(baseline_ms / 1e3);

    let mut t = TextTable::new(["backend", "workers", "wall_ms", "speedup", "efficiency"]);
    t.row([
        "serial".to_string(),
        "1".to_string(),
        f2(baseline_ms),
        f2(1.0),
        f2(1.0),
    ]);
    for &w in worker_counts {
        for backend in [EvalBackend::WorkerPool(w), EvalBackend::Rayon(w)] {
            let ms = run_with(backend);
            let row = SpeedupRow::new(w, std::time::Duration::from_secs_f64(ms / 1e3), baseline);
            t.row([
                backend.name(),
                w.to_string(),
                f2(ms),
                f2(row.speedup),
                f2(row.efficiency),
            ]);
        }
    }
    t
}

/// E4 — simulator throughput (cells/s) across grid sizes and fuel models.
pub fn e4_throughput() -> TextTable {
    let mut t = TextTable::new(["grid", "fuel_model", "wall_ms_per_sim", "kcells_per_s"]);
    for &n in &[32usize, 64, 128] {
        for &model in &[1u8, 4, 10] {
            let sim = FireSim::new(Terrain::uniform(n, n, 100.0));
            let scenario = Scenario {
                model,
                wind_speed_mph: 10.0,
                ..Scenario::reference()
            };
            let ignition = centre_ignition(n, n);
            // Warm-up + measure.
            let _ = sim.simulate(&scenario, &ignition, 0.0, 500.0);
            let reps = 20;
            let sw = Stopwatch::start();
            for _ in 0..reps {
                std::hint::black_box(sim.simulate(&scenario, &ignition, 0.0, 500.0));
            }
            let ms = sw.elapsed_ms() / reps as f64;
            let kcps = (n * n) as f64 / ms; // cells per ms = kcells/s
            t.row([
                format!("{n}x{n}"),
                format!("NFFL{model:02}"),
                f4(ms),
                f2(kcps),
            ]);
        }
    }
    t
}

/// E5 — the §II-C exploration argument at equal evaluation budgets.
///
/// Each algorithm is judged by the **result set** it would hand to the
/// Statistical Stage — the NS-GA's `bestSet`, the fitness GA's final
/// population — because that set is what the ESS systems consume. Success
/// per function:
///
/// * `sphere` / `trap` / `two_peaks`: the set contains a global optimum
///   (the conventional success criterion);
/// * `twin_basins`: the set covers **both** fitness-equal basins — the
///   uncertainty-reduction property ("different solutions may be
///   genotypically far apart in the search space, but may still have
///   acceptable fitness values that contribute to the prediction",
///   §II-B).
pub fn e5_deceptive(seeds: &[u64]) -> TextTable {
    use evoalg::benchmarks::{covers_both_basins, twin_basins};
    let mut t = TextTable::new([
        "function",
        "algorithm",
        "best_fitness_mean",
        "set_success_rate",
        "evaluations",
    ]);
    type SetPredicate = Box<dyn Fn(&[Vec<f64>]) -> bool>;
    type Objective = (
        &'static str,
        Box<dyn Fn(&[f64]) -> f64>,
        SetPredicate,
        usize,
    );
    let objectives: Vec<Objective> = vec![
        (
            "sphere(6)",
            Box::new(evoalg::benchmarks::sphere),
            Box::new(|set: &[Vec<f64>]| set.iter().any(|g| evoalg::benchmarks::sphere(g) > 0.995)),
            6,
        ),
        (
            "trap(16,b=4)",
            Box::new(|g: &[f64]| deceptive_trap(g, 4)),
            Box::new(|set: &[Vec<f64>]| set.iter().any(|g| evoalg::benchmarks::trap_is_optimal(g))),
            16,
        ),
        (
            "two_peaks(4)",
            Box::new(|g: &[f64]| two_peaks(g, 0.6)),
            Box::new(|set: &[Vec<f64>]| {
                set.iter()
                    .any(|g| evoalg::benchmarks::two_peaks_is_optimal(g, 0.05))
            }),
            4,
        ),
        (
            "twin_basins(2)",
            Box::new(twin_basins),
            Box::new(|set: &[Vec<f64>]| covers_both_basins(set)),
            2,
        ),
    ];
    let gens = 60u32;
    for (fname, f, set_success, dims) in &objectives {
        // --- NS, with the paper's fitness-difference behaviour (Eq. 2) and
        // with the standard genotypic behaviour (ablation) ---
        for (label, behaviour) in [
            ("NS-GA (Eq.2 dist)", BehaviourSpace::Fitness),
            ("NS-GA (genotype)", BehaviourSpace::Genotype),
        ] {
            let mut ns_best = Vec::new();
            let mut ns_success = 0usize;
            let mut evals = 0u64;
            for &seed in seeds {
                let cfg = NoveltyGaConfig {
                    population_size: 24,
                    offspring: 24,
                    max_generations: gens,
                    fitness_threshold: 2.0,
                    behaviour,
                    seed,
                    ..NoveltyGaConfig::default()
                };
                let mut eval = |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| f(g)).collect() };
                let out = NoveltyGa::new(*dims, cfg).run(&mut eval);
                ns_best.push(out.best_set.max_fitness());
                if set_success(&out.best_set.genomes()) {
                    ns_success += 1;
                }
                evals = out.evaluations;
            }
            t.row([
                fname.to_string(),
                label.to_string(),
                f4(mean_of(&ns_best)),
                f2(ns_success as f64 / seeds.len() as f64),
                evals.to_string(),
            ]);
        }
        // --- fitness GA: result set = final population (the ESS policy) ---
        let mut ga_best = Vec::new();
        let mut ga_success = 0usize;
        let mut ga_evals = 0u64;
        for &seed in seeds {
            let mut engine = GaEngine::new(
                *dims,
                GaConfig {
                    population_size: 24,
                    offspring: 24,
                    seed,
                    ..GaConfig::default()
                },
            );
            let mut eval = |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| f(g)).collect() };
            engine.evaluate_initial(&mut eval);
            let mut best_f = f64::NEG_INFINITY;
            for _ in 0..gens {
                best_f = best_f.max(engine.step(&mut eval).best_fitness);
            }
            ga_best.push(best_f);
            if set_success(&engine.population().genomes()) {
                ga_success += 1;
            }
            ga_evals = engine.evaluations();
        }
        t.row([
            fname.to_string(),
            "fitness-GA".to_string(),
            f4(mean_of(&ga_best)),
            f2(ga_success as f64 / seeds.len() as f64),
            ga_evals.to_string(),
        ]);
    }
    t
}

/// E6 — the ESSIM-DE tuning operators' effect (restart \[21\] + IQR \[22\]).
///
/// The tuning papers operate at generation budgets long enough for
/// restarts to amortise (a restart spends evaluations re-seeding before it
/// can recover), so this experiment runs ESSIM-DE with a 30-generation
/// cap — roughly 3× the E1 budget — for both variants.
pub fn e6_tuning(seeds: &[u64], scale: f64, backend: EvalBackend, kernel: Kernel) -> TextTable {
    use ess::essim_de::{EssimDe, EssimDeConfig, TuningConfig};
    let mut t = TextTable::new([
        "case",
        "variant",
        "mean_quality",
        "mean_evals",
        "mean_wall_ms",
    ]);
    for name in ["shifting_wind", "moisture_front"] {
        let case = cases::by_name(name).unwrap();
        for (variant, tuning) in [
            ("untuned", TuningConfig::disabled()),
            ("tuned", TuningConfig::enabled()),
        ] {
            let mut qualities = Vec::new();
            let mut evals = Vec::new();
            let mut walls = Vec::new();
            for &seed in seeds {
                let s = |v: usize| ((v as f64) * scale).round().max(4.0) as usize;
                let mut opt = EssimDe::new(EssimDeConfig {
                    islands: 3,
                    island_population: s(12),
                    result_set_size: s(24),
                    max_generations: 30,
                    tuning,
                    ..EssimDeConfig::default()
                });
                let r = PredictionPipeline::new(backend, seed)
                    .with_kernel(kernel)
                    .run(&case, &mut opt);
                qualities.push(r.mean_quality());
                evals.push(r.total_evaluations() as f64);
                walls.push(r.total_ms);
            }
            t.row([
                name.to_string(),
                variant.to_string(),
                f4(mean_of(&qualities)),
                f2(mean_of(&evals)),
                f2(mean_of(&walls)),
            ]);
        }
    }
    t
}

/// E7 — the hybrid fitness/novelty scoring ablation (§IV), plus the
/// NSLC quality-diversity variant (\[26\]).
pub fn e7_hybrid(seeds: &[u64], scale: f64, backend: EvalBackend, kernel: Kernel) -> TextTable {
    let case = cases::shifting_wind();
    let mut t = TextTable::new([
        "scoring",
        "mean_quality",
        "mean_diversity",
        "mean_best_fitness",
    ]);
    let mut policies: Vec<(String, ScoringPolicy)> =
        vec![("w=1.00 (pure NS)".into(), ScoringPolicy::PureNovelty)];
    for &w in &[0.75, 0.5, 0.25, 0.0] {
        policies.push((
            format!("w={w:.2}"),
            ScoringPolicy::Weighted { novelty_weight: w },
        ));
    }
    policies.push((
        "NSLC (w=0.5)".into(),
        ScoringPolicy::NoveltyLocalCompetition {
            novelty_weight: 0.5,
        },
    ));
    for (label, scoring) in policies {
        let mut qualities = Vec::new();
        let mut diversities = Vec::new();
        let mut bests = Vec::new();
        for &seed in seeds {
            let s = |v: usize| ((v as f64) * scale).round().max(4.0) as usize;
            let mut opt = EssNs::new(EssNsConfig {
                algorithm: NoveltyGaConfig {
                    population_size: s(32),
                    offspring: s(32),
                    best_set_capacity: s(24),
                    scoring,
                    ..NoveltyGaConfig::default()
                },
                inclusion: InclusionPolicy::BestOnly,
                backend,
                ..EssNsConfig::default()
            });
            let r = PredictionPipeline::new(backend, seed)
                .with_kernel(kernel)
                .run(&case, &mut opt);
            qualities.push(r.mean_quality());
            diversities.push(r.mean_diversity());
            bests.push(mean_of(
                &r.steps
                    .iter()
                    .map(|st| st.os_best_fitness)
                    .collect::<Vec<_>>(),
            ));
        }
        t.row([
            label,
            f4(mean_of(&qualities)),
            f4(mean_of(&diversities)),
            f4(mean_of(&bests)),
        ]);
    }
    t
}

/// E8 — NS hyper-parameter ablation: `k`, archive capacity, `bestSet` size.
pub fn e8_ablation(seeds: &[u64], scale: f64, backend: EvalBackend, kernel: Kernel) -> TextTable {
    let case = cases::two_ridge();
    let mut t = TextTable::new([
        "parameter",
        "value",
        "mean_quality",
        "mean_diversity",
        "mean_evals",
    ]);
    let s = |v: usize| ((v as f64) * scale).round().max(4.0) as usize;
    let base = NoveltyGaConfig {
        population_size: s(32),
        offspring: s(32),
        best_set_capacity: s(24),
        archive_capacity: s(64),
        ..NoveltyGaConfig::default()
    };
    let mut run_cfg = |label: &str, value: String, algorithm: NoveltyGaConfig| {
        let mut qualities = Vec::new();
        let mut diversities = Vec::new();
        let mut evals = Vec::new();
        for &seed in seeds {
            let mut opt = EssNs::new(EssNsConfig {
                algorithm,
                inclusion: InclusionPolicy::BestOnly,
                backend,
                ..EssNsConfig::default()
            });
            let r = PredictionPipeline::new(backend, seed)
                .with_kernel(kernel)
                .run(&case, &mut opt);
            qualities.push(r.mean_quality());
            diversities.push(r.mean_diversity());
            evals.push(r.total_evaluations() as f64);
        }
        t.row([
            label.to_string(),
            value,
            f4(mean_of(&qualities)),
            f4(mean_of(&diversities)),
            f2(mean_of(&evals)),
        ]);
    };
    for &k in &[3usize, 5, 10, 15] {
        run_cfg(
            "k",
            k.to_string(),
            NoveltyGaConfig {
                novelty_neighbours: k,
                ..base
            },
        );
    }
    for &cap in &[16usize, 64, 256] {
        run_cfg(
            "archive",
            cap.to_string(),
            NoveltyGaConfig {
                archive_capacity: s(cap).max(4),
                ..base
            },
        );
    }
    for &bs in &[8usize, 24, 48] {
        run_cfg(
            "bestSet",
            bs.to_string(),
            NoveltyGaConfig {
                best_set_capacity: s(bs).max(4),
                ..base
            },
        );
    }
    // Behaviour-space ablation rides along (fitness vs genotype distance).
    run_cfg(
        "behaviour",
        "genotype".to_string(),
        NoveltyGaConfig {
            behaviour: BehaviourSpace::Genotype,
            ..base
        },
    );
    t
}

/// E9 — result-set composition under a drifting truth (§IV).
pub fn e9_inclusion(seeds: &[u64], scale: f64, backend: EvalBackend, kernel: Kernel) -> TextTable {
    let case = cases::shifting_wind();
    let mut t = TextTable::new(["policy", "mean_quality", "mean_set_size", "mean_diversity"]);
    let policies: Vec<(String, InclusionPolicy)> = vec![
        ("best-only".into(), InclusionPolicy::BestOnly),
        (
            "novel-10%".into(),
            InclusionPolicy::WithNovel { fraction: 0.10 },
        ),
        (
            "novel-25%".into(),
            InclusionPolicy::WithNovel { fraction: 0.25 },
        ),
        (
            "random-10%".into(),
            InclusionPolicy::WithRandom { fraction: 0.10 },
        ),
        (
            "random-25%".into(),
            InclusionPolicy::WithRandom { fraction: 0.25 },
        ),
    ];
    let s = |v: usize| ((v as f64) * scale).round().max(4.0) as usize;
    for (label, inclusion) in policies {
        let mut qualities = Vec::new();
        let mut sizes = Vec::new();
        let mut diversities = Vec::new();
        for &seed in seeds {
            let mut opt = EssNs::new(EssNsConfig {
                algorithm: NoveltyGaConfig {
                    population_size: s(32),
                    offspring: s(32),
                    best_set_capacity: s(24),
                    ..NoveltyGaConfig::default()
                },
                inclusion,
                backend,
                ..EssNsConfig::default()
            });
            let r = PredictionPipeline::new(backend, seed)
                .with_kernel(kernel)
                .run(&case, &mut opt);
            qualities.push(r.mean_quality());
            sizes.push(mean_of(
                &r.steps
                    .iter()
                    .map(|st| st.diversity.size as f64)
                    .collect::<Vec<_>>(),
            ));
            diversities.push(r.mean_diversity());
        }
        t.row([
            label,
            f4(mean_of(&qualities)),
            f2(mean_of(&sizes)),
            f4(mean_of(&diversities)),
        ]);
    }
    t
}

/// E10 — robustness to observation noise (extension): prediction quality
/// of each method as the observed fire lines degrade with front-cell
/// sensor noise. The paper's whole premise is input uncertainty; this
/// experiment injects it into the *observations* rather than the
/// parameters and asks which result-set policy degrades most gracefully.
pub fn e10_noise(seeds: &[u64], scale: f64, backend: EvalBackend, kernel: Kernel) -> TextTable {
    let clean = cases::shifting_wind();
    let mut t = TextTable::new([
        "flip_prob",
        "method",
        "mean_quality",
        "quality_drop_vs_clean",
    ]);
    let mut clean_quality: Vec<(Method, f64)> = Vec::new();
    for &flip in &[0.0, 0.10, 0.25] {
        for method in Method::ALL {
            let mut qualities = Vec::new();
            for &seed in seeds {
                let case = if flip > 0.0 {
                    cases::with_observation_noise(&clean, flip, seed)
                } else {
                    clean.clone()
                };
                let mut opt = method.make(scale);
                let r = PredictionPipeline::new(backend, seed)
                    .with_kernel(kernel)
                    .run(&case, opt.as_mut());
                qualities.push(r.mean_quality());
            }
            let q = mean_of(&qualities);
            if flip == 0.0 {
                clean_quality.push((method, q));
                t.row([f2(flip), method.name().to_string(), f4(q), "-".to_string()]);
            } else {
                let base = clean_quality
                    .iter()
                    .find(|(m, _)| *m == method)
                    .map(|&(_, q0)| q0)
                    .unwrap_or(q);
                t.row([f2(flip), method.name().to_string(), f4(q), f4(base - q)]);
            }
        }
    }
    t
}

/// W — the workload-corpus sweep: every named workload × every evaluation
/// backend, measuring scenario-evaluation throughput on the arena hot path
/// and running the full calibration → prediction pipeline once per
/// workload. Besides the text table, one machine-readable
/// `BENCH_<workload>.json` file is written per workload into `out`, so the
/// performance trajectory is trackable across PRs.
///
/// `quick` shrinks every workload to ≤ 40 cells per side and trims the
/// backend list — the CI smoke configuration.
pub fn workloads_sweep(worker_counts: &[usize], quick: bool, out: &std::path::Path) -> TextTable {
    use firelib::workload;

    let specs: Vec<workload::WorkloadSpec> = if quick {
        workload::corpus().iter().map(|s| s.shrunk(40)).collect()
    } else {
        workload::corpus()
    };
    let mut backends = vec![EvalBackend::Serial];
    if quick {
        backends.push(EvalBackend::WorkerPool(2));
    } else {
        for &w in worker_counts {
            backends.push(EvalBackend::WorkerPool(w));
            backends.push(EvalBackend::Rayon(w));
        }
    }
    let batch = if quick { 12usize } else { 48 };
    let reps = if quick { 1u32 } else { 3 };

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    let mut t = TextTable::new([
        "workload",
        "grid",
        "backend",
        "eval_ms",
        "evals_per_sec",
        "speedup",
        "pipeline_ms",
        "quality",
    ]);
    for spec in &specs {
        let build_sw = Stopwatch::start();
        let case = cases::workload_case(spec);
        let build_ms = build_sw.elapsed_ms();
        let grid = format!("{}x{}", spec.rows, spec.cols);
        let ctx = step1_context(&case);

        // Deterministic evaluation batch shared by every backend (and used
        // to enforce cross-backend bit-identity right in the sweep).
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBE_7C4);
        let genomes: Vec<Vec<f64>> = (0..batch)
            .map(|_| {
                (0..firelib::GENE_COUNT)
                    .map(|_| rng.random::<f64>())
                    .collect()
            })
            .collect();

        // Pipeline once per workload (backend-independent results): a
        // small, budget-matched ESS-NS end-to-end run.
        let mut pipeline_opt = Method::EssNs.make(if quick { 0.25 } else { 0.5 });
        let pipe_sw = Stopwatch::start();
        let report = PredictionPipeline::new(EvalBackend::Serial, 1).run(&case, &mut *pipeline_opt);
        let pipeline_ms = pipe_sw.elapsed_ms();

        let mut serial_fitness: Option<Vec<f64>> = None;
        let mut serial_ms = 0.0f64;
        let mut json_backends: Vec<Json> = Vec::new();
        for &backend in &backends {
            let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), backend);
            let warm = evaluator.evaluate(&genomes); // spin up workers, warm arenas
            let sw = Stopwatch::start();
            for _ in 0..reps {
                std::hint::black_box(evaluator.evaluate(&genomes));
            }
            let wall_ms = sw.elapsed_ms() / reps as f64;
            let eval_ms = wall_ms / batch as f64;
            let eps = 1000.0 / eval_ms;
            match &serial_fitness {
                None => {
                    serial_fitness = Some(warm);
                    serial_ms = wall_ms;
                }
                Some(reference) => assert_eq!(
                    reference, &warm,
                    "{}: backend {backend} diverged from serial",
                    spec.name
                ),
            }
            let speedup = serial_ms / wall_ms;
            let first = backend == EvalBackend::Serial;
            t.row([
                spec.name.to_string(),
                grid.clone(),
                backend.name(),
                f4(eval_ms),
                f2(eps),
                f2(speedup),
                if first { f2(pipeline_ms) } else { "-".into() },
                if first {
                    f4(report.mean_quality())
                } else {
                    "-".into()
                },
            ]);
            json_backends.push(
                Json::obj()
                    .field("backend", backend.name())
                    .field("batch", batch)
                    .field("batch_wall_ms", wall_ms)
                    .field("eval_ms", eval_ms)
                    .field("evals_per_sec", eps)
                    .field("speedup_vs_serial", speedup),
            );
        }

        let json = Json::obj()
            .field("bench_format", 1u64)
            .field("workload", spec.name)
            .field("rows", spec.rows)
            .field("cols", spec.cols)
            .field("intervals", case.intervals())
            .field("quick", quick)
            .field("case_build_ms", build_ms)
            .field(
                "pipeline",
                Json::obj()
                    .field("system", report.system)
                    .field("wall_ms", pipeline_ms)
                    .field("evaluations", report.total_evaluations())
                    .field("mean_quality", report.mean_quality()),
            )
            .field("backends", Json::Arr(json_backends));
        write_bench_json(&out.join(format!("BENCH_{}.json", spec.name)), &json);
    }
    t
}

/// N — the novelty-scoring engine sweep: population × archive × engine,
/// on the paper's 1-D fitness behaviour, measuring batched ρ(x)
/// throughput (scores/sec) for the brute-force reference, the sorted-scan
/// index, and the backend-parallel variants of both. Cross-path
/// bit-identity is asserted inline for every configuration, and for the
/// configurations with noveltySet ≥ 2000 the sorted-scan index must beat
/// brute force by ≥ 3× (the refactor's acceptance bar). Writes
/// `BENCH_novelty.json` into `out` — the novelty subsystem's cross-PR
/// performance trail.
///
/// `quick` trims the size grid and the repetition count (the CI smoke
/// configuration); the ≥ 2000 acceptance configuration is kept even then,
/// because brute force at that size is still only a few milliseconds.
pub fn novelty_sweep(worker_counts: &[usize], quick: bool, out: &std::path::Path) -> TextTable {
    use evoalg::{BehaviourMatrix, NoveltyEngine};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    // (population ∪ offspring subjects, archive rows) grid.
    let sizes: &[(usize, usize)] = if quick {
        &[(256, 256), (1024, 1024)]
    } else {
        &[(256, 256), (1024, 1024), (2048, 2048), (4096, 4096)]
    };
    let k = 5usize;
    let reps = if quick { 3u32 } else { 10 };
    let mut engines = vec![NoveltyEngine::brute_force(), NoveltyEngine::indexed()];
    if quick {
        engines.push(NoveltyEngine::brute_force().with_workers(2));
        engines.push(NoveltyEngine::indexed().with_workers(2));
    } else {
        for &w in worker_counts {
            engines.push(NoveltyEngine::brute_force().with_workers(w));
            engines.push(NoveltyEngine::indexed().with_workers(w));
        }
    }

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    let mut t = TextTable::new([
        "population",
        "archive",
        "k",
        "engine",
        "batch_ms",
        "scores_per_sec",
        "speedup_vs_brute",
    ]);
    let mut json_sizes: Vec<Json> = Vec::new();
    for &(subjects, archive) in sizes {
        // The paper's 1-D fitness behaviour: one value per row, subjects
        // first (population ∪ offspring), archive rows appended.
        let mut rng = StdRng::seed_from_u64(0x5C0_7E5);
        let mut reference = BehaviourMatrix::with_dim(1);
        for _ in 0..subjects + archive {
            reference.push(&[rng.random::<f64>()]);
        }

        let mut brute_scores: Option<Vec<f64>> = None;
        let mut brute_ms = 0.0f64;
        let mut json_engines: Vec<Json> = Vec::new();
        for engine in &engines {
            let warm = engine.novelty_scores(&reference, subjects, k);
            let sw = Stopwatch::start();
            for _ in 0..reps {
                std::hint::black_box(engine.novelty_scores(&reference, subjects, k));
            }
            let batch_ms = sw.elapsed_ms() / reps as f64;
            let scores_per_sec = subjects as f64 / (batch_ms / 1000.0);
            match &brute_scores {
                None => {
                    brute_scores = Some(warm);
                    brute_ms = batch_ms;
                }
                // The refactor's contract, enforced right in the sweep:
                // every engine produces f64-bit-identical scores.
                Some(reference_scores) => assert_eq!(
                    reference_scores, &warm,
                    "pop {subjects} archive {archive}: engine {engine} diverged from brute force"
                ),
            }
            let speedup = brute_ms / batch_ms;
            t.row([
                subjects.to_string(),
                archive.to_string(),
                k.to_string(),
                engine.name(),
                f4(batch_ms),
                f2(scores_per_sec),
                f2(speedup),
            ]);
            if subjects + archive >= 2000 && *engine == NoveltyEngine::indexed() {
                assert!(
                    speedup >= 3.0,
                    "sorted-scan must give ≥3× scores/sec over brute force at \
                     noveltySet ≥ 2000 (pop {subjects} ∪ archive {archive}: {speedup:.2}×)"
                );
            }
            json_engines.push(
                Json::obj()
                    .field("engine", engine.name())
                    .field("batch_ms", batch_ms)
                    .field("scores_per_sec", scores_per_sec)
                    .field("speedup_vs_brute", speedup)
                    .field("identical_to_brute", true),
            );
        }
        json_sizes.push(
            Json::obj()
                .field("population", subjects)
                .field("archive", archive)
                .field("novelty_set", subjects + archive)
                .field("k", k)
                .field("dim", 1u64)
                .field("engines", Json::Arr(json_engines)),
        );
    }

    let json = Json::obj()
        .field("bench_format", 1u64)
        .field("suite", "novelty")
        .field("quick", quick)
        .field("reps", reps)
        .field("configs", Json::Arr(json_sizes));
    write_bench_json(&out.join("BENCH_novelty.json"), &json);
    t
}

/// Writes one pretty-printed `BENCH_*.json` artifact, warning (not
/// failing) on I/O problems like every other report writer here.
pub(crate) fn write_bench_json(path: &std::path::Path, json: &Json) {
    match std::fs::write(path, json.to_pretty()) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
}

/// S — the serving throughput sweep: a fixed batch of concurrent sessions
/// (every registered system × replicates, all on one case) scheduled over
/// **one** shared evaluation backend, repeated per backend. Reports
/// sessions/sec and step throughput per backend, checks cross-backend
/// bit-identity of the scheduled results, and writes `BENCH_service.json`
/// — the serving layer's cross-PR performance trail.
///
/// `quick` shrinks the per-step search budget (the CI smoke
/// configuration).
pub fn service_sweep(worker_counts: &[usize], quick: bool, out: &std::path::Path) -> TextTable {
    use ess_service::{RunSpec, Scheduler, SessionOutcome};

    let case = "meadow_small";
    let scale = if quick { 0.15 } else { 0.5 };
    let replicates = 2usize; // 4 systems × 2 = 8 concurrent sessions
    let mut backends = vec![EvalBackend::Serial];
    if quick {
        backends.push(EvalBackend::WorkerPool(2));
    } else {
        for &w in worker_counts {
            backends.push(EvalBackend::WorkerPool(w));
            backends.push(EvalBackend::Rayon(w));
        }
    }

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    let mut t = TextTable::new([
        "backend",
        "sessions",
        "steps",
        "wall_ms",
        "sessions_per_sec",
        "steps_per_sec",
        "speedup",
    ]);
    let mut reference: Option<Vec<(usize, f64)>> = None;
    let mut serial_ms = 0.0f64;
    let mut json_backends: Vec<Json> = Vec::new();
    for &backend in &backends {
        let mut scheduler = Scheduler::new(backend);
        for (i, system) in ess_service::systems::all().iter().enumerate() {
            scheduler
                .submit(
                    &RunSpec::new(system.name, case)
                        .scale(scale)
                        .seed(4000 + i as u64)
                        .replicates(replicates),
                )
                .expect("sweep spec must resolve");
        }
        let sessions = scheduler.live_count();
        let sw = Stopwatch::start();
        let outcomes = scheduler.drain();
        let wall_ms = sw.elapsed_ms();

        let steps: usize = outcomes.iter().map(|(_, o)| o.report().steps.len()).sum();
        assert!(
            outcomes.iter().all(|(_, o)| o.is_finished()),
            "every sweep session must finish"
        );
        // Scheduled results are backend-independent: pin it right here.
        let digest: Vec<(usize, f64)> = outcomes
            .iter()
            .map(|(_, o)| match o {
                SessionOutcome::Finished(r) => (r.steps.len(), r.mean_quality()),
                SessionOutcome::Exhausted { partial, .. } => {
                    (partial.steps.len(), partial.mean_quality())
                }
            })
            .collect();
        match &reference {
            None => {
                reference = Some(digest);
                serial_ms = wall_ms;
            }
            Some(expected) => assert_eq!(
                expected, &digest,
                "backend {backend} diverged from serial scheduling"
            ),
        }
        let sessions_per_sec = sessions as f64 / (wall_ms / 1000.0);
        let steps_per_sec = steps as f64 / (wall_ms / 1000.0);
        let speedup = serial_ms / wall_ms;
        t.row([
            backend.name(),
            sessions.to_string(),
            steps.to_string(),
            f2(wall_ms),
            f2(sessions_per_sec),
            f2(steps_per_sec),
            f2(speedup),
        ]);
        json_backends.push(
            Json::obj()
                .field("backend", backend.name())
                .field("sessions", sessions)
                .field("steps", steps)
                .field("wall_ms", wall_ms)
                .field("sessions_per_sec", sessions_per_sec)
                .field("steps_per_sec", steps_per_sec)
                .field("speedup_vs_serial", speedup),
        );
    }

    let json = Json::obj()
        .field("bench_format", 1u64)
        .field("suite", "service")
        .field("case", case)
        .field("scale", scale)
        .field("quick", quick)
        .field("systems", {
            Json::Arr(
                ess_service::systems::names()
                    .into_iter()
                    .map(Json::from)
                    .collect(),
            )
        })
        .field("replicates_per_system", replicates)
        .field("backends", Json::Arr(json_backends));
    write_bench_json(&out.join("BENCH_service.json"), &json);
    t
}

/// F — the cross-session batch-fusion microbench on `archipelago_large`
/// (200×200, the workload where worker-pool dispatch used to *lose* to
/// serial at batch ≈12). Three configurations per concurrent-session
/// count — serial unfused (the reference), worker-pool unfused, and
/// worker-pool fused — with every pair pinned bit-identical in-run, plus
/// a small-batch regression pinning the pool's inline-serial fallback
/// below [`ess::DEFAULT_INLINE_THRESHOLD`] genomes. Writes
/// `BENCH_fusion.json`, the acceptance artifact for the fusion work.
///
/// `quick` shrinks the session counts and step budget (the CI smoke
/// configuration).
///
/// # Panics
/// Panics when any configuration's results diverge from serial unfused,
/// or (on a multi-core host) when fused worker-pool fails to reach 1.5×
/// serial at 16 concurrent sessions.
pub fn fusion_sweep(quick: bool, out: &std::path::Path) -> TextTable {
    use ess::fitness::SharedScenarioPool;
    use ess_service::{PolicyKind, RunSpec, Scheduler, SessionOutcome};
    use evoalg::GenomeMatrix;

    let case = "archipelago_large";
    // scaled(32, 0.35) ≈ 11 genomes per wave — the small-batch regime the
    // unfused scheduler pays dispatch overhead on.
    let scale = 0.35;
    let max_steps = if quick { 1 } else { 2 };
    let counts: &[usize] = if quick { &[1, 4, 16] } else { &[1, 4, 16, 64] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.max(2);

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    // A full drain of `sessions` mixed-system runs under one scheduler
    // configuration; digest = the deterministic per-session results.
    type Digest = Vec<(usize, u64, u64)>;
    let drain = |backend: EvalBackend, fused: bool, sessions: usize| -> (f64, u64, Digest) {
        let mut scheduler = Scheduler::with_policy(backend, PolicyKind::RoundRobin);
        scheduler.set_fused(fused);
        let systems = ess_service::systems::names();
        for i in 0..sessions {
            scheduler
                .submit(
                    &RunSpec::new(systems[i % systems.len()], case)
                        .scale(scale)
                        .seed(7000 + i as u64)
                        .max_steps(max_steps),
                )
                .expect("fusion sweep spec must resolve");
        }
        let sw = Stopwatch::start();
        let outcomes = scheduler.drain();
        let wall_ms = sw.elapsed_ms();
        let digest: Digest = outcomes
            .iter()
            .map(|(_, o)| {
                let r = match o {
                    SessionOutcome::Finished(r) => r,
                    SessionOutcome::Exhausted { partial, .. } => partial,
                };
                let evals: u64 = r.steps.iter().map(|s| s.evaluations).sum();
                (r.steps.len(), r.mean_quality().to_bits(), evals)
            })
            .collect();
        let evals = digest.iter().map(|d| d.2).sum();
        (wall_ms, evals, digest)
    };

    let mut t = TextTable::new([
        "sessions",
        "evals",
        "serial_ms",
        "pool_ms",
        "fused_ms",
        "pool_x",
        "fused_x",
        "fused_vs_pool",
    ]);
    let mut json_counts: Vec<Json> = Vec::new();
    for &sessions in counts {
        let (serial_ms, evals, reference) = drain(EvalBackend::Serial, false, sessions);
        let (pool_ms, _, pool_digest) = drain(EvalBackend::WorkerPool(workers), false, sessions);
        let (fused_ms, _, fused_digest) = drain(EvalBackend::WorkerPool(workers), true, sessions);
        assert_eq!(
            reference, pool_digest,
            "worker-pool rounds diverged from serial at {sessions} sessions"
        );
        assert_eq!(
            reference, fused_digest,
            "fused rounds diverged from serial at {sessions} sessions"
        );
        let pool_x = serial_ms / pool_ms;
        let fused_x = serial_ms / fused_ms;
        if sessions == 16 && cores >= 2 {
            assert!(
                fused_x >= 1.5,
                "fused worker-pool must reach 1.5x serial at 16 sessions \
                 on {cores} cores (got {fused_x:.3}x)"
            );
        }
        if sessions == 16 && cores < 2 {
            eprintln!(
                "[warn] single-core host: the 1.5x fusion acceptance at 16 sessions \
                 needs parallelism and is recorded, not asserted (got {fused_x:.3}x)"
            );
        }
        t.row([
            sessions.to_string(),
            evals.to_string(),
            f2(serial_ms),
            f2(pool_ms),
            f2(fused_ms),
            f2(pool_x),
            f2(fused_x),
            f2(pool_ms / fused_ms),
        ]);
        json_counts.push(
            Json::obj()
                .field("sessions", sessions)
                .field("evaluations", evals)
                .field("serial_unfused_ms", serial_ms)
                .field("worker_pool_unfused_ms", pool_ms)
                .field("worker_pool_fused_ms", fused_ms)
                .field("serial_evals_per_sec", evals as f64 / (serial_ms / 1000.0))
                .field(
                    "worker_pool_evals_per_sec",
                    evals as f64 / (pool_ms / 1000.0),
                )
                .field("fused_evals_per_sec", evals as f64 / (fused_ms / 1000.0))
                .field("worker_pool_speedup_vs_serial", pool_x)
                .field("fused_speedup_vs_serial", fused_x)
                .field("fused_speedup_vs_unfused_pool", pool_ms / fused_ms)
                .field("identical_to_serial", true),
        );
    }

    // Small-batch regression: the pool's inline-serial fallback versus
    // forced pool dispatch on the batch size that used to lose (≈12
    // genomes). Pinned bit-identical; the timing ratio documents why the
    // threshold exists.
    let burn = cases::by_name(case).expect("archipelago_large resolves as a case");
    let ctx = step1_context(&burn);
    let batch = 12usize;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xF_05E);
    let mut genomes = GenomeMatrix::with_dim(firelib::GENE_COUNT);
    for _ in 0..batch {
        let row: Vec<f64> = (0..firelib::GENE_COUNT).map(|_| rng.random()).collect();
        genomes.push(&row);
    }
    let reps = if quick { 3u32 } else { 10 };
    let pool = SharedScenarioPool::new(EvalBackend::WorkerPool(workers));
    pool.set_inline_threshold(0); // force dispatch
    let dispatched = pool.evaluate_matrix(&ctx, &genomes);
    let sw = Stopwatch::start();
    for _ in 0..reps {
        std::hint::black_box(pool.evaluate_matrix(&ctx, &genomes));
    }
    let dispatch_ms = sw.elapsed_ms() / reps as f64;
    pool.set_inline_threshold(ess::DEFAULT_INLINE_THRESHOLD);
    let inline = pool.evaluate_matrix(&ctx, &genomes);
    let sw = Stopwatch::start();
    for _ in 0..reps {
        std::hint::black_box(pool.evaluate_matrix(&ctx, &genomes));
    }
    let inline_ms = sw.elapsed_ms() / reps as f64;
    assert_eq!(
        dispatched, inline,
        "inline fallback diverged from pool dispatch at batch {batch}"
    );
    println!(
        "[small-batch] batch {batch} on {case}: inline {inline_ms:.2} ms vs dispatch \
         {dispatch_ms:.2} ms ({:.2}x), threshold {}",
        dispatch_ms / inline_ms,
        ess::DEFAULT_INLINE_THRESHOLD,
    );

    let json = Json::obj()
        .field("bench_format", 1u64)
        .field("suite", "fusion")
        .field("case", case)
        .field("scale", scale)
        .field("max_steps", max_steps)
        .field("quick", quick)
        .field("cores", cores)
        .field("workers", workers)
        .field("acceptance_asserted", cores >= 2)
        .field("session_counts", Json::Arr(json_counts))
        .field(
            "small_batch",
            Json::obj()
                .field("batch", batch)
                .field("inline_threshold", ess::DEFAULT_INLINE_THRESHOLD)
                .field("inline_ms", inline_ms)
                .field("dispatch_ms", dispatch_ms)
                .field("inline_speedup_vs_dispatch", dispatch_ms / inline_ms)
                .field("identical", true),
        );
    write_bench_json(&out.join("BENCH_fusion.json"), &json);
    t
}

/// K — the landscape kernel sweep: reference heap kernel vs the monotone
/// bucket-queue kernel vs the tiled parallel wavefront kernel on the
/// 200×200 corpus flagship plus the XL (1000×1000+) tier, single-threaded
/// and across a scoped worker pool. Kernel bit-identity is asserted in-run
/// on every workload **and every swept tiled configuration** (per-scenario
/// raster digests over exact f64 bits), and the bucket arena's scratch
/// footprint is reported against the old eager `rows*cols` heap
/// preallocation. Writes `BENCH_landscape.json` into `out` — the
/// simulation kernel's cross-PR performance trail — plus the committed
/// human-readable `bench_summary.md` row set.
///
/// Full-mode acceptance, asserted in-run: the bucket kernel reaches ≥ 3×
/// single-threaded evals/sec on the two per-cell XL workloads
/// (`ridge_valley_xl`, `breaks_mosaic_xl`), regresses nowhere (≥ 1× on the
/// archipelagos), and its XL scratch stays ≥ 4× below the eager baseline.
/// With ≥ 4 cores the tiled kernel must beat the single-thread bucket
/// kernel ≥ 2× (best swept config at ≥ 4 workers) on those same two
/// per-cell XL workloads and regress nowhere else (≥ 1× best config);
/// on smaller hosts the tiled numbers are recorded unasserted. The
/// pool-vs-serial backend comparison is recorded always and never gates
/// (it needs `available_parallelism ≥ 2` to mean anything).
///
/// `quick` shrinks every workload to ≤ 64 cells per side and trims the
/// batch and the tiled sweep — digest identity is still asserted on every
/// path; the perf bars are not (the CI smoke configuration).
pub fn landscape_sweep(quick: bool, out: &std::path::Path) -> TextTable {
    use firelib::workload;
    use landscape::IgnitionMap;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let specs: Vec<workload::WorkloadSpec> = {
        let mut v = vec![workload::archipelago_large()];
        v.extend(workload::xl_corpus());
        if quick {
            v = v.iter().map(|s| s.shrunk(64)).collect();
        }
        v
    };
    let batch = if quick { 3usize } else { 6 };
    let reps = if quick { 1u32 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let workers = cores.clamp(2, 8);

    // The tiled sweep grid: tile edge × worker count. Quick mode keeps one
    // cheap configuration per axis (grids are ≤ 64² there, so the sweep
    // only checks digests); full mode covers the perf-relevant corner
    // (large tiles, ≥ 4 workers) plus the degenerate 1-worker column that
    // must match the serial drain exactly.
    let tile_sizes: Vec<usize> = if quick {
        vec![16, 64]
    } else {
        vec![64, 128, 256]
    };
    let tiled_worker_counts: Vec<usize> = if quick {
        vec![2]
    } else {
        [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&wk| wk == 1 || wk <= cores.max(2))
            .collect()
    };
    // Tiled perf bars only mean something off CI-class hosts.
    let tiled_gate = !quick && cores >= 4;

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    /// FNV-1a over the exact bit patterns of every arrival time: two rasters
    /// share a digest iff they are f64-bit-identical.
    fn digest_map(map: &IgnitionMap) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &t in map.grid().as_slice() {
            h ^= t.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    let mut t = TextTable::new([
        "workload",
        "grid",
        "tier",
        "heap_eval_ms",
        "bucket_eval_ms",
        "kernel_x",
        "tiled_eval_ms",
        "tiled_x",
        "tiled_cfg",
        "pool_x",
        "scratch_kb",
        "raster_kb",
    ]);
    let mut json_workloads: Vec<Json> = Vec::new();
    let mut summary_rows: Vec<[String; 9]> = Vec::new();
    for spec in &specs {
        let xl = workload::xl_names().contains(&spec.name);
        let w = spec.build();
        let sim = w.sim();
        let (rows, cols) = (w.terrain.rows(), w.terrain.cols());
        let cells = rows * cols;
        let t0 = w.times[0];
        let dt = w.times[1] - w.times[0];

        // A deterministic scenario batch around the workload's truth: the
        // base plus seeded wind perturbations, the calibration-stage access
        // pattern in miniature.
        let base = w.truth[0];
        let mut rng = StdRng::seed_from_u64(0x1A2D ^ spec.seed);
        let scenarios: Vec<Scenario> = (0..batch)
            .map(|i| {
                if i == 0 {
                    base
                } else {
                    Scenario {
                        wind_speed_mph: (base.wind_speed_mph
                            + (rng.random::<f64>() * 2.0 - 1.0) * 2.0)
                            .clamp(0.0, 80.0),
                        wind_dir_deg: landscape::geometry::normalize_azimuth(
                            base.wind_dir_deg + (rng.random::<f64>() * 2.0 - 1.0) * 30.0,
                        ),
                        ..base
                    }
                }
            })
            .collect();

        // Correctness pass (also the warm-up): per-scenario digests must
        // match bit-for-bit between the kernels.
        let mut heap_arena = sim.arena();
        let mut bucket_arena = sim.arena();
        let heap_digests: Vec<u64> = scenarios
            .iter()
            .map(|s| {
                digest_map(sim.simulate_arena_kernel(
                    s,
                    &w.ignition,
                    t0,
                    dt,
                    &mut heap_arena,
                    Kernel::Heap,
                ))
            })
            .collect();
        let bucket_digests: Vec<u64> = scenarios
            .iter()
            .map(|s| {
                digest_map(sim.simulate_arena_kernel(
                    s,
                    &w.ignition,
                    t0,
                    dt,
                    &mut bucket_arena,
                    Kernel::Bucket,
                ))
            })
            .collect();
        assert_eq!(
            heap_digests, bucket_digests,
            "{}: bucket kernel diverged from the heap reference",
            spec.name
        );

        // Timed passes on the warmed arenas: best-of-reps full-batch wall.
        let time_kernel = |kernel: Kernel, arena: &mut firelib::SimArena| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let sw = Stopwatch::start();
                for s in &scenarios {
                    std::hint::black_box(sim.simulate_arena_kernel(
                        s,
                        &w.ignition,
                        t0,
                        dt,
                        arena,
                        kernel,
                    ));
                }
                best = best.min(sw.elapsed_ms());
            }
            best
        };
        let heap_ms = time_kernel(Kernel::Heap, &mut heap_arena);
        let bucket_ms = time_kernel(Kernel::Bucket, &mut bucket_arena);
        let heap_eps = batch as f64 / (heap_ms / 1000.0);
        let bucket_eps = batch as f64 / (bucket_ms / 1000.0);
        let kernel_x = heap_ms / bucket_ms;

        // The arena footprint after a full batch: scratch (queues, gather
        // buffers, window tables, span bookkeeping) versus the mandatory
        // arrival raster, against the old eager heap preallocation.
        let scratch = bucket_arena.scratch_bytes();
        let raster = bucket_arena.raster_bytes();
        let eager = cells * 16; // BinaryHeap<(Reverse<Time>, u32)> at rows*cols
        drop(heap_arena);

        // Pool backend: the same batch chunked over scoped threads, one
        // private arena per worker (the worker-pool deployment shape).
        // Digest identity across backends is asserted; the speedup is
        // recorded but never gates (single-core hosts run this too).
        let chunk = scenarios.len().div_ceil(workers);
        let mut pool_best = f64::INFINITY;
        let mut pool_digests: Vec<u64> = Vec::new();
        for _ in 0..reps {
            let mut digests = vec![0u64; scenarios.len()];
            let sw = Stopwatch::start();
            // audit: allow(layer) — hand-rolled scoped-thread baseline the sweep compares the pool against
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk_scenarios in scenarios.chunks(chunk) {
                    let sim = &sim;
                    let w = &w;
                    // lint: allow(thread-spawn) — the scoped-thread baseline the pool is benchmarked against
                    handles.push(scope.spawn(move || {
                        let mut arena = sim.arena();
                        chunk_scenarios
                            .iter()
                            .map(|s| {
                                digest_map(sim.simulate_arena(s, &w.ignition, t0, dt, &mut arena))
                            })
                            .collect::<Vec<u64>>()
                    }));
                }
                let mut off = 0usize;
                for handle in handles {
                    let part = handle.join().expect("landscape pool worker panicked");
                    digests[off..off + part.len()].copy_from_slice(&part);
                    off += part.len();
                }
            });
            pool_best = pool_best.min(sw.elapsed_ms());
            pool_digests = digests;
        }
        assert_eq!(
            heap_digests, pool_digests,
            "{}: pooled bucket runs diverged from the reference",
            spec.name
        );
        let pool_x = bucket_ms / pool_best;

        // Tiled sweep: every (tile, workers) configuration first replays
        // the whole batch with per-scenario digests asserted against the
        // heap reference (also its warm-up), then runs the timed passes on
        // the same arena. Dirty-arena reuse across configurations is part
        // of what this exercises.
        let mut tiled_arena = sim.arena();
        let mut tiled_cfg_json: Vec<Json> = Vec::new();
        // Best (eval ms, tile, workers) over all configs, and over the
        // ≥ 4-worker configs only (what the XL acceptance bar reads).
        let mut tiled_best: Option<(f64, usize, usize)> = None;
        let mut tiled_best_hi: Option<(f64, usize, usize)> = None;
        for &tile in &tile_sizes {
            for &wk in &tiled_worker_counts {
                let kernel = Kernel::Tiled { tile, workers: wk };
                let digests: Vec<u64> = scenarios
                    .iter()
                    .map(|s| {
                        digest_map(sim.simulate_arena_kernel(
                            s,
                            &w.ignition,
                            t0,
                            dt,
                            &mut tiled_arena,
                            kernel,
                        ))
                    })
                    .collect();
                assert_eq!(
                    heap_digests, digests,
                    "{}: tiled kernel (tile {tile}, {wk} workers) diverged \
                     from the heap reference",
                    spec.name
                );
                let ms = time_kernel(kernel, &mut tiled_arena);
                let eps = batch as f64 / (ms / 1000.0);
                if tiled_best.is_none_or(|(b, _, _)| ms < b) {
                    tiled_best = Some((ms, tile, wk));
                }
                if wk >= 4 && tiled_best_hi.is_none_or(|(b, _, _)| ms < b) {
                    tiled_best_hi = Some((ms, tile, wk));
                }
                tiled_cfg_json.push(
                    Json::obj()
                        .field("tile", tile)
                        .field("workers", wk)
                        .field("eval_ms", ms / batch as f64)
                        .field("evals_per_sec", eps)
                        .field("speedup_vs_bucket", bucket_ms / ms)
                        .field("digest_identical", true),
                );
            }
        }
        let (tiled_ms, tiled_tile, tiled_workers) =
            tiled_best.expect("tiled sweep covers at least one configuration");
        let tiled_x = bucket_ms / tiled_ms;
        let tiled_scratch = tiled_arena.scratch_bytes();
        drop(tiled_arena);

        if !quick {
            match spec.name {
                // The two per-cell XL workloads are where active-front
                // bounding must pay: ≥ 3× single-threaded evals/sec.
                "ridge_valley_xl" | "breaks_mosaic_xl" => assert!(
                    kernel_x >= 3.0,
                    "{}: bucket kernel must reach 3x the heap kernel ({kernel_x:.2}x)",
                    spec.name
                ),
                // No regression anywhere else (the per-fuel archipelagos).
                "archipelago_large" | "archipelago_xl" => assert!(
                    kernel_x >= 1.0,
                    "{}: bucket kernel regressed vs heap ({kernel_x:.2}x)",
                    spec.name
                ),
                _ => {}
            }
            if xl {
                assert!(
                    scratch * 4 <= eager,
                    "{}: arena scratch {scratch} B not 4x below the eager \
                     rows*cols heap baseline {eager} B",
                    spec.name
                );
            }
        }
        if tiled_gate {
            match spec.name {
                // The two per-cell XL workloads are where in-simulation
                // parallelism must pay: ≥ 2× the single-thread bucket
                // kernel using ≥ 4 workers.
                "ridge_valley_xl" | "breaks_mosaic_xl" => {
                    let (hi_ms, hi_tile, hi_wk) =
                        tiled_best_hi.expect("≥ 4 cores sweeps a ≥ 4-worker configuration");
                    let hi_x = bucket_ms / hi_ms;
                    assert!(
                        hi_x >= 2.0,
                        "{}: tiled kernel must reach 2x the single-thread bucket \
                         kernel at >= 4 workers (best {hi_x:.2}x at tile {hi_tile} \
                         x {hi_wk} workers)",
                        spec.name
                    );
                }
                // No regression anywhere else, best configuration counted.
                "archipelago_large" | "archipelago_xl" => assert!(
                    tiled_x >= 1.0,
                    "{}: tiled kernel regressed vs single-thread bucket \
                     ({tiled_x:.2}x at tile {tiled_tile} x {tiled_workers} workers)",
                    spec.name
                ),
                _ => {}
            }
        }

        let tiled_cfg = format!("{tiled_tile}x{tiled_workers}w");
        t.row([
            spec.name.to_string(),
            format!("{rows}x{cols}"),
            if xl { "xl".into() } else { "corpus".into() },
            f4(heap_ms / batch as f64),
            f4(bucket_ms / batch as f64),
            f2(kernel_x),
            f4(tiled_ms / batch as f64),
            f2(tiled_x),
            tiled_cfg.clone(),
            f2(pool_x),
            (scratch / 1024).to_string(),
            (raster / 1024).to_string(),
        ]);
        summary_rows.push([
            spec.name.to_string(),
            format!("{rows}×{cols}"),
            if xl { "xl".into() } else { "corpus".into() },
            f2(heap_ms / batch as f64),
            f2(bucket_ms / batch as f64),
            f2(kernel_x),
            f2(tiled_ms / batch as f64),
            f2(tiled_x),
            tiled_cfg,
        ]);
        json_workloads.push(
            Json::obj()
                .field("workload", spec.name)
                .field("rows", rows)
                .field("cols", cols)
                .field("tier", if xl { "xl" } else { "corpus" })
                .field("batch", batch)
                .field("interval_minutes", dt)
                .field(
                    "heap",
                    Json::obj()
                        .field("eval_ms", heap_ms / batch as f64)
                        .field("evals_per_sec", heap_eps)
                        .field("cells_per_sec", cells as f64 * heap_eps),
                )
                .field(
                    "bucket",
                    Json::obj()
                        .field("eval_ms", bucket_ms / batch as f64)
                        .field("evals_per_sec", bucket_eps)
                        .field("cells_per_sec", cells as f64 * bucket_eps),
                )
                .field("kernel_speedup", kernel_x)
                .field("digest_identical", true)
                .field(
                    "tiled",
                    Json::obj()
                        .field("configs", Json::Arr(tiled_cfg_json))
                        .field(
                            "best",
                            Json::obj()
                                .field("tile", tiled_tile)
                                .field("workers", tiled_workers)
                                .field("eval_ms", tiled_ms / batch as f64)
                                .field("speedup_vs_bucket", tiled_x),
                        )
                        .field("peak_scratch_bytes", tiled_scratch),
                )
                .field("pool_workers", workers)
                .field("pool_batch_ms", pool_best)
                .field("pool_speedup_vs_serial", pool_x)
                .field("pool_digest_identical", true)
                .field("peak_scratch_bytes", scratch)
                .field("raster_bytes", raster)
                .field("eager_heap_baseline_bytes", eager)
                .field(
                    "scratch_under_eager_x",
                    eager as f64 / scratch.max(1) as f64,
                ),
        );
    }

    let json = Json::obj()
        .field("bench_format", 1u64)
        .field("suite", "landscape")
        .field("quick", quick)
        .field("reps", reps)
        .field("cores", cores)
        .field("pool_workers", workers)
        .field("perf_asserted", !quick)
        .field("tiled_perf_asserted", tiled_gate)
        .field("workloads", Json::Arr(json_workloads));
    write_bench_json(&out.join("BENCH_landscape.json"), &json);
    write_landscape_summary(out, quick, tiled_gate, cores, &summary_rows);
    t
}

/// Writes `bench_summary.md` — the committed, human-readable companion of
/// the gitignored `BENCH_landscape.json`: one markdown row per workload
/// with per-eval wall times and speedups for all three kernels, so the
/// repo carries a reviewable perf trail without machine-varying JSON noise
/// in the diff.
fn write_landscape_summary(
    out: &std::path::Path,
    quick: bool,
    tiled_gate: bool,
    cores: usize,
    rows: &[[String; 9]],
) {
    let mut md = String::new();
    md.push_str("# Simulation kernel benchmark summary\n\n");
    md.push_str(
        "Regenerate with `cargo run --release -p ess-benches --bin harness -- \
         landscape` (add `--quick` for the CI smoke configuration). Wall times\n\
         are per evaluation (one full propagation of the workload's first\n\
         interval), best of the timed repetitions; `×` columns are speedups\n\
         over the single-thread kernels named in the header. `tiled cfg` is\n\
         the fastest swept `TILExWORKERSw` configuration. Digest identity of\n\
         every kernel and every tiled configuration against the heap\n\
         reference is asserted while the numbers are taken.\n\n",
    );
    md.push_str(&format!(
        "Mode: `{}` on {cores} cores — tiled perf bars (≥ 2× on the per-cell \
         XL pair at ≥ 4 workers, ≥ 1× elsewhere) {}.\n\n",
        if quick { "quick" } else { "full" },
        if tiled_gate {
            "asserted in-run"
        } else {
            "recorded unasserted (quick mode or < 4 cores)"
        }
    ));
    md.push_str(
        "| workload | grid | tier | heap ms | bucket ms | bucket × heap | \
         tiled ms | tiled × bucket | tiled cfg |\n",
    );
    md.push_str("|---|---|---|---:|---:|---:|---:|---:|---|\n");
    for r in rows {
        md.push_str(&format!("| {} |\n", r.join(" | ")));
    }
    let path = out.join("bench_summary.md");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, &md) {
        Ok(()) => println!("[written {}]", path.display()),
        Err(e) => eprintln!("[warn] could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let t = table1();
        assert_eq!(t.len(), 9);
        let csv = t.to_csv();
        assert!(csv.contains("WindSpd"));
        assert!(csv.contains("0-80"));
        assert!(csv.contains("Mherb"));
        assert!(csv.contains("30-300"));
    }

    #[test]
    fn e4_throughput_produces_nine_rows() {
        let t = e4_throughput();
        assert_eq!(t.len(), 9);
    }
}
