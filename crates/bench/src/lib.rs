//! `ess-benches` — shared experiment machinery behind the `harness` binary
//! and the microbenchmarks.
//!
//! Every experiment in DESIGN.md §4 is a function here returning a
//! [`ess::report::TextTable`], so the harness can print it and write the
//! CSV, the benches can reuse the same workloads, and the integration
//! tests can assert on the *shape* of the results without duplicating
//! setup. The pipeline-driven experiments take a
//! [`parworker::EvalBackend`], surfaced on the harness CLI as
//! `--backend`; every backend yields bit-identical results, so backend
//! choice only moves wall time.

pub mod experiments;
pub mod loadgen;
pub mod methods;
pub mod microbench;

pub use methods::{comparable_methods, Method};
