//! `ess-benches` — shared experiment machinery behind the `harness` binary
//! and the criterion benches.
//!
//! Every experiment in DESIGN.md §4 is a function here returning a
//! [`ess::report::TextTable`], so the harness can print it and write the
//! CSV, the criterion benches can reuse the same workloads, and the
//! integration tests can assert on the *shape* of the results without
//! duplicating setup.

pub mod experiments;
pub mod methods;

pub use methods::{comparable_methods, Method};
