//! The protocol-v2 load generator and the v2 smoke test.
//!
//! [`loadgen_sweep`] drives N concurrent typed clients × M sessions each
//! against **one** in-process serve loop — every client on its own
//! thread with its own `ess_client::Client`, all multiplexed over one
//! request pipe (chunk-atomic writes) and demultiplexed by correlation-id
//! namespace and session ownership on the response side, exactly the
//! fan-in shape a socket deployment would have. The sweep repeats the
//! identical workload under every [`PolicyKind`], asserts the per-session
//! reports are **identical across policies** (scheduling must move
//! latency, never results), and writes `BENCH_serve_v2.json` with
//! sessions/sec, events/sec and the observed fairness skew per policy —
//! plus a fused-vs-unfused section comparing evals/sec at 1, 4, 16 and 64
//! concurrent sessions with the cross-path identity asserted in-run.
//!
//! [`serve_v2_self_test`] is the CI smoke: a recorded multi-client-shaped
//! script (all four systems, watched) runs once uninterrupted to produce
//! a golden transcript, then again with one session checkpointed,
//! killed mid-script and restored from its snapshot — and the final
//! reports are diffed line-by-line against the golden transcript.

use crate::experiments::write_bench_json;
use ess::fitness::EvalBackend;
use ess::report::{f2, TextTable};
use ess_client::pipe::{duplex, PipeReader, PipeWriter};
use ess_client::{Client, ClientError};
use ess_service::jsonio::Json;
use ess_service::proto::{DoneFrame, Frame, Reply};
use ess_service::serve::{serve_configured, serve_with};
use ess_service::{PolicyKind, RunSpec};
use parworker::Stopwatch;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Write};
use std::thread;

/// The deterministic fields of a terminal frame (wall time excluded).
type Fingerprint = (String, String, String, usize, u64, u64);

fn fingerprint(d: &DoneFrame) -> Fingerprint {
    (
        d.status.clone(),
        d.system.clone(),
        d.case.clone(),
        d.steps,
        d.mean_quality.to_bits(),
        d.total_evaluations,
    )
}

/// One client's scripted workload: the specs it submits, in order.
fn client_scripts(clients: usize, specs_per_client: usize, scale: f64) -> Vec<Vec<RunSpec>> {
    let systems = ess_service::systems::names();
    (0..clients)
        .map(|c| {
            (0..specs_per_client)
                .map(|i| {
                    let system = systems[(c + i) % systems.len()];
                    let mut spec = RunSpec::new(system, "meadow_small")
                        .seed(9000 + (c as u64) * 100 + i as u64)
                        .scale(scale)
                        .replicates(1 + i % 2)
                        // Client weights differ so weighted-fair-share has
                        // something to equalize.
                        .weight(1.0 + c as f64);
                    if i % 2 == 1 {
                        // A deadline far beyond any plausible run time: it
                        // orders deadline-first scheduling without ever
                        // firing as a budget (results must stay
                        // policy-independent).
                        spec = spec.deadline_ms(600_000);
                    }
                    spec
                })
                .collect()
        })
        .collect()
}

/// Scheduler-visible happenings, in server emission order, for the
/// fairness post-processing.
enum Ev {
    Accept(Vec<u64>),
    Step(u64, usize),
    Done(u64),
}

/// What one policy run produced.
struct PolicyRun {
    wall_ms: f64,
    frames: usize,
    sessions: usize,
    steps: usize,
    /// (client, spec index, replicate) → terminal fingerprint.
    reports: BTreeMap<(usize, usize, usize), Fingerprint>,
    /// Max step-count spread among concurrently-live sessions.
    raw_skew: usize,
    /// Max spread of `completed / weight` among concurrently-live
    /// sessions — the quantity weighted-fair-share equalizes.
    virtual_skew: f64,
}

/// Runs the whole scripted workload once under `policy`; with `fused` on,
/// the server's scheduler rounds fuse every planned session's evaluation
/// batches into shared-pool mega-batches.
fn run_policy(
    policy: PolicyKind,
    scripts: &[Vec<RunSpec>],
    backend: EvalBackend,
    fused: bool,
) -> Result<PolicyRun, String> {
    let clients = scripts.len();
    let (req_w, req_r) = duplex();
    let (resp_w, resp_r) = duplex();
    // audit: allow(layer) — bench-only client/server harness threads; no evaluation work runs on them
    // lint: allow(thread-spawn) — the load generator hosts the serve loop on its own thread
    let server = thread::spawn(move || {
        serve_configured(BufReader::new(req_r), resp_w, backend, policy, fused)
    });

    // Demultiplexer: one pipe per client (the coordinator is client
    // `clients`), routing replies by id namespace and async frames by
    // session ownership learned from `accepted` replies.
    let mut to_client: Vec<PipeWriter> = Vec::new();
    let mut client_ends: Vec<Option<PipeReader>> = Vec::new();
    for _ in 0..=clients {
        let (w, r) = duplex();
        to_client.push(w);
        client_ends.push(Some(r));
    }
    type DemuxOut = (usize, Vec<Ev>, HashMap<u64, usize>);
    // audit: allow(layer) — bench-only client/server harness threads; no evaluation work runs on them
    // lint: allow(thread-spawn) — response demultiplexer thread for the simulated clients
    let demux = thread::spawn(move || -> Result<DemuxOut, String> {
        let mut owner: HashMap<u64, usize> = HashMap::new();
        let mut events: Vec<Ev> = Vec::new();
        let mut frames = 0usize;
        for line in BufReader::new(resp_r).lines() {
            let line = line.map_err(|e| format!("response pipe: {e}"))?;
            frames += 1;
            let json = Json::parse(&line).map_err(|e| format!("unparseable frame: {e}"))?;
            let frame = Frame::from_json(&json)?;
            let target = match &frame {
                Frame::Reply { id, reply } => {
                    let c = ((id >> 32) as usize).saturating_sub(1);
                    if let Reply::Accepted { sessions } = reply {
                        events.push(Ev::Accept(sessions.clone()));
                        for s in sessions {
                            owner.insert(*s, c);
                        }
                    }
                    Some(c)
                }
                Frame::Progress { session, step, .. } => {
                    events.push(Ev::Step(*session, *step));
                    owner.get(session).copied()
                }
                Frame::Done(d) => {
                    events.push(Ev::Done(d.session));
                    owner.get(&d.session).copied()
                }
            };
            if let Some(c) = target {
                let mut buf = line.into_bytes();
                buf.push(b'\n');
                if let Some(w) = to_client.get_mut(c) {
                    // A closed per-client pipe just means that client
                    // already finished; late frames for it are dropped.
                    let _ = w.write_all(&buf);
                }
            }
        }
        Ok((frames, events, owner))
    });

    // Client threads: submit every spec, then advance one round at a time
    // until all own sessions reported done.
    let sw = Stopwatch::start();
    let mut handles = Vec::new();
    for (c, script) in scripts.iter().enumerate() {
        let script = script.to_vec();
        let reader = client_ends[c].take().expect("one reader per client");
        let req_w = req_w.clone();
        // audit: allow(layer) — bench-only client/server harness threads; no evaluation work runs on them
        // lint: allow(thread-spawn) — one generator thread per simulated client
        handles.push(thread::spawn(
            move || -> Result<BTreeMap<(usize, usize, usize), Fingerprint>, String> {
                let err = |e: ClientError| format!("client {c}: {e}");
                let mut client =
                    Client::with_id_base(BufReader::new(reader), req_w, ((c + 1) as u64) << 32);
                let mut mine: HashMap<u64, (usize, usize)> = HashMap::new();
                for (i, spec) in script.iter().enumerate() {
                    let ids = client.run(spec, true).map_err(err)?;
                    for (r, id) in ids.into_iter().enumerate() {
                        mine.insert(id, (i, r));
                    }
                }
                let mut reports = BTreeMap::new();
                let mut idle_rounds = 0usize;
                while reports.len() < mine.len() {
                    let (ran, _live) = client.advance(1).map_err(err)?;
                    for frame in client.take_events() {
                        if let Frame::Done(d) = frame {
                            if let Some(&(i, r)) = mine.get(&d.session) {
                                reports.insert((c, i, r), fingerprint(&d));
                            }
                        }
                    }
                    idle_rounds = if ran == 0 { idle_rounds + 1 } else { 0 };
                    if idle_rounds > 1_000 {
                        return Err(format!(
                            "client {c}: {} of {} sessions never reported done",
                            mine.len() - reports.len(),
                            mine.len()
                        ));
                    }
                }
                Ok(reports)
            },
        ));
    }

    let mut reports = BTreeMap::new();
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread must not panic") {
            Ok(r) => reports.extend(r),
            Err(e) => failures.push(e),
        }
    }
    let wall_ms = sw.elapsed_ms();

    // Coordinator: stop the server, then the demux sees EOF and returns.
    let coordinator_end = client_ends[clients].take().expect("coordinator reader");
    let mut coordinator = Client::with_id_base(
        BufReader::new(coordinator_end),
        req_w,
        ((clients + 1) as u64) << 32,
    );
    coordinator
        .quit()
        .map_err(|e| format!("coordinator: {e}"))?;
    drop(coordinator);
    server
        .join()
        .expect("server thread must not panic")
        .map_err(|e| format!("serve I/O: {e}"))?;
    let (frames, events, owner) = demux.join().expect("demux thread must not panic")?;
    if let Some(failure) = failures.into_iter().next() {
        return Err(failure);
    }

    // Fairness post-processing over the ordered event log. Every spec of
    // client `c` carries weight `1 + c` (see `client_scripts`), so a
    // session's weight follows from its owner.
    let weight_of = |id: &u64| 1.0 + owner.get(id).copied().unwrap_or(0) as f64;
    let mut live: HashMap<u64, usize> = HashMap::new();
    let mut raw_skew = 0usize;
    let mut virtual_skew = 0.0f64;
    let mut steps = 0usize;
    for ev in &events {
        match ev {
            Ev::Accept(ids) => {
                for id in ids {
                    live.insert(*id, 0);
                }
            }
            Ev::Step(id, step) => {
                steps += 1;
                if let Some(done) = live.get_mut(id) {
                    *done = *step;
                }
                if live.len() > 1 {
                    let max = live.values().max().copied().unwrap_or(0);
                    let min = live.values().min().copied().unwrap_or(0);
                    raw_skew = raw_skew.max(max - min);
                    let virt: Vec<f64> = live
                        .iter()
                        .map(|(id, done)| *done as f64 / weight_of(id))
                        .collect();
                    let vmax = virt.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let vmin = virt.iter().copied().fold(f64::INFINITY, f64::min);
                    virtual_skew = virtual_skew.max(vmax - vmin);
                }
            }
            Ev::Done(id) => {
                live.remove(id);
            }
        }
    }

    Ok(PolicyRun {
        wall_ms,
        frames,
        sessions: reports.len(),
        steps,
        reports,
        raw_skew,
        virtual_skew,
    })
}

/// The loadgen benchmark: the identical N-client workload under every
/// scheduling policy, with the cross-policy result-identity assertion.
/// Writes `BENCH_serve_v2.json` into `out` and returns the report table.
///
/// `quick` shrinks the fleet (the CI smoke configuration).
///
/// # Panics
/// Panics when a policy run fails or when any policy's reports diverge
/// from round-robin's — both are protocol bugs, not workload noise.
/// The session counts the quick fused-vs-unfused section sweeps.
const QUICK_FUSED_COUNTS: [usize; 3] = [1, 4, 16];

pub fn loadgen_sweep(quick: bool, out: &std::path::Path) -> TextTable {
    let (clients, specs_per_client, scale) = if quick { (2, 2, 0.12) } else { (4, 3, 0.25) };
    let backend = EvalBackend::WorkerPool(2);
    let scripts = client_scripts(clients, specs_per_client, scale);

    if let Err(e) = std::fs::create_dir_all(out) {
        eprintln!("[warn] could not create {}: {e}", out.display());
    }

    let mut t = TextTable::new([
        "policy",
        "clients",
        "sessions",
        "steps",
        "frames",
        "wall_ms",
        "sessions_per_sec",
        "events_per_sec",
        "step_skew",
        "virtual_skew",
    ]);
    let mut reference: Option<BTreeMap<(usize, usize, usize), Fingerprint>> = None;
    let mut json_policies: Vec<Json> = Vec::new();
    for policy in PolicyKind::ALL {
        let run = run_policy(policy, &scripts, backend, false)
            .unwrap_or_else(|e| panic!("loadgen under {policy}: {e}"));
        match &reference {
            None => reference = Some(run.reports.clone()),
            Some(expected) => assert_eq!(
                expected, &run.reports,
                "policy {policy} changed session results — scheduling must only move latency"
            ),
        }
        assert!(
            run.reports.values().all(|f| f.0 == "finished"),
            "every loadgen session must finish under {policy}"
        );
        let secs = run.wall_ms / 1000.0;
        let sessions_per_sec = run.sessions as f64 / secs;
        let events_per_sec = run.frames as f64 / secs;
        t.row([
            policy.name().to_string(),
            clients.to_string(),
            run.sessions.to_string(),
            run.steps.to_string(),
            run.frames.to_string(),
            f2(run.wall_ms),
            f2(sessions_per_sec),
            f2(events_per_sec),
            run.raw_skew.to_string(),
            f2(run.virtual_skew),
        ]);
        json_policies.push(
            Json::obj()
                .field("policy", policy.name())
                .field("clients", clients)
                .field("sessions", run.sessions)
                .field("steps", run.steps)
                .field("frames", run.frames)
                .field("wall_ms", run.wall_ms)
                .field("sessions_per_sec", sessions_per_sec)
                .field("events_per_sec", events_per_sec)
                .field("step_skew", run.raw_skew)
                .field("virtual_skew", run.virtual_skew)
                .field("reports_identical_to_round_robin", true),
        );
    }

    // Fused-vs-unfused mode: the identical single-client workload at each
    // concurrency level, once with per-session rounds and once with the
    // scheduler fusing every planned session's batches into shared-pool
    // mega-batches. Results must be bit-identical — fusion may only move
    // throughput — and that identity is asserted right here, inside the
    // run the CI smoke job executes.
    let counts: &[usize] = if quick {
        &QUICK_FUSED_COUNTS
    } else {
        &[1, 4, 16, 64]
    };
    let mut json_fused: Vec<Json> = Vec::new();
    for &sessions in counts {
        let scripts = concurrency_scripts(sessions, scale);
        let unfused = run_policy(PolicyKind::RoundRobin, &scripts, backend, false)
            .unwrap_or_else(|e| panic!("loadgen unfused at {sessions} sessions: {e}"));
        let fused = run_policy(PolicyKind::RoundRobin, &scripts, backend, true)
            .unwrap_or_else(|e| panic!("loadgen fused at {sessions} sessions: {e}"));
        assert_eq!(
            unfused.reports, fused.reports,
            "fused rounds changed session results at {sessions} sessions — \
             fusion must only move throughput"
        );
        let evals: u64 = unfused.reports.values().map(|f| f.5).sum();
        let speedup = unfused.wall_ms / fused.wall_ms;
        for (mode, run) in [("unfused", &unfused), ("fused", &fused)] {
            let secs = run.wall_ms / 1000.0;
            t.row([
                format!("{mode}@{sessions}"),
                "1".into(),
                run.sessions.to_string(),
                run.steps.to_string(),
                run.frames.to_string(),
                f2(run.wall_ms),
                f2(run.sessions as f64 / secs),
                f2(run.frames as f64 / secs),
                run.raw_skew.to_string(),
                f2(run.virtual_skew),
            ]);
        }
        json_fused.push(
            Json::obj()
                .field("sessions", sessions)
                .field("evaluations", evals)
                .field("unfused_wall_ms", unfused.wall_ms)
                .field("fused_wall_ms", fused.wall_ms)
                .field(
                    "unfused_evals_per_sec",
                    evals as f64 / (unfused.wall_ms / 1000.0),
                )
                .field(
                    "fused_evals_per_sec",
                    evals as f64 / (fused.wall_ms / 1000.0),
                )
                .field("fused_speedup", speedup)
                .field("reports_identical", true),
        );
    }

    let json = Json::obj()
        .field("bench_format", 1u64)
        .field("suite", "serve_v2_loadgen")
        .field("case", "meadow_small")
        .field("scale", scale)
        .field("quick", quick)
        .field("backend", backend.name())
        .field("clients", clients)
        .field("specs_per_client", specs_per_client)
        .field("policies", Json::Arr(json_policies))
        .field("fused_mode", Json::Arr(json_fused));
    write_bench_json(&out.join("BENCH_serve_v2.json"), &json);
    t
}

/// One client submitting exactly `sessions` single-replicate specs — the
/// concurrency axis of the fused-vs-unfused comparison.
fn concurrency_scripts(sessions: usize, scale: f64) -> Vec<Vec<RunSpec>> {
    let systems = ess_service::systems::names();
    vec![(0..sessions)
        .map(|i| {
            RunSpec::new(systems[i % systems.len()], "meadow_small")
                .seed(11_000 + i as u64)
                .scale(scale)
                .replicates(1)
        })
        .collect()]
}

/// The v2 smoke: runs the recorded multi-client-shaped script (all four
/// systems, watched) once uninterrupted to record the golden transcript,
/// then again with the ESS-NS session checkpointed, killed and restored
/// from its snapshot mid-script, and diffs the final reports.
///
/// Returns the matching transcript on success.
///
/// # Errors
/// The first transcript mismatch, or any transport/protocol failure.
pub fn serve_v2_self_test(backend: EvalBackend) -> Result<String, String> {
    let specs: Vec<RunSpec> = ess_service::systems::names()
        .iter()
        .enumerate()
        .map(|(i, name)| {
            RunSpec::new(*name, "meadow_small")
                .seed(7_500 + i as u64)
                .scale(0.15)
                .weight(1.0 + i as f64)
        })
        .collect();
    // The interruption victim: ESS-NS, the paper's headline system.
    let victim = specs.len() - 1;
    let golden = smoke_transcript(backend, &specs, None)?;
    let resumed = smoke_transcript(backend, &specs, Some(victim))?;
    if golden != resumed {
        let diff: Vec<String> = golden
            .iter()
            .zip(&resumed)
            .filter(|(g, r)| g != r)
            .map(|(g, r)| format!("golden: {g}\nkilled+resumed: {r}"))
            .collect();
        return Err(format!(
            "serve v2 self-test: resumed transcript diverged from golden\n{}",
            diff.join("\n")
        ));
    }
    Ok(golden.join("\n"))
}

/// Runs the smoke script once; `interrupt` names the spec whose session
/// is snapshotted, cancelled and restored after two scheduler rounds.
/// Returns one transcript line per spec (deterministic fields only),
/// spec order.
fn smoke_transcript(
    backend: EvalBackend,
    specs: &[RunSpec],
    interrupt: Option<usize>,
) -> Result<Vec<String>, String> {
    let err = |e: ClientError| format!("smoke client: {e}");
    let (req_w, req_r) = duplex();
    let (resp_w, resp_r) = duplex();
    // audit: allow(layer) — bench-only client/server harness threads; no evaluation work runs on them
    // lint: allow(thread-spawn) — smoke test hosts the serve loop on its own thread
    let server = thread::spawn(move || {
        serve_with(
            BufReader::new(req_r),
            resp_w,
            backend,
            PolicyKind::RoundRobin,
        )
    });
    let mut client = Client::new(BufReader::new(resp_r), req_w);

    let mut spec_of: HashMap<u64, usize> = HashMap::new();
    for (i, spec) in specs.iter().enumerate() {
        let ids = client.run(spec, true).map_err(err)?;
        for id in ids {
            spec_of.insert(id, i);
        }
    }
    if let Some(k) = interrupt {
        client.advance(2).map_err(err)?;
        let (&victim, _) = spec_of
            .iter()
            .find(|(_, i)| **i == k)
            .expect("victim session exists");
        let snapshot = client.snapshot(victim).map_err(err)?;
        client.cancel(victim).map_err(err)?;
        let restored = client.restore(&snapshot, true).map_err(err)?;
        spec_of.insert(restored, k);
    }
    client.drain().map_err(err)?;
    let mut lines: Vec<Option<String>> = vec![None; specs.len()];
    for frame in client.take_events() {
        if let Frame::Done(d) = frame {
            let i = spec_of[&d.session];
            let (status, system, case, steps, quality_bits, evals) = fingerprint(&d);
            lines[i] = Some(format!(
                "{system} {case} {status} steps={steps} quality_bits={quality_bits:016x} evaluations={evals}"
            ));
        }
    }
    client.quit().map_err(err)?;
    server
        .join()
        .expect("server thread must not panic")
        .map_err(|e| format!("serve I/O: {e}"))?;
    lines
        .into_iter()
        .enumerate()
        .map(|(i, l)| l.ok_or(format!("no terminal report for spec {i}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_loadgen_sweep_is_policy_invariant() {
        let dir = std::env::temp_dir().join("ess_loadgen_test");
        let table = loadgen_sweep(true, &dir);
        // One row per policy, then an unfused/fused pair per session count.
        assert_eq!(
            table.len(),
            PolicyKind::ALL.len() + 2 * QUICK_FUSED_COUNTS.len()
        );
        let bench = std::fs::read_to_string(dir.join("BENCH_serve_v2.json"))
            .expect("bench artifact written");
        assert!(bench.contains("\"sessions_per_sec\""));
        assert!(bench.contains("\"reports_identical_to_round_robin\": true"));
        assert!(bench.contains("\"reports_identical\": true"));
        assert!(bench.contains("\"fused_speedup\""));
    }

    #[test]
    fn serve_v2_smoke_passes_on_a_shared_pool() {
        let transcript = serve_v2_self_test(EvalBackend::WorkerPool(2)).expect("smoke must pass");
        assert_eq!(transcript.lines().count(), 4, "one line per system");
        assert!(transcript.contains("ESS-NS"));
    }
}
