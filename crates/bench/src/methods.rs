//! The four systems under comparison — a thin experiment-facing enum over
//! the service crate's unified system registry
//! ([`ess_service::systems`]), which owns the budget-matched canonical
//! configurations.

use ess::pipeline::StepOptimizer;
use ess_service::systems;

/// The systems of experiment E1/E2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// ESS — fitness GA, final population (Fig. 1).
    Ess,
    /// ESSIM-EA — island GA + Monitor.
    EssimEa,
    /// ESSIM-DE — island DE + diversity injection + tuning.
    EssimDe,
    /// ESS-NS — the paper's contribution (Fig. 3).
    EssNs,
}

impl Method {
    /// All four systems, baseline order.
    pub const ALL: [Method; 4] = [Method::Ess, Method::EssimEa, Method::EssimDe, Method::EssNs];

    /// Report key.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Ess => "ESS",
            Method::EssimEa => "ESSIM-EA",
            Method::EssimDe => "ESSIM-DE",
            Method::EssNs => "ESS-NS",
        }
    }

    /// Builds the optimizer with a per-step budget of roughly
    /// `scale × 400` scenario evaluations (the budgets are matched within
    /// ~10 % so the quality comparison is budget-fair; exact counts are
    /// reported in the E1 table). Resolution goes through the unified
    /// registry, so the harness runs exactly what the service serves.
    pub fn make(&self, scale: f64) -> Box<dyn StepOptimizer> {
        systems::by_name(self.name())
            .expect("every Method is registered")
            .make(scale)
    }
}

/// The standard comparison set at unit scale.
pub fn comparable_methods() -> Vec<(Method, Box<dyn StepOptimizer>)> {
    Method::ALL.iter().map(|&m| (m, m.make(1.0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_construct() {
        for m in Method::ALL {
            let opt = m.make(1.0);
            assert_eq!(opt.name(), m.name());
        }
    }

    #[test]
    fn scaling_down_produces_small_configs() {
        for m in Method::ALL {
            let _ = m.make(0.25); // must not panic on small budgets
        }
    }

    #[test]
    fn method_enum_and_registry_stay_in_lockstep() {
        assert_eq!(
            Method::ALL.iter().map(Method::name).collect::<Vec<_>>(),
            systems::names(),
            "Method::ALL and ess_service::systems must list the same systems"
        );
    }
}
