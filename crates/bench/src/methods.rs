//! The four systems under comparison, configured to comparable
//! per-step evaluation budgets so quality comparisons are fair.

use ess::ess_classic::{EssClassic, EssConfig};
use ess::essim_de::{EssimDe, EssimDeConfig, TuningConfig};
use ess::essim_ea::{EssimEa, EssimEaConfig};
use ess::fitness::EvalBackend;
use ess::pipeline::StepOptimizer;
use ess_ns::{EssNs, EssNsConfig, InclusionPolicy, NoveltyGaConfig};

/// The systems of experiment E1/E2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// ESS — fitness GA, final population (Fig. 1).
    Ess,
    /// ESSIM-EA — island GA + Monitor.
    EssimEa,
    /// ESSIM-DE — island DE + diversity injection + tuning.
    EssimDe,
    /// ESS-NS — the paper's contribution (Fig. 3).
    EssNs,
}

impl Method {
    /// All four systems, baseline order.
    pub const ALL: [Method; 4] = [Method::Ess, Method::EssimEa, Method::EssimDe, Method::EssNs];

    /// Report key.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Ess => "ESS",
            Method::EssimEa => "ESSIM-EA",
            Method::EssimDe => "ESSIM-DE",
            Method::EssNs => "ESS-NS",
        }
    }

    /// Builds the optimizer with a per-step budget of roughly
    /// `scale × 400` scenario evaluations (the budgets are matched within
    /// ~10 % so the quality comparison is budget-fair; exact counts are
    /// reported in the E1 table).
    pub fn make(&self, scale: f64) -> Box<dyn StepOptimizer> {
        let s = |v: usize| ((v as f64) * scale).round().max(4.0) as usize;
        match self {
            Method::Ess => Box::new(EssClassic::new(EssConfig {
                population_size: s(32),
                offspring: s(32),
                mutation_rate: 0.1,
                crossover_rate: 0.9,
                max_generations: 12,
                fitness_threshold: 0.95,
            })),
            Method::EssimEa => Box::new(EssimEa::new(EssimEaConfig {
                islands: 3,
                island_population: s(12),
                offspring: s(12),
                mutation_rate: 0.1,
                crossover_rate: 0.9,
                migration_interval: 3,
                migrants: 2.min(s(12) - 1),
                max_generations: 11,
                fitness_threshold: 0.95,
            })),
            Method::EssimDe => Box::new(EssimDe::new(EssimDeConfig {
                islands: 3,
                island_population: s(12),
                differential_weight: 0.8,
                crossover_rate: 0.9,
                migration_interval: 3,
                migrants: 2.min(s(12) - 1),
                max_generations: 11,
                fitness_threshold: 0.95,
                elite_fraction: 0.5,
                result_set_size: s(24),
                tuning: TuningConfig::enabled(),
            })),
            Method::EssNs => Box::new(EssNs::new(EssNsConfig {
                algorithm: NoveltyGaConfig {
                    population_size: s(32),
                    offspring: s(32),
                    max_generations: 12,
                    fitness_threshold: 0.95,
                    novelty_neighbours: 5,
                    archive_capacity: 2 * s(32),
                    best_set_capacity: s(24),
                    ..NoveltyGaConfig::default()
                },
                inclusion: InclusionPolicy::BestOnly,
                backend: EvalBackend::Serial,
                ..EssNsConfig::default()
            })),
        }
    }
}

/// The standard comparison set at unit scale.
pub fn comparable_methods() -> Vec<(Method, Box<dyn StepOptimizer>)> {
    Method::ALL.iter().map(|&m| (m, m.make(1.0))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_construct() {
        for m in Method::ALL {
            let opt = m.make(1.0);
            assert_eq!(opt.name(), m.name());
        }
    }

    #[test]
    fn scaling_down_produces_small_configs() {
        for m in Method::ALL {
            let _ = m.make(0.25); // must not panic on small budgets
        }
    }
}
