//! A minimal unbounded MPMC channel (the communication fabric of the
//! Master/Worker farm), built on `Mutex` + `Condvar` only.
//!
//! The original implementation used `crossbeam::channel`; this workspace
//! builds without external dependencies, so the subset the farm needs is
//! implemented here: unbounded `send`, blocking `recv`, cloneable senders
//! *and* receivers, and disconnect semantics (a `recv` on a channel whose
//! senders are all gone errors out, ending the worker loops; a `send` with
//! no receivers left errors out, ending a worker whose master is gone).

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent value is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Manual impl so `Result::expect` works without `T: Debug`.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

/// The sending half. Cloning registers another producer.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half. Cloning registers another consumer (workers share
/// one task receiver).
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; never blocks. Errors when all receivers dropped.
    // audit: allow(panic) — channel lock poisoning only follows a worker panic; amplifying it is the pool's designed failure mode
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.inner.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    // audit: allow(panic) — channel lock poisoning only follows a worker panic; amplifying it is the pool's designed failure mode
    fn clone(&self) -> Self {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .senders += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake every blocked receiver so it can observe the disconnect.
            self.inner.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is gone.
    // audit: allow(panic) — channel lock poisoning only follows a worker panic; amplifying it is the pool's designed failure mode
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.inner.state.lock().expect("channel lock poisoned");
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.inner.ready.wait(state).expect("channel lock poisoned");
        }
    }
}

impl<T> Clone for Receiver<T> {
    // audit: allow(panic) — channel lock poisoning only follows a worker panic; amplifying it is the pool's designed failure mode
    fn clone(&self) -> Self {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .receivers += 1;
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.inner
            .state
            .lock()
            .expect("channel lock poisoned")
            .receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_consumer() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn cloned_receivers_share_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn many_producers_many_consumers() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..100).map(move |i| p * 1000 + i))
            .collect();
        expected.sort_unstable();
        assert_eq!(all, expected);
    }
}
