//! Scoped, self-scheduling chunk map — the borrowed-data counterpart of
//! [`crate::StealPool`].
//!
//! The persistent pools fix their work function (and its `'static` captured
//! state) at spawn time, which is the right shape for scenario evaluation:
//! the simulator lives as long as the pool. Batch *scoring* work is
//! different — novelty scoring reads a reference set (the generation's
//! behaviour matrix) that is rebuilt every generation and only borrowed for
//! the duration of one scoring round. [`scoped_chunk_map`] covers that
//! case: scoped threads, so `f` may borrow from the caller, with the same
//! dynamic scheduling discipline as the steal pool — workers pull the next
//! contiguous chunk of indices from a shared counter, so an irregular cost
//! profile (e.g. kNN subjects near dense clusters) cannot leave threads
//! idle the way a static split would.

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `0..items`, returning results in index order. Chunks of
/// `chunk_size` consecutive indices are handed out dynamically to at most
/// `workers` scoped threads (self-scheduling, like [`crate::StealPool`]);
/// with one worker — or when a single chunk covers everything — the map
/// runs inline in the caller with no thread spawned at all.
///
/// The result is identical to `(0..items).map(f).collect()` for a pure
/// `f`, whatever the worker count: parallelism changes wall time only.
///
/// # Panics
/// Panics when `workers == 0` or `chunk_size == 0`, and re-raises a panic
/// from `f` (scoped threads propagate on join).
pub fn scoped_chunk_map<R, F>(workers: usize, items: usize, chunk_size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    scoped_chunk_map_ranges(workers, items, chunk_size, |range| range.map(&f).collect())
}

/// The chunk-granular form of [`scoped_chunk_map`]: `f` receives a whole
/// index range and returns its results in range order, so per-chunk
/// scratch state (a distance buffer, a simulator arena) is built once per
/// chunk instead of once per item. Every range is non-empty, ranges cover
/// `0..items` exactly once, and the concatenated result preserves index
/// order.
///
/// # Panics
/// Panics when `workers == 0`, `chunk_size == 0`, or `f` returns a result
/// batch whose length differs from its range; re-raises a panic from `f`.
pub fn scoped_chunk_map_ranges<R, F>(
    workers: usize,
    items: usize,
    chunk_size: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> Vec<R> + Sync,
{
    assert!(workers > 0, "scoped_chunk_map needs at least one worker");
    assert!(chunk_size > 0, "chunk size must be positive");
    if items == 0 {
        return Vec::new();
    }
    let run = |range: Range<usize>| -> Vec<R> {
        let len = range.len();
        let out = f(range);
        assert_eq!(out.len(), len, "chunk work returned a wrong batch size");
        out
    };
    if workers == 1 || items <= chunk_size {
        return run(0..items);
    }
    let next = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let threads = workers.min(items.div_ceil(chunk_size));
    std::thread::scope(|scope| {
        let (run, next, abort, parts, panic_slot) = (&run, &next, &abort, &parts, &panic_slot);
        for _ in 0..threads {
            scope.spawn(move || {
                let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                loop {
                    // Steal the next chunk (monotone counter = shared bag).
                    let start = next.fetch_add(chunk_size, Ordering::Relaxed);
                    if start >= items || abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let end = (start + chunk_size).min(items);
                    // Catch panics so the caller re-raises the original
                    // payload (std scope would replace it with a generic
                    // "a scoped thread panicked").
                    match catch_unwind(AssertUnwindSafe(|| run(start..end))) {
                        Ok(part) => local.push((start, part)),
                        Err(payload) => {
                            abort.store(true, Ordering::Relaxed);
                            panic_slot
                                .lock()
                                .expect("chunk map poisoned")
                                .get_or_insert(payload);
                            break;
                        }
                    }
                }
                parts.lock().expect("chunk map poisoned").extend(local);
            });
        }
    });
    if let Some(payload) = panic_slot.into_inner().expect("chunk map poisoned") {
        resume_unwind(payload);
    }
    let mut parts = parts.into_inner().expect("chunk map poisoned");
    parts.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(items);
    for (_, mut part) in parts {
        out.append(&mut part);
    }
    debug_assert_eq!(out.len(), items, "chunk map lost results");
    out
}

/// Scoped, self-scheduling parallel mutation of a slice of work items —
/// the *stateful* counterpart of [`scoped_chunk_map`], added for per-tile
/// simulation state: each item owns mutable scratch (a tile's frontier
/// queue, its outbox, its gather buffers) that exactly one worker may
/// touch at a time. Items are handed out dynamically in contiguous chunks
/// from a shared bag (same discipline as the steal pool), `f` receives
/// `(item_index, &mut item)`, and with one worker — or a single chunk —
/// everything runs inline in the caller with no thread spawned.
///
/// Unlike [`scoped_chunk_map`] there is no result vector: the mutations
/// *are* the output. For a pure-per-item `f` the final slice state is
/// identical to the serial `for (i, item) in items.iter_mut().enumerate()
/// { f(i, item) }` loop, whatever the worker count.
///
/// # Panics
/// Panics when `workers == 0` or `chunk_size == 0`, and re-raises a panic
/// from `f` (first payload wins; remaining workers stop at the next chunk
/// boundary).
// audit: allow(panic) — bag/slot poisoning only follows a worker panic; re-raising the first payload is the documented contract
pub fn scoped_for_each_mut<T, F>(workers: usize, items: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    assert!(workers > 0, "scoped_for_each_mut needs at least one worker");
    assert!(chunk_size > 0, "chunk size must be positive");
    let n = items.len();
    if n == 0 {
        return;
    }
    if workers == 1 || n <= chunk_size {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    // A bag of disjoint `&mut` chunks: safe shared-out mutability — each
    // chunk is popped by exactly one worker, so no item is ever aliased.
    let bag: Mutex<Vec<(usize, &mut [T])>> = Mutex::new(
        items
            .chunks_mut(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| (ci * chunk_size, chunk))
            .collect(),
    );
    let abort = AtomicBool::new(false);
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
    let threads = workers.min(n.div_ceil(chunk_size));
    std::thread::scope(|scope| {
        let (f, bag, abort, panic_slot) = (&f, &bag, &abort, &panic_slot);
        for _ in 0..threads {
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let Some((start, chunk)) = bag.lock().expect("for-each bag poisoned").pop() else {
                    break;
                };
                let run = || {
                    for (j, item) in chunk.iter_mut().enumerate() {
                        f(start + j, item);
                    }
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
                    abort.store(true, Ordering::Relaxed);
                    panic_slot
                        .lock()
                        .expect("for-each poisoned")
                        .get_or_insert(payload);
                    break;
                }
            });
        }
    });
    if let Some(payload) = panic_slot.into_inner().expect("for-each poisoned") {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_all_worker_and_chunk_sizes() {
        let expected: Vec<u64> = (0..97).map(|i| (i * i) as u64).collect();
        for workers in [1, 2, 3, 8] {
            for chunk in [1, 7, 32, 97, 200] {
                assert_eq!(
                    scoped_chunk_map(workers, 97, chunk, |i| (i * i) as u64),
                    expected,
                    "workers={workers} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn borrows_caller_state() {
        let reference: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let out = scoped_chunk_map(3, reference.len(), 8, |i| reference[i] * 2.0);
        assert_eq!(out, (0..50).map(|i| i as f64 * 2.0).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(scoped_chunk_map(4, 0, 16, |i| i).is_empty());
        assert_eq!(scoped_chunk_map(4, 1, 16, |i| i), vec![0]);
    }

    #[test]
    fn irregular_tasks_complete_in_order() {
        let out = scoped_chunk_map(2, 40, 4, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn range_form_reuses_per_chunk_scratch() {
        // The range form exists so per-chunk scratch is built once per
        // chunk; results must still be index-ordered and serial-identical.
        let expected: Vec<usize> = (0..61).map(|i| i + 7).collect();
        for workers in [1, 3] {
            let out = scoped_chunk_map_ranges(workers, 61, 8, |range| {
                let scratch = 7usize; // stand-in for a per-chunk buffer
                range.map(|i| i + scratch).collect()
            });
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    #[should_panic(expected = "wrong batch size")]
    fn short_chunk_batch_rejected() {
        let _ = scoped_chunk_map_ranges(2, 64, 4, |_range| vec![0u8]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = scoped_chunk_map(0, 4, 1, |i| i);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = scoped_chunk_map(2, 4, 0, |i| i);
    }

    #[test]
    #[should_panic(expected = "chunk exploded")]
    fn worker_panic_propagates() {
        let _ = scoped_chunk_map(2, 64, 4, |i| {
            assert!(i != 33, "chunk exploded");
            i
        });
    }

    #[test]
    fn for_each_mut_matches_serial_for_all_worker_and_chunk_sizes() {
        let expected: Vec<u64> = (0..97).map(|i| (i * 3 + 5) as u64).collect();
        for workers in [1, 2, 3, 8] {
            for chunk in [1, 7, 32, 97, 200] {
                let mut items: Vec<u64> = (0..97).map(|i| i as u64).collect();
                scoped_for_each_mut(workers, &mut items, chunk, |i, v| {
                    assert_eq!(*v, i as u64, "item handed to the wrong index");
                    *v = *v * 3 + 5;
                });
                assert_eq!(items, expected, "workers={workers} chunk={chunk}");
            }
        }
    }

    #[test]
    fn for_each_mut_empty_and_tiny() {
        let mut empty: Vec<u8> = Vec::new();
        scoped_for_each_mut(4, &mut empty, 8, |_, _| unreachable!());
        let mut one = vec![1u8];
        scoped_for_each_mut(4, &mut one, 8, |_, v| *v += 1);
        assert_eq!(one, vec![2]);
    }

    #[test]
    fn for_each_mut_items_own_heap_state() {
        // The per-tile use case in miniature: each item owns growable
        // scratch only its worker touches.
        let mut tiles: Vec<Vec<usize>> = vec![Vec::new(); 23];
        scoped_for_each_mut(3, &mut tiles, 2, |i, tile| {
            tile.extend(0..=i);
        });
        for (i, tile) in tiles.iter().enumerate() {
            assert_eq!(tile.len(), i + 1, "tile {i}");
        }
    }

    #[test]
    #[should_panic(expected = "tile exploded")]
    fn for_each_mut_panic_propagates() {
        let mut items: Vec<usize> = (0..64).collect();
        scoped_for_each_mut(2, &mut items, 4, |i, _| {
            assert!(i != 33, "tile exploded");
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn for_each_mut_zero_workers_rejected() {
        scoped_for_each_mut(0, &mut [1], 1, |_, _: &mut i32| {});
    }
}
