//! Rayon work-stealing backend — the alternative scheduling strategy the
//! benches compare against the channel-based Master/Worker farm.

use rayon::prelude::*;

/// A sized rayon thread pool exposing the same ordered-map contract as
/// [`crate::WorkerPool`].
///
/// Unlike the Master/Worker farm, rayon uses work stealing: tasks are not
/// scattered up front by a master but stolen by idle workers, which can
/// schedule irregular task mixes (e.g. scenarios whose simulations differ
/// wildly in burned area) better. E3 quantifies the difference.
pub struct RayonMap {
    pool: rayon::ThreadPool,
}

impl RayonMap {
    /// Builds a pool with exactly `workers` threads.
    ///
    /// # Panics
    /// Panics when `workers == 0` or the pool cannot be built.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a rayon pool needs at least one worker");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("rayonworker-{i}"))
            .build()
            .expect("failed to build rayon pool");
        Self { pool }
    }

    /// Number of threads.
    pub fn workers(&self) -> usize {
        self.pool.current_num_threads()
    }

    /// Ordered parallel map over borrowed tasks.
    pub fn map<T, R, F>(&self, tasks: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.pool.install(|| tasks.par_iter().map(&f).collect())
    }

    /// Ordered parallel map over owned tasks.
    pub fn map_owned<T, R, F>(&self, tasks: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync + Send,
    {
        self.pool.install(|| tasks.into_par_iter().map(f).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results() {
        let pool = RayonMap::new(3);
        let tasks: Vec<u64> = (0..50).collect();
        assert_eq!(pool.map(&tasks, |&x| x * 3), (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn owned_map_matches_borrowed() {
        let pool = RayonMap::new(2);
        let tasks: Vec<u64> = (0..20).collect();
        let borrowed = pool.map(&tasks, |&x| x + 7);
        let owned = pool.map_owned(tasks, |x| x + 7);
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn respects_thread_count() {
        let pool = RayonMap::new(2);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn empty_input() {
        let pool = RayonMap::new(2);
        let out: Vec<u32> = pool.map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }
}
