//! The persistent Master/Worker task farm.

use crate::channel::{unbounded, Receiver, Sender};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crate::stats::PoolStats;

/// A persistent Master/Worker pool.
///
/// The master (the thread calling [`WorkerPool::map`]) scatters indexed
/// tasks onto a shared channel; each worker owns mutable per-worker state
/// built once by the state factory (the fire-prediction systems put a
/// simulator with reusable scratch rasters there), computes results, and
/// sends them back tagged with their index; the master gathers and restores
/// submission order. This mirrors the OS-Master / OS-Worker split of
/// Figs. 1 and 3.
///
/// Workers live until the pool is dropped, so repeated generations of an
/// evolutionary run reuse the same threads and state — no per-generation
/// spawn cost, which matters for the E3 speedup measurements.
pub struct WorkerPool<T, R> {
    task_tx: Option<Sender<(usize, T)>>,
    result_rx: Receiver<(usize, std::thread::Result<R>)>,
    handles: Vec<JoinHandle<()>>,
    busy_nanos: Arc<Vec<AtomicU64>>,
    tasks_done: Arc<Vec<AtomicU64>>,
    workers: usize,
    poisoned: bool,
}

impl<T: Send + 'static, R: Send + 'static> WorkerPool<T, R> {
    /// Spawns `workers` threads. `state_factory(worker_id)` builds each
    /// worker's private state; `work(&mut state, task)` evaluates one task.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    // audit: allow(panic) — spawn failure and channel hangup only follow OS exhaustion or a worker panic; amplifying them is the pool's designed failure mode
    pub fn new<S, F, W>(workers: usize, state_factory: F, work: W) -> Self
    where
        S: Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
        W: Fn(&mut S, T) -> R + Send + Sync + 'static,
    {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let (task_tx, task_rx) = unbounded::<(usize, T)>();
        let (result_tx, result_rx) = unbounded::<(usize, std::thread::Result<R>)>();
        let busy_nanos: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let tasks_done: Arc<Vec<AtomicU64>> =
            Arc::new((0..workers).map(|_| AtomicU64::new(0)).collect());
        let work = Arc::new(work);
        let state_factory = Arc::new(state_factory);

        let mut handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            let task_rx: Receiver<(usize, T)> = task_rx.clone();
            let result_tx = result_tx.clone();
            let work = Arc::clone(&work);
            let state_factory = Arc::clone(&state_factory);
            let busy = Arc::clone(&busy_nanos);
            let done = Arc::clone(&tasks_done);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("parworker-{wid}"))
                    .spawn(move || {
                        let mut state = state_factory(wid);
                        // The receive loop ends when every Sender is
                        // dropped (pool shutdown).
                        while let Ok((idx, task)) = task_rx.recv() {
                            // audit: allow(taint) — per-task busy-time telemetry; readings are reported, never fed back into results
                            // lint: allow(wall-clock) — per-task busy-time telemetry; never feeds back into results
                            let t = Instant::now();
                            // Catch panics so a crashing work function
                            // surfaces in the master instead of deadlocking
                            // its gather loop.
                            let result = catch_unwind(AssertUnwindSafe(|| work(&mut state, task)));
                            busy[wid].fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            done[wid].fetch_add(1, Ordering::Relaxed);
                            let failed = result.is_err();
                            if result_tx.send((idx, result)).is_err() {
                                break; // master gone
                            }
                            if failed {
                                break; // state may be corrupt after unwind
                            }
                        }
                    })
                    .expect("failed to spawn worker thread"),
            );
        }
        Self {
            task_tx: Some(task_tx),
            result_rx,
            handles,
            busy_nanos,
            tasks_done,
            workers,
            poisoned: false,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Scatter `tasks` to the workers and gather the results in submission
    /// order. Takes `&mut self` so two concurrent `map` calls cannot
    /// interleave their result streams.
    ///
    /// # Panics
    /// Re-raises the first panic a worker's work function raised (the pool
    /// is then poisoned and must not be reused).
    // audit: allow(panic) — hangup/poisoning only follow a worker panic; re-raising it here is the pool's designed failure mode
    pub fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        assert!(
            !self.poisoned,
            "worker pool poisoned by an earlier worker panic"
        );
        let n = tasks.len();
        let tx = self.task_tx.as_ref().expect("pool already shut down");
        for (idx, task) in tasks.into_iter().enumerate() {
            tx.send((idx, task)).expect("worker pool hung up");
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (idx, result) = self.result_rx.recv().expect("worker pool hung up");
            match result {
                Ok(r) => {
                    debug_assert!(slots[idx].is_none(), "duplicate result for task {idx}");
                    slots[idx] = Some(r);
                }
                Err(payload) => {
                    self.poisoned = true;
                    resume_unwind(payload);
                }
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("missing result"))
            .collect()
    }

    /// Cumulative per-worker instrumentation.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            busy_nanos: self
                .busy_nanos
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            tasks_done: self
                .tasks_done
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl<T, R> Drop for WorkerPool<T, R> {
    fn drop(&mut self) {
        // Closing the task channel stops the workers' receive loops.
        self.task_tx.take();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// One-shot scoped fork/join map: splits `tasks` into `workers` contiguous
/// chunks and evaluates them on scoped threads, so `f` may borrow from the
/// caller. Results come back in input order.
///
/// Used where building a persistent pool is not worth it (the calibration
/// stage's threshold sweep, tests) and as the comparison point for the
/// channel-based farm in the scheduling bench.
pub fn scoped_par_map<T, R, F>(workers: usize, tasks: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    assert!(workers > 0, "scoped_par_map needs at least one worker");
    if workers == 1 || tasks.len() <= 1 {
        return tasks.iter().map(&f).collect();
    }
    let chunk = tasks.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = (0..tasks.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let f = &f;
        for (slot_chunk, task_chunk) in out.chunks_mut(chunk).zip(tasks.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, task) in slot_chunk.iter_mut().zip(task_chunk) {
                    *slot = Some(f(task));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("missing result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(4, |_| (), |_, x| x * 2);
        let out = pool.map((0..100).collect());
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_maps_reuse_workers() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(2, |_| (), |_, x| x + 1);
        for round in 0..10u64 {
            let out = pool.map(vec![round, round + 1]);
            assert_eq!(out, vec![round + 1, round + 2]);
        }
        let stats = pool.stats();
        assert_eq!(stats.total_tasks(), 20);
    }

    #[test]
    fn worker_state_is_private_and_persistent() {
        // Each worker counts its own tasks in its private state; totals
        // must add up without any synchronisation in the work fn.
        let mut pool: WorkerPool<(), usize> = WorkerPool::new(
            3,
            |_| 0usize,
            |count, ()| {
                *count += 1;
                *count
            },
        );
        let results = pool.map(vec![(); 60]);
        // Private counters: the sum of the final per-worker counts equals 60.
        let stats = pool.stats();
        assert_eq!(stats.total_tasks(), 60);
        assert_eq!(results.len(), 60);
        // Every result is a positive per-worker sequence number.
        assert!(results.iter().all(|c| (1..=60).contains(c)));
    }

    #[test]
    fn state_factory_receives_worker_ids() {
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = Arc::clone(&seen);
        let mut pool: WorkerPool<(), ()> = WorkerPool::new(
            4,
            move |wid| {
                seen2.fetch_add(wid + 1, Ordering::SeqCst);
            },
            |_, ()| (),
        );
        let _ = pool.map(vec![(); 4]);
        // A worker that received no task may still be starting up; dropping
        // the pool joins every thread, guaranteeing all factories ran.
        drop(pool);
        // ids 0..4 → sum of (id+1) = 10.
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let mut pool: WorkerPool<u32, u32> = WorkerPool::new(2, |_| (), |_, x| x);
        assert!(pool.map(vec![]).is_empty());
    }

    #[test]
    fn stats_track_busy_time() {
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(
            2,
            |_| (),
            |_, x| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                x
            },
        );
        let _ = pool.map((0..8).collect());
        let stats = pool.stats();
        assert!(
            stats.total_busy_nanos() >= 8 * 2_000_000,
            "busy time unmeasured"
        );
        assert_eq!(stats.total_tasks(), 8);
    }

    #[test]
    fn parallel_pool_beats_serial_on_coarse_tasks() {
        // 2 cores are guaranteed in CI here; use sleep-based tasks so the
        // comparison is scheduling-only and robust to load.
        let task_ms = 10u64;
        let tasks: Vec<u64> = vec![task_ms; 8];
        let work = |x: &u64| {
            std::thread::sleep(std::time::Duration::from_millis(*x));
            *x
        };
        let t = Instant::now();
        let _: Vec<u64> = tasks.iter().map(work).collect();
        let serial = t.elapsed();
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(
            2,
            |_| (),
            move |_, x| {
                std::thread::sleep(std::time::Duration::from_millis(x));
                x
            },
        );
        let t = Instant::now();
        let _ = pool.map(tasks);
        let parallel = t.elapsed();
        assert!(
            parallel < serial,
            "2-worker pool ({parallel:?}) should beat serial ({serial:?}) on sleep tasks"
        );
    }

    #[test]
    fn scoped_map_matches_serial() {
        let tasks: Vec<u32> = (0..37).collect();
        let serial: Vec<u32> = tasks.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8] {
            assert_eq!(scoped_par_map(workers, &tasks, |x| x * x), serial);
        }
    }

    #[test]
    fn scoped_map_borrows_environment() {
        let offset = 100u32;
        let tasks = vec![1u32, 2, 3];
        let out = scoped_par_map(2, &tasks, |x| x + offset);
        assert_eq!(out, vec![101, 102, 103]);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: WorkerPool<u32, u32> = WorkerPool::new(0, |_| (), |_, x| x);
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn worker_panic_propagates_to_master() {
        // A crashing work function must fail the map call, not deadlock it.
        let mut pool: WorkerPool<u64, u64> = WorkerPool::new(
            2,
            |_| (),
            |_, x| {
                assert!(x != 3, "task exploded");
                x
            },
        );
        let _ = pool.map((0..8).collect());
    }
}
