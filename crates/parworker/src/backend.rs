//! The unified batch-evaluation backend layer.
//!
//! Every system in the ESS family parallelises exactly one thing: mapping a
//! batch of tasks (scenarios) to results (fitness values) on a pool of
//! workers that own reusable private state (a simulator with scratch
//! rasters). This module is the single abstraction for that operation:
//!
//! * [`Backend`] — the object-safe batch-map contract. All implementations
//!   return results **in submission order** and compute each result with
//!   the same work function, so for a pure work function every backend
//!   produces bit-identical outputs for the same input batch.
//! * [`EvalBackend`] — the runtime *specification* of a backend (a plain
//!   config value: serial, Master/Worker farm of `n`, work stealing over
//!   `n`). [`EvalBackend::build`] turns a spec plus a state factory and a
//!   work function into a running [`Backend`]. Specs parse from strings
//!   (`"serial"`, `"worker-pool:4"`, `"rayon:4"`), so CLIs and config files
//!   can select backends without code changes.
//!
//! Consumers (the `ess` crate's `ScenarioEvaluator`, the bench harness)
//! hold a `Box<dyn Backend<T, R>>` and never know which strategy runs
//! underneath — swapping backends is a config edit, not a refactor.

use crate::pool::WorkerPool;
use crate::steal::StealPool;
use std::fmt;
use std::str::FromStr;

/// Object-safe batch evaluation: maps an owned task batch to results in
/// submission order. `&mut self` serialises rounds (worker state is
/// per-round exclusive).
pub trait Backend<T: Send, R: Send>: Send {
    /// Evaluates every task; `result[i]` corresponds to `tasks[i]`.
    fn map(&mut self, tasks: Vec<T>) -> Vec<R>;

    /// Human-readable backend name for reports.
    fn name(&self) -> String;

    /// Degree of parallelism (1 for serial).
    fn workers(&self) -> usize;
}

/// Boxed backends are backends (the default dynamic configuration).
impl<T: Send, R: Send> Backend<T, R> for Box<dyn Backend<T, R>> {
    fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        (**self).map(tasks)
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn workers(&self) -> usize {
        1.max((**self).workers())
    }
}

/// The in-master serial backend: one private state, tasks evaluated in a
/// plain loop (the 1-worker baseline of experiment E3).
pub struct SerialBackend<S, F> {
    state: S,
    work: F,
}

impl<S, F> SerialBackend<S, F> {
    /// Builds the backend around one worker state and the work function.
    pub fn new<T, R>(state: S, work: F) -> Self
    where
        F: Fn(&mut S, T) -> R,
    {
        Self { state, work }
    }
}

impl<T, R, S, F> Backend<T, R> for SerialBackend<S, F>
where
    T: Send,
    R: Send,
    S: Send,
    F: Fn(&mut S, T) -> R + Send,
{
    fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        tasks
            .into_iter()
            .map(|t| (self.work)(&mut self.state, t))
            .collect()
    }

    fn name(&self) -> String {
        "serial".to_string()
    }

    fn workers(&self) -> usize {
        1
    }
}

impl<T: Send + 'static, R: Send + 'static> Backend<T, R> for WorkerPool<T, R> {
    fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        WorkerPool::map(self, tasks)
    }

    fn name(&self) -> String {
        format!("worker-pool({})", WorkerPool::workers(self))
    }

    fn workers(&self) -> usize {
        WorkerPool::workers(self)
    }
}

impl<T: Send + 'static, R: Send + 'static> Backend<T, R> for StealPool<T, R> {
    fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        StealPool::map(self, tasks)
    }

    fn name(&self) -> String {
        format!("rayon({})", StealPool::workers(self))
    }

    fn workers(&self) -> usize {
        StealPool::workers(self)
    }
}

/// Which execution backend evaluates batches — a plain runtime config
/// value. Build the running backend with [`EvalBackend::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalBackend {
    /// Single-threaded, in the master (the 1-worker baseline of E3).
    Serial,
    /// The persistent Master/Worker channel farm with this many workers
    /// (the paper's deployment model).
    WorkerPool(usize),
    /// The work-stealing pool with this many threads (scheduling
    /// comparison point; historically backed by the rayon crate, now the
    /// dependency-free [`StealPool`] with the same dynamic scheduling).
    Rayon(usize),
}

impl EvalBackend {
    /// Human-readable backend name for reports.
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// Degree of parallelism the spec asks for.
    pub fn workers(&self) -> usize {
        match self {
            EvalBackend::Serial => 1,
            EvalBackend::WorkerPool(n) | EvalBackend::Rayon(n) => (*n).max(1),
        }
    }

    /// Instantiates the backend: `state_factory(worker_id)` builds each
    /// worker's private state once, `work(&mut state, task)` evaluates one
    /// task. All three strategies run the *same* work function, so a pure
    /// `work` makes their outputs bit-identical.
    ///
    /// # Panics
    /// Panics when a parallel spec has zero workers.
    pub fn build<T, R, S, F, W>(self, state_factory: F, work: W) -> Box<dyn Backend<T, R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        S: Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
        W: Fn(&mut S, T) -> R + Send + Sync + 'static,
    {
        match self {
            EvalBackend::Serial => Box::new(SerialBackend::new(state_factory(0), work)),
            EvalBackend::WorkerPool(n) => Box::new(WorkerPool::new(n, state_factory, work)),
            EvalBackend::Rayon(n) => Box::new(StealPool::new(n, state_factory, work)),
        }
    }
}

impl fmt::Display for EvalBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalBackend::Serial => write!(f, "serial"),
            EvalBackend::WorkerPool(n) => write!(f, "worker-pool({n})"),
            EvalBackend::Rayon(n) => write!(f, "rayon({n})"),
        }
    }
}

/// Error from parsing an [`EvalBackend`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(String);

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid backend '{}' (expected serial | worker-pool:N | rayon:N)",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for EvalBackend {
    type Err = ParseBackendError;

    /// Parses `serial`, `worker-pool:N` (aliases `pool:N`,
    /// `master-worker:N`, `mw:N`) and `rayon:N` (alias `steal:N`). The
    /// `Display` form `worker-pool(N)` / `rayon(N)` is accepted too, so
    /// backend names printed in reports round-trip back through configs.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let spec = s.trim();
        if spec.eq_ignore_ascii_case("serial") {
            return Ok(EvalBackend::Serial);
        }
        let (kind, count) = match spec.strip_suffix(')').and_then(|p| p.split_once('(')) {
            Some(pair) => pair,
            None => spec
                .split_once(':')
                .ok_or_else(|| ParseBackendError(s.into()))?,
        };
        let n: usize = count
            .trim()
            .parse()
            .map_err(|_| ParseBackendError(s.into()))?;
        if n == 0 {
            return Err(ParseBackendError(s.into()));
        }
        match kind.trim().to_ascii_lowercase().as_str() {
            "worker-pool" | "pool" | "master-worker" | "mw" => Ok(EvalBackend::WorkerPool(n)),
            "rayon" | "steal" => Ok(EvalBackend::Rayon(n)),
            _ => Err(ParseBackendError(s.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doubled_by(backend: EvalBackend) -> Vec<u64> {
        let mut b = backend.build(|_| (), |_: &mut (), x: u64| x * 2);
        b.map((0..40).collect())
    }

    #[test]
    fn all_backends_agree_on_a_pure_function() {
        let expected: Vec<u64> = (0..40).map(|x| x * 2).collect();
        for backend in [
            EvalBackend::Serial,
            EvalBackend::WorkerPool(3),
            EvalBackend::Rayon(3),
        ] {
            assert_eq!(doubled_by(backend), expected, "{backend} diverged");
        }
    }

    #[test]
    fn per_worker_state_is_built_per_worker() {
        // Worker ids seed the state; the result set must only contain ids
        // below the worker count.
        let mut b = EvalBackend::WorkerPool(3).build(|wid| wid, |wid: &mut usize, _: ()| *wid);
        let seen = b.map(vec![(); 64]);
        assert!(seen.iter().all(|&w| w < 3));
    }

    #[test]
    fn names_and_workers() {
        assert_eq!(EvalBackend::Serial.name(), "serial");
        assert_eq!(EvalBackend::WorkerPool(4).name(), "worker-pool(4)");
        assert_eq!(EvalBackend::Rayon(2).name(), "rayon(2)");
        assert_eq!(EvalBackend::Serial.workers(), 1);
        assert_eq!(EvalBackend::WorkerPool(4).workers(), 4);
        let built = EvalBackend::Rayon(2).build(|_| (), |_: &mut (), x: u8| x);
        assert_eq!(Backend::<u8, u8>::name(&built), "rayon(2)");
        assert_eq!(Backend::<u8, u8>::workers(&built), 2);
    }

    #[test]
    fn specs_parse_from_strings() {
        assert_eq!(
            "serial".parse::<EvalBackend>().unwrap(),
            EvalBackend::Serial
        );
        assert_eq!(
            "SERIAL".parse::<EvalBackend>().unwrap(),
            EvalBackend::Serial
        );
        assert_eq!(
            "worker-pool:4".parse::<EvalBackend>().unwrap(),
            EvalBackend::WorkerPool(4)
        );
        assert_eq!(
            "pool:2".parse::<EvalBackend>().unwrap(),
            EvalBackend::WorkerPool(2)
        );
        assert_eq!(
            "mw:8".parse::<EvalBackend>().unwrap(),
            EvalBackend::WorkerPool(8)
        );
        assert_eq!(
            "rayon:2".parse::<EvalBackend>().unwrap(),
            EvalBackend::Rayon(2)
        );
        assert_eq!(
            "steal:3".parse::<EvalBackend>().unwrap(),
            EvalBackend::Rayon(3)
        );
        assert!("bogus".parse::<EvalBackend>().is_err());
        assert!("rayon:0".parse::<EvalBackend>().is_err());
        assert!("pool:x".parse::<EvalBackend>().is_err());
    }

    #[test]
    fn display_form_parses_back() {
        // Names printed in reports (e.g. the E3 table) are valid specs.
        for backend in [
            EvalBackend::Serial,
            EvalBackend::WorkerPool(4),
            EvalBackend::Rayon(2),
        ] {
            assert_eq!(backend.to_string().parse::<EvalBackend>().unwrap(), backend);
        }
        assert!("worker-pool()".parse::<EvalBackend>().is_err());
        assert!("(4)".parse::<EvalBackend>().is_err());
    }

    #[test]
    fn display_round_trips_through_name() {
        for backend in [
            EvalBackend::Serial,
            EvalBackend::WorkerPool(2),
            EvalBackend::Rayon(5),
        ] {
            assert_eq!(backend.to_string(), backend.name());
        }
    }
}
