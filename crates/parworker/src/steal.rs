//! Work-stealing backend — the alternative scheduling strategy the benches
//! compare against the channel-based Master/Worker farm.
//!
//! Historically this was a `rayon::ThreadPool`; the workspace now builds
//! without external dependencies, so the same scheduling behaviour is
//! reproduced on std threads: instead of the master scattering indexed
//! tasks up front, idle workers *pull* ("steal") the next task from a
//! shared bag, which adapts to irregular task mixes (e.g. scenarios whose
//! simulations differ wildly in burned area). Like the Master/Worker farm
//! — and unlike a classic rayon pool — each worker owns private mutable
//! state built once at spawn, so simulator scratch buffers are reused
//! across every `map` call with zero allocation in the hot loop.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Round<T, R> {
    tasks: VecDeque<(usize, T)>,
    results: Vec<Option<R>>,
    /// Tasks handed out or queued but not yet completed this round.
    pending: usize,
    /// Payload of the first worker panic this round, re-raised in the
    /// master so a crashing work function cannot deadlock `map`.
    panic: Option<Box<dyn Any + Send>>,
    shutdown: bool,
}

struct Shared<T, R> {
    round: Mutex<Round<T, R>>,
    /// Signalled when tasks arrive or the pool shuts down.
    work_ready: Condvar,
    /// Signalled when the last task of a round completes.
    round_done: Condvar,
}

/// A persistent self-scheduling ("work-stealing") pool with per-worker
/// state and the same ordered-map contract as [`crate::WorkerPool`].
pub struct StealPool<T, R> {
    shared: Arc<Shared<T, R>>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    poisoned: bool,
}

impl<T: Send + 'static, R: Send + 'static> StealPool<T, R> {
    /// Spawns `workers` threads. `state_factory(worker_id)` builds each
    /// worker's private state; `work(&mut state, task)` evaluates one task.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    // audit: allow(panic) — spawn failure and lock poisoning only follow OS exhaustion or a worker panic; amplifying them is the pool's designed failure mode
    pub fn new<S, F, W>(workers: usize, state_factory: F, work: W) -> Self
    where
        S: Send + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
        W: Fn(&mut S, T) -> R + Send + Sync + 'static,
    {
        assert!(
            workers > 0,
            "a work-stealing pool needs at least one worker"
        );
        let shared = Arc::new(Shared {
            round: Mutex::new(Round {
                tasks: VecDeque::new(),
                results: Vec::new(),
                pending: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            round_done: Condvar::new(),
        });
        let work = Arc::new(work);
        let state_factory = Arc::new(state_factory);
        let mut handles = Vec::with_capacity(workers);
        for wid in 0..workers {
            let shared = Arc::clone(&shared);
            let work = Arc::clone(&work);
            let state_factory = Arc::clone(&state_factory);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("stealworker-{wid}"))
                    .spawn(move || {
                        let mut state = state_factory(wid);
                        loop {
                            // Steal the next task (or exit on shutdown).
                            let (idx, task) = {
                                let mut round =
                                    shared.round.lock().expect("steal pool lock poisoned");
                                loop {
                                    if let Some(t) = round.tasks.pop_front() {
                                        break t;
                                    }
                                    if round.shutdown {
                                        return;
                                    }
                                    round = shared
                                        .work_ready
                                        .wait(round)
                                        .expect("steal pool lock poisoned");
                                }
                            };
                            let result = catch_unwind(AssertUnwindSafe(|| work(&mut state, task)));
                            let mut round = shared.round.lock().expect("steal pool lock poisoned");
                            round.pending -= 1;
                            match result {
                                Ok(r) => {
                                    debug_assert!(round.results[idx].is_none(), "duplicate result");
                                    round.results[idx] = Some(r);
                                    if round.pending == 0 {
                                        shared.round_done.notify_all();
                                    }
                                }
                                Err(payload) => {
                                    // Record the panic for the master and
                                    // retire this worker (its state may be
                                    // corrupt after the unwind).
                                    round.panic.get_or_insert(payload);
                                    shared.round_done.notify_all();
                                    return;
                                }
                            }
                        }
                    })
                    .expect("failed to spawn steal worker"),
            );
        }
        Self {
            shared,
            handles,
            workers,
            poisoned: false,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Publishes `tasks` to the shared bag and blocks until every result is
    /// in, returning them in submission order. `&mut self` keeps rounds
    /// from interleaving.
    ///
    /// # Panics
    /// Re-raises the first panic a worker's work function raised (the pool
    /// is then poisoned and must not be reused).
    // audit: allow(panic) — lock poisoning only follows a worker panic; re-raising it here is the pool's designed failure mode
    pub fn map(&mut self, tasks: Vec<T>) -> Vec<R> {
        assert!(
            !self.poisoned,
            "steal pool poisoned by an earlier worker panic"
        );
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let mut round = self.shared.round.lock().expect("steal pool lock poisoned");
        debug_assert!(
            round.tasks.is_empty() && round.pending == 0,
            "overlapping rounds"
        );
        round.results = (0..n).map(|_| None).collect();
        round.pending = n;
        round.tasks.extend(tasks.into_iter().enumerate());
        self.shared.work_ready.notify_all();
        loop {
            if let Some(payload) = round.panic.take() {
                // Stop handing out work and propagate the worker's panic.
                round.tasks.clear();
                drop(round);
                self.poisoned = true;
                resume_unwind(payload);
            }
            if round.pending == 0 {
                break;
            }
            round = self
                .shared
                .round_done
                .wait(round)
                .expect("steal pool lock poisoned");
        }
        std::mem::take(&mut round.results)
            .into_iter()
            .map(|r| r.expect("missing result"))
            .collect()
    }
}

impl<T, R> Drop for StealPool<T, R> {
    fn drop(&mut self) {
        {
            let mut round = self.shared.round.lock().expect("steal pool lock poisoned");
            round.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_results() {
        let mut pool: StealPool<u64, u64> = StealPool::new(3, |_| (), |_, x| x * 3);
        let out = pool.map((0..50).collect());
        assert_eq!(out, (0..50).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_rounds_reuse_workers_and_state() {
        // Per-worker counters persist across rounds: totals add up.
        let mut pool: StealPool<(), usize> = StealPool::new(
            3,
            |_| 0usize,
            |count, ()| {
                *count += 1;
                *count
            },
        );
        let mut total = 0usize;
        for _ in 0..5 {
            total += pool.map(vec![(); 12]).len();
        }
        assert_eq!(total, 60);
    }

    #[test]
    fn respects_thread_count() {
        let pool: StealPool<(), ()> = StealPool::new(2, |_| (), |_, ()| ());
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn empty_input() {
        let mut pool: StealPool<u32, u32> = StealPool::new(2, |_| (), |_, x| x);
        assert!(pool.map(vec![]).is_empty());
    }

    #[test]
    fn irregular_tasks_complete() {
        let mut pool: StealPool<u64, u64> = StealPool::new(
            2,
            |_| (),
            |_, x| {
                std::thread::sleep(std::time::Duration::from_micros(x * 50));
                x
            },
        );
        let tasks: Vec<u64> = (0..20).map(|i| if i % 5 == 0 { 40 } else { 1 }).collect();
        assert_eq!(pool.map(tasks.clone()), tasks);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _: StealPool<u32, u32> = StealPool::new(0, |_| (), |_, x| x);
    }

    #[test]
    #[should_panic(expected = "task exploded")]
    fn worker_panic_propagates_to_master() {
        // A crashing work function must fail the map call, not deadlock it.
        let mut pool: StealPool<u64, u64> = StealPool::new(
            2,
            |_| (),
            |_, x| {
                assert!(x != 3, "task exploded");
                x
            },
        );
        let _ = pool.map((0..8).collect());
    }
}
