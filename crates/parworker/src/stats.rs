//! Instrumentation for the parallel-performance experiments (E3).

use std::time::{Duration, Instant};

/// Cumulative per-worker counters captured from a
/// [`crate::WorkerPool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of workers.
    pub workers: usize,
    /// Per-worker cumulative busy time in nanoseconds.
    pub busy_nanos: Vec<u64>,
    /// Per-worker completed task counts.
    pub tasks_done: Vec<u64>,
}

impl PoolStats {
    /// Total busy time across workers (ns).
    pub fn total_busy_nanos(&self) -> u64 {
        self.busy_nanos.iter().sum()
    }

    /// Total tasks completed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_done.iter().sum()
    }

    /// Load imbalance: max over mean of per-worker busy time (1.0 =
    /// perfectly balanced). Returns 1.0 when nothing ran.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_busy_nanos();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.workers as f64;
        let max = *self.busy_nanos.iter().max().expect("non-empty") as f64;
        max / mean
    }
}

/// A single row of the speedup table: one configuration's timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// Worker count of this configuration.
    pub workers: usize,
    /// Wall-clock time of the measured region.
    pub wall: Duration,
    /// Speedup relative to the 1-worker baseline.
    pub speedup: f64,
    /// Parallel efficiency: speedup / workers.
    pub efficiency: f64,
}

impl SpeedupRow {
    /// Builds a row from a measurement and its serial baseline.
    pub fn new(workers: usize, wall: Duration, baseline: Duration) -> Self {
        let speedup = if wall.as_nanos() == 0 {
            f64::INFINITY
        } else {
            baseline.as_secs_f64() / wall.as_secs_f64()
        };
        Self {
            workers,
            wall,
            speedup,
            efficiency: speedup / workers as f64,
        }
    }
}

/// Renders a speedup table in the style of the predecessor papers'
/// response-time tables.
pub fn render_speedup_table(rows: &[SpeedupRow]) -> String {
    let mut out = String::from("workers  wall_ms   speedup  efficiency\n");
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<9.1} {:<8.2} {:.2}\n",
            r.workers,
            r.wall.as_secs_f64() * 1e3,
            r.speedup,
            r.efficiency
        ));
    }
    out
}

/// A simple region stopwatch used across the harness binaries.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    pub fn start() -> Self {
        Self {
            // audit: allow(taint) — elapsed-time telemetry is reported, never fed back into fitness or scheduling decisions inside deterministic crates
            // lint: allow(wall-clock) — the Stopwatch IS the telemetry primitive the rule funnels callers into
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds (convenience for report rows).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_imbalance() {
        let s = PoolStats {
            workers: 2,
            busy_nanos: vec![100, 300],
            tasks_done: vec![1, 3],
        };
        assert_eq!(s.total_busy_nanos(), 400);
        assert_eq!(s.total_tasks(), 4);
        assert!((s.imbalance() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn balanced_pool_has_unit_imbalance() {
        let s = PoolStats {
            workers: 4,
            busy_nanos: vec![50; 4],
            tasks_done: vec![2; 4],
        };
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_pool_reports_neutral_imbalance() {
        let s = PoolStats {
            workers: 4,
            busy_nanos: vec![0; 4],
            tasks_done: vec![0; 4],
        };
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn speedup_row_math() {
        let r = SpeedupRow::new(4, Duration::from_millis(25), Duration::from_millis(100));
        assert!((r.speedup - 4.0).abs() < 1e-9);
        assert!((r.efficiency - 1.0).abs() < 1e-9);
        let r2 = SpeedupRow::new(4, Duration::from_millis(50), Duration::from_millis(100));
        assert!((r2.efficiency - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            SpeedupRow::new(1, Duration::from_millis(100), Duration::from_millis(100)),
            SpeedupRow::new(2, Duration::from_millis(55), Duration::from_millis(100)),
        ];
        let t = render_speedup_table(&rows);
        assert!(t.contains("workers"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn stopwatch_measures_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_ms() >= 4.0);
    }
}
