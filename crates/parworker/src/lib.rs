//! `parworker` — the parallel evaluation engine of the ESS systems, and
//! the home of the **unified batch-evaluation backend layer**.
//!
//! Every system in the ESS family parallelises the same thing: the
//! evaluation of scenarios ("the Master process only delegates the
//! simulation and evaluation of individuals to the Workers, since this is
//! the most demanding part of the prediction process", paper §III-A; "in a
//! first version, parallelism will only be implemented in the evaluation of
//! the scenarios", §III-B). The original systems use MPI processes; this
//! crate reproduces the communication patterns with OS threads and exposes
//! them behind one pluggable abstraction:
//!
//! * [`backend`] — the [`Backend`] trait (ordered batch map with
//!   per-worker state) and the [`EvalBackend`] runtime spec that builds
//!   one of the three interchangeable implementations below. This is the
//!   single seam between the metaheuristics and the hardware: algorithm
//!   code depends on the trait only, and backend choice is a config value.
//! * [`pool::WorkerPool`] — a persistent Master/Worker task farm. The
//!   master scatters indexed tasks over a shared channel; workers own
//!   per-worker mutable state (e.g. a simulator with scratch buffers),
//!   compute, and send results back; the master gathers and reorders.
//! * [`steal::StealPool`] — the same contract with work-stealing
//!   scheduling (idle workers pull from a shared bag), used to compare
//!   scheduling strategies in the benches.
//! * [`backend::SerialBackend`] — the in-master 1-worker baseline of E3.
//! * [`pool::scoped_par_map`] — a one-shot scoped fork/join map for
//!   borrowed data.
//! * [`chunk::scoped_chunk_map`] — the self-scheduling scoped chunk map
//!   (StealPool's dynamic scheduling over borrowed data); the batch
//!   novelty-scoring path of the `evoalg` crate runs on it.
//! * [`channel`] — the dependency-free MPMC channel under the farm.
//! * [`stats`] — wall-clock / busy-time instrumentation feeding the
//!   speedup experiment (E3).

pub mod backend;
pub mod channel;
pub mod chunk;
pub mod pool;
pub mod stats;
pub mod steal;

pub use backend::{Backend, EvalBackend, ParseBackendError, SerialBackend};
pub use chunk::{scoped_chunk_map, scoped_chunk_map_ranges, scoped_for_each_mut};
pub use pool::{scoped_par_map, WorkerPool};
pub use stats::{PoolStats, SpeedupRow, Stopwatch};
pub use steal::StealPool;
