//! `parworker` — the Master/Worker parallel evaluation engine of the ESS
//! systems.
//!
//! Every system in the ESS family parallelises the same thing: the
//! evaluation of scenarios ("the Master process only delegates the
//! simulation and evaluation of individuals to the Workers, since this is
//! the most demanding part of the prediction process", paper §III-A; "in a
//! first version, parallelism will only be implemented in the evaluation of
//! the scenarios", §III-B). The original systems use MPI processes; this
//! crate reproduces the communication pattern with OS threads and crossbeam
//! channels:
//!
//! * [`pool::WorkerPool`] — a persistent Master/Worker task farm. The
//!   master scatters indexed tasks over a shared channel; workers own
//!   per-worker mutable state (e.g. a simulator with scratch buffers),
//!   compute, and send results back; the master gathers and reorders.
//! * [`pool::scoped_par_map`] — a one-shot scoped fork/join map for
//!   borrowed data.
//! * [`rayon_backend::RayonMap`] — the same contract on a rayon
//!   work-stealing pool, used by the benches to compare scheduling
//!   strategies.
//! * [`stats`] — wall-clock / busy-time instrumentation feeding the
//!   speedup experiment (E3).

pub mod pool;
pub mod rayon_backend;
pub mod stats;

pub use pool::{scoped_par_map, WorkerPool};
pub use rayon_backend::RayonMap;
pub use stats::{PoolStats, SpeedupRow, Stopwatch};
