//! Property-style tests for the evolutionary substrate invariants: each
//! test checks its invariant over many randomly generated inputs from a
//! deterministic seed stream (the workspace builds without external
//! dependencies, so the former proptest strategies are seeded loops).

use evoalg::bestset::BestSet;
use evoalg::knn::{NoveltyEngine, NoveltyIndex};
use evoalg::novelty::{
    behaviour_distance, local_competition_score, novelty_score, novelty_score_external,
    NoveltyArchive,
};
use evoalg::operators;
use evoalg::selection;
use evoalg::BehaviourMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn genome(rng: &mut StdRng, dims: usize) -> Vec<f64> {
    (0..dims).map(|_| rng.random::<f64>()).collect()
}

/// Roulette always returns a valid index and never selects a zero-weight
/// entry when any weight is positive.
#[test]
fn roulette_valid_and_zero_excluded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..30usize);
        let scores: Vec<f64> = (0..n)
            .map(|_| {
                if rng.random::<bool>() {
                    rng.random::<f64>() * 10.0
                } else {
                    0.0
                }
            })
            .collect();
        let i = selection::roulette(&scores, &mut rng);
        assert!(i < scores.len());
        if scores.iter().any(|&s| s > 0.0) {
            assert!(
                scores[i] > 0.0,
                "selected zero-weight index {i} of {scores:?}"
            );
        }
    }
}

/// Crossover children stay inside the unit cube and keep genome length.
#[test]
fn crossover_closure() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = genome(&mut rng, 9);
        let b = genome(&mut rng, 9);
        let (c1, c2) = operators::one_point_crossover(&a, &b, &mut rng);
        let (u1, u2) = operators::uniform_crossover(&a, &b, &mut rng);
        let (b1, b2) = operators::blx_alpha_crossover(&a, &b, 0.3, &mut rng);
        for child in [&c1, &c2, &u1, &u2, &b1, &b2] {
            assert_eq!(child.len(), 9);
            assert!(child.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }
}

/// Mutation keeps genes in the unit cube for any rate.
#[test]
fn mutation_closure() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut genes = genome(&mut rng, 9);
        let rate = rng.random::<f64>();
        let sigma = rng.random::<f64>() * 2.0;
        operators::uniform_mutation(&mut genes, rate, &mut rng);
        assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
        operators::gaussian_mutation(&mut genes, rate, sigma, &mut rng);
        assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
    }
}

/// DE trial vectors stay in the unit cube.
#[test]
fn de_closure() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(4..12usize);
        let pop: Vec<Vec<f64>> = (0..n).map(|_| genome(&mut rng, 6)).collect();
        let f = 0.1 + rng.random::<f64>() * 1.9;
        let cr = rng.random::<f64>();
        for target in 0..pop.len() {
            let donor = operators::de_rand_1_donor(&pop, target, f, &mut rng);
            let trial = operators::de_binomial_crossover(&pop[target], &donor, cr, &mut rng);
            assert!(trial.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }
}

/// Novelty scores are non-negative, and adding a duplicate of the subject
/// never increases its novelty.
#[test]
fn novelty_nonneg_and_duplicate_antitone() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(3..20usize);
        let mut behaviours: Vec<Vec<f64>> = (0..n).map(|_| genome(&mut rng, 2)).collect();
        let k = rng.random_range(1..6usize);
        let before = novelty_score(0, &behaviours, k);
        assert!(before >= 0.0);
        behaviours.push(behaviours[0].clone());
        let after = novelty_score(0, &behaviours, k);
        assert!(
            after <= before + 1e-12,
            "duplicate raised novelty {before} → {after}"
        );
    }
}

/// Cross-check of the kNN selection inside `novelty_score` against a
/// brute-force oracle: sort *all* pairwise distances and average the k
/// smallest. The partial-selection fast path must agree.
#[test]
fn novelty_score_matches_brute_force_knn() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
        let n = rng.random_range(2..40usize);
        let dims = rng.random_range(1..4usize);
        let behaviours: Vec<Vec<f64>> = (0..n).map(|_| genome(&mut rng, dims)).collect();
        let k = rng.random_range(1..8usize);
        for subject in 0..n {
            let got = novelty_score(subject, &behaviours, k);
            // Brute force: every distance to the subject, fully sorted.
            let mut dists: Vec<f64> = behaviours
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != subject)
                .map(|(_, b)| behaviour_distance(&behaviours[subject], b))
                .collect();
            dists.sort_by(f64::total_cmp);
            let kk = k.min(dists.len());
            let expected = dists[..kk].iter().sum::<f64>() / kk as f64;
            assert!(
                (got - expected).abs() <= 1e-9 * expected.max(1.0),
                "seed {seed} subject {subject}: fast {got} vs brute-force {expected}"
            );
        }
    }
}

/// Generates a behaviour set with deliberate duplicate rows (duplicates
/// force distance ties — the hard case for kNN tie order).
fn behaviour_set(rng: &mut StdRng, n: usize, dims: usize) -> Vec<Vec<f64>> {
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    for _ in 0..n {
        if !rows.is_empty() && rng.random::<f64>() < 0.3 {
            // Duplicate an existing row verbatim.
            let src = rng.random_range(0..rows.len());
            rows.push(rows[src].clone());
        } else {
            rows.push(genome(rng, dims));
        }
    }
    rows
}

/// Tentpole contract: every `NoveltyIndex` strategy, at every worker
/// count, is **bit-identical** (`f64`-exact, not tolerance-based) to the
/// brute-force reference `novelty_score` and `local_competition_score` —
/// across random dims, k, duplicates, and archive sizes (the reference
/// set is subjects + archive rows, subjects scored against all of it,
/// exactly the Algorithm 1 lines 11–14 shape).
#[test]
fn novelty_index_bit_identical_to_brute_force() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1D_C0DE);
        let subjects = rng.random_range(1..24usize);
        let archive = rng.random_range(0..32usize);
        let dims = rng.random_range(1..4usize);
        let k = rng.random_range(1..8usize);
        let rows = behaviour_set(&mut rng, subjects + archive, dims);
        let fitnesses: Vec<f64> = (0..rows.len()).map(|_| rng.random::<f64>()).collect();
        let matrix = BehaviourMatrix::from_rows(&rows);

        let expected_rho: Vec<f64> = (0..subjects).map(|i| novelty_score(i, &rows, k)).collect();
        let expected_lc: Vec<f64> = (0..subjects)
            .map(|i| local_competition_score(i, &rows, &fitnesses, k))
            .collect();
        for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
            for workers in [1usize, 3] {
                let engine = NoveltyEngine { index, workers };
                assert_eq!(
                    engine.novelty_scores(&matrix, subjects, k),
                    expected_rho,
                    "seed {seed}: {engine} ρ diverged (dims {dims}, k {k}, \
                     {subjects}+{archive} rows)"
                );
                assert_eq!(
                    engine.local_competition_scores(&matrix, &fitnesses, subjects, k),
                    expected_lc,
                    "seed {seed}: {engine} LC diverged (dims {dims}, k {k}, \
                     {subjects}+{archive} rows)"
                );
            }
        }
    }
}

/// External (non-member) queries agree bit-for-bit too, including the
/// empty-reference sentinel.
#[test]
fn novelty_index_external_bit_identical() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE47);
        let n = rng.random_range(0..30usize);
        let dims = rng.random_range(1..4usize);
        let k = rng.random_range(1..6usize);
        let rows = behaviour_set(&mut rng, n.max(1), dims);
        let rows = if n == 0 { Vec::new() } else { rows };
        let matrix = BehaviourMatrix::from_rows(&rows);
        for _ in 0..4 {
            let query = genome(&mut rng, dims);
            let expected = novelty_score_external(&query, &rows, k);
            for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
                let prepared = index.prepare(&matrix);
                assert_eq!(
                    prepared.novelty_of_external(&query, k),
                    expected,
                    "seed {seed}: {index} external ρ diverged (dims {dims}, k {k}, n {n})"
                );
            }
        }
    }
}

/// The archive's incrementally maintained `BehaviourMatrix` always equals
/// the matrix rebuilt from scratch out of the offered descriptors — i.e.
/// the incremental bookkeeping (push on admit, overwrite on replace)
/// never drifts from the nested-projection semantics it replaced.
#[test]
fn archive_matrix_tracks_offers_exactly() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA2C);
        let capacity = rng.random_range(1..10usize);
        let dims = rng.random_range(1..4usize);
        let mut archive = NoveltyArchive::new(capacity);
        // Shadow model: (behaviour, novelty) pairs maintained naively.
        let mut shadow: Vec<Vec<f64>> = Vec::new();
        for _ in 0..rng.random_range(1..60usize) {
            let genes = genome(&mut rng, 3);
            let behaviour = genome(&mut rng, dims);
            let novelty = rng.random::<f64>() * 10.0;
            let accepted = archive.offer(&genes, &behaviour, novelty, 0.5);
            if accepted {
                if shadow.len() < capacity {
                    shadow.push(behaviour);
                } else {
                    // Novelty-only replacement of the (unique) minimum:
                    // mirror via the archive's own entry novelties.
                    let min_idx = (0..archive.len())
                        .find(|&i| archive.entries()[i].novelty == novelty)
                        .expect("accepted offer must be stored");
                    shadow[min_idx] = behaviour;
                }
            }
            assert_eq!(
                archive.behaviour_matrix().to_rows(),
                shadow,
                "seed {seed}: archive matrix drifted"
            );
            for (i, entry) in archive.entries().iter().enumerate() {
                assert_eq!(archive.behaviour_of(i).len(), dims);
                assert!(entry.novelty >= 0.0);
            }
        }
    }
}

/// The archive never exceeds capacity and its minimum novelty is
/// monotonically non-decreasing once full (novelty-only replacement).
#[test]
fn archive_invariants() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let capacity = rng.random_range(1..8usize);
        let offers = rng.random_range(1..60usize);
        let mut archive = NoveltyArchive::new(capacity);
        let mut last_min: Option<f64> = None;
        for _ in 0..offers {
            let genes = genome(&mut rng, 3);
            let novelty = rng.random::<f64>() * 10.0;
            archive.offer(&genes, &genes, novelty, 0.5);
            assert!(archive.len() <= capacity);
            if archive.len() == capacity {
                let min = archive.min_novelty().unwrap();
                if let Some(prev) = last_min {
                    assert!(min >= prev - 1e-12, "archive min regressed {prev} → {min}");
                }
                last_min = Some(min);
            }
        }
    }
}

/// With deterministic fitness (the real-usage contract: one genome, one
/// fitness), BestSet holds exactly the top-capacity distinct-genome
/// fitness values of the offered stream, in descending order.
#[test]
fn bestset_is_topk() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let capacity = rng.random_range(1..10usize);
        let len = rng.random_range(1..80usize);
        let stream: Vec<u8> = (0..len).map(|_| rng.random_range(0..40u32) as u8).collect();
        // Deterministic per-genome fitness, injective enough to avoid ties
        // mattering while exercising the comparison paths.
        let fitness_of = |gene: u8| ((gene as f64 * 37.0) % 41.0) / 41.0;
        let mut bs = BestSet::new(capacity);
        let mut seen: Vec<u8> = Vec::new();
        for &gene in &stream {
            bs.offer(&[gene as f64], fitness_of(gene));
            if !seen.contains(&gene) {
                seen.push(gene);
            }
        }
        let mut expected: Vec<f64> = seen.iter().map(|&g| fitness_of(g)).collect();
        expected.sort_by(|a, b| b.total_cmp(a));
        expected.truncate(capacity);
        let got = bs.fitness_values();
        assert_eq!(got.len(), expected.len());
        assert!(got.windows(2).all(|w| w[0] >= w[1]));
        for (g, e) in got.iter().zip(&expected) {
            assert!(
                (g - e).abs() < 1e-12,
                "top-k mismatch: {got:?} vs {expected:?}"
            );
        }
    }
}

/// Elitist merge returns exactly `min(capacity, n)` indices, each valid
/// and distinct.
#[test]
fn elitist_merge_valid() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<f64> = (0..rng.random_range(0..20usize))
            .map(|_| rng.random())
            .collect();
        let b: Vec<f64> = (0..rng.random_range(1..20usize))
            .map(|_| rng.random())
            .collect();
        let cap = rng.random_range(1..30usize);
        let kept = selection::elitist_merge_indices(&a, &b, cap);
        assert_eq!(kept.len(), cap.min(a.len() + b.len()));
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kept.len(), "duplicate indices");
        assert!(kept.iter().all(|&i| i < a.len() + b.len()));
    }
}
