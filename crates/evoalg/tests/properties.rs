//! Property-based tests for the evolutionary substrate invariants.

use evoalg::bestset::BestSet;
use evoalg::novelty::{novelty_score, NoveltyArchive};
use evoalg::operators;
use evoalg::selection;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_genome(dims: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..=1.0, dims)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Roulette always returns a valid index and never selects a
    /// zero-weight entry when any weight is positive.
    #[test]
    fn roulette_valid_and_zero_excluded(
        scores in proptest::collection::vec(0.0f64..10.0, 1..30),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let i = selection::roulette(&scores, &mut rng);
        prop_assert!(i < scores.len());
        if scores.iter().any(|&s| s > 0.0) {
            prop_assert!(scores[i] > 0.0, "selected zero-weight index {i}");
        }
    }

    /// Crossover children stay inside the unit cube and keep genome length.
    #[test]
    fn crossover_closure(
        a in arb_genome(9),
        b in arb_genome(9),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2) = operators::one_point_crossover(&a, &b, &mut rng);
        let (u1, u2) = operators::uniform_crossover(&a, &b, &mut rng);
        let (b1, b2) = operators::blx_alpha_crossover(&a, &b, 0.3, &mut rng);
        for child in [&c1, &c2, &u1, &u2, &b1, &b2] {
            prop_assert_eq!(child.len(), 9);
            prop_assert!(child.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }

    /// Mutation keeps genes in the unit cube for any rate.
    #[test]
    fn mutation_closure(
        mut genes in arb_genome(9),
        rate in 0.0f64..=1.0,
        sigma in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        operators::uniform_mutation(&mut genes, rate, &mut rng);
        prop_assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
        operators::gaussian_mutation(&mut genes, rate, sigma, &mut rng);
        prop_assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
    }

    /// DE trial vectors stay in the unit cube.
    #[test]
    fn de_closure(
        pop in proptest::collection::vec(arb_genome(6), 4..12),
        f in 0.1f64..2.0,
        cr in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        for target in 0..pop.len() {
            let donor = operators::de_rand_1_donor(&pop, target, f, &mut rng);
            let trial = operators::de_binomial_crossover(&pop[target], &donor, cr, &mut rng);
            prop_assert!(trial.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }

    /// Novelty scores are non-negative, and adding a duplicate of the
    /// subject never increases its novelty.
    #[test]
    fn novelty_nonneg_and_duplicate_antitone(
        mut behaviours in proptest::collection::vec(arb_genome(2), 3..20),
        k in 1usize..6,
    ) {
        let before = novelty_score(0, &behaviours, k);
        prop_assert!(before >= 0.0);
        behaviours.push(behaviours[0].clone());
        let after = novelty_score(0, &behaviours, k);
        prop_assert!(after <= before + 1e-12, "duplicate raised novelty {before} → {after}");
    }

    /// The archive never exceeds capacity and its minimum novelty is
    /// monotonically non-decreasing once full (novelty-only replacement).
    #[test]
    fn archive_invariants(
        offers in proptest::collection::vec((arb_genome(3), 0.0f64..10.0), 1..60),
        capacity in 1usize..8,
    ) {
        let mut archive = NoveltyArchive::new(capacity);
        let mut last_min: Option<f64> = None;
        for (genes, novelty) in offers {
            archive.offer(&genes, &genes, novelty, 0.5);
            prop_assert!(archive.len() <= capacity);
            if archive.len() == capacity {
                let min = archive.min_novelty().unwrap();
                if let Some(prev) = last_min {
                    prop_assert!(min >= prev - 1e-12, "archive min regressed {prev} → {min}");
                }
                last_min = Some(min);
            }
        }
    }

    /// With deterministic fitness (the real-usage contract: one genome, one
    /// fitness), BestSet holds exactly the top-capacity distinct-genome
    /// fitness values of the offered stream, in descending order.
    #[test]
    fn bestset_is_topk(
        stream in proptest::collection::vec(0u8..40, 1..80),
        capacity in 1usize..10,
    ) {
        // Deterministic per-genome fitness, injective enough to avoid ties
        // mattering while exercising the comparison paths.
        let fitness_of = |gene: u8| ((gene as f64 * 37.0) % 41.0) / 41.0;
        let mut bs = BestSet::new(capacity);
        let mut seen: Vec<u8> = Vec::new();
        for &gene in &stream {
            bs.offer(&[gene as f64], fitness_of(gene));
            if !seen.contains(&gene) {
                seen.push(gene);
            }
        }
        let mut expected: Vec<f64> = seen.iter().map(|&g| fitness_of(g)).collect();
        expected.sort_by(|a, b| b.partial_cmp(a).unwrap());
        expected.truncate(capacity);
        let got = bs.fitness_values();
        prop_assert_eq!(got.len(), expected.len());
        prop_assert!(got.windows(2).all(|w| w[0] >= w[1]));
        for (g, e) in got.iter().zip(&expected) {
            prop_assert!((g - e).abs() < 1e-12, "top-k mismatch: {got:?} vs {expected:?}");
        }
    }

    /// Elitist merge returns exactly `min(capacity, n)` indices, each valid
    /// and distinct.
    #[test]
    fn elitist_merge_valid(
        a in proptest::collection::vec(0.0f64..1.0, 0..20),
        b in proptest::collection::vec(0.0f64..1.0, 1..20),
        cap in 1usize..30,
    ) {
        let kept = selection::elitist_merge_indices(&a, &b, cap);
        prop_assert_eq!(kept.len(), cap.min(a.len() + b.len()));
        let mut sorted = kept.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), kept.len(), "duplicate indices");
        prop_assert!(kept.iter().all(|&i| i < a.len() + b.len()));
    }
}
