//! A step-wise, fitness-driven genetic algorithm engine.
//!
//! This is the metaheuristic of the original ESS and (per island) of
//! ESSIM-EA: roulette-wheel parent selection on fitness, one-point
//! crossover, uniform mutation and elitist replacement. The engine exposes
//! one generation per [`GaEngine::step`] call so the framework layer can
//! interleave migration (islands), tuning actions and statistics
//! collection between generations.

use crate::individual::{Individual, Population};
use crate::operators::{one_point_crossover, uniform_mutation};
use crate::selection::{elitist_merge_indices, roulette};
use crate::BatchEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Genetic algorithm parameters (the "typical GA parameters" of
/// Algorithm 1's input list, applied to the fitness-driven baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaConfig {
    /// Population size `N`.
    pub population_size: usize,
    /// Offspring per generation `m`.
    pub offspring: usize,
    /// Per-gene mutation probability `mR`.
    pub mutation_rate: f64,
    /// Probability a selected pair undergoes crossover `cR` (children are
    /// clones of the parents otherwise).
    pub crossover_rate: f64,
    /// RNG seed — every run is fully determined by it.
    pub seed: u64,
}

impl Default for GaConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            offspring: 50,
            mutation_rate: 0.1,
            crossover_rate: 0.9,
            seed: 0,
        }
    }
}

/// Per-generation statistics (feeds the tuning metrics and the E-series
/// reports).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenStats {
    /// Generation index (0 = the initial population).
    pub generation: u32,
    /// Best fitness in the current population.
    pub best_fitness: f64,
    /// Mean fitness.
    pub mean_fitness: f64,
    /// Interquartile range of fitness — the ESSIM-DE tuning signal.
    pub fitness_iqr: f64,
    /// Cumulative number of fitness evaluations.
    pub evaluations: u64,
}

/// The step-wise GA engine.
#[derive(Debug)]
pub struct GaEngine {
    config: GaConfig,
    dims: usize,
    population: Population,
    rng: StdRng,
    generation: u32,
    evaluations: u64,
}

impl GaEngine {
    /// Creates an engine with a random initial population; call
    /// [`GaEngine::evaluate_initial`] before the first [`GaEngine::step`].
    ///
    /// # Panics
    /// Panics on a zero population, zero offspring, or out-of-range rates.
    pub fn new(dims: usize, config: GaConfig) -> Self {
        assert!(
            config.population_size >= 2,
            "GA needs at least two individuals"
        );
        assert!(
            config.offspring >= 2,
            "GA needs at least two offspring per generation"
        );
        assert!(
            (0.0..=1.0).contains(&config.mutation_rate),
            "mutation rate is a probability"
        );
        assert!(
            (0.0..=1.0).contains(&config.crossover_rate),
            "crossover rate is a probability"
        );
        assert!(dims >= 2, "genome needs at least two genes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = Population::random(config.population_size, dims, &mut rng);
        Self {
            config,
            dims,
            population,
            rng,
            generation: 0,
            evaluations: 0,
        }
    }

    /// Replaces the initial population (used by islands seeded by a
    /// monitor, and by restart operators).
    pub fn set_population(&mut self, population: Population) {
        assert_eq!(
            population.len(),
            self.config.population_size,
            "population size mismatch"
        );
        self.population = population;
    }

    /// Evaluates the initial population. Must be called once before
    /// stepping; subsequent calls re-evaluate (used after migrations).
    pub fn evaluate_initial<E: BatchEvaluator>(&mut self, evaluator: &mut E) -> GenStats {
        let fitness = evaluator.evaluate(&self.population.genomes());
        self.evaluations += fitness.len() as u64;
        self.population.assign_fitness(&fitness);
        self.stats()
    }

    /// Runs one generation: select parents by fitness roulette, produce
    /// `m` offspring, evaluate them, and keep the best `N` of parents ∪
    /// offspring (elitist replacement).
    pub fn step<E: BatchEvaluator>(&mut self, evaluator: &mut E) -> GenStats {
        assert!(
            self.population
                .members()
                .iter()
                .all(Individual::is_evaluated),
            "call evaluate_initial before step"
        );
        let offspring = self.make_offspring();
        let mut off_pop = Population::from_members(offspring);
        let fitness = evaluator.evaluate(&off_pop.genomes());
        self.evaluations += fitness.len() as u64;
        off_pop.assign_fitness(&fitness);

        // Elitist replacement over the merged pool.
        let parent_scores = self.population.fitness_values();
        let off_scores = off_pop.fitness_values();
        let keep = elitist_merge_indices(&parent_scores, &off_scores, self.config.population_size);
        let parents = std::mem::take(&mut self.population).into_members();
        let off = off_pop.into_members();
        let mut next = Vec::with_capacity(self.config.population_size);
        for i in keep {
            if i < parents.len() {
                next.push(parents[i].clone());
            } else {
                next.push(off[i - parents.len()].clone());
            }
        }
        self.population = Population::from_members(next);
        self.generation += 1;
        self.stats()
    }

    /// Generates `m` offspring via roulette selection, one-point crossover
    /// and uniform mutation (shared with the restart operator tests).
    fn make_offspring(&mut self) -> Vec<Individual> {
        let scores = self.population.fitness_values();
        let mut out = Vec::with_capacity(self.config.offspring);
        while out.len() < self.config.offspring {
            let pa = roulette(&scores, &mut self.rng);
            let pb = roulette(&scores, &mut self.rng);
            let (mut c1, mut c2) = if self.rng.random::<f64>() < self.config.crossover_rate {
                one_point_crossover(
                    &self.population.members()[pa].genes,
                    &self.population.members()[pb].genes,
                    &mut self.rng,
                )
            } else {
                (
                    self.population.members()[pa].genes.clone(),
                    self.population.members()[pb].genes.clone(),
                )
            };
            uniform_mutation(&mut c1, self.config.mutation_rate, &mut self.rng);
            uniform_mutation(&mut c2, self.config.mutation_rate, &mut self.rng);
            out.push(Individual::new(c1));
            if out.len() < self.config.offspring {
                out.push(Individual::new(c2));
            }
        }
        out
    }

    /// Reinitialises the `frac` worst members uniformly at random — the
    /// population-restart tuning operator of ESSIM-DE (\[21\]), shared here
    /// so both engines can use it. Restarted members need re-evaluation,
    /// which the next [`GaEngine::step`] will not do implicitly; call
    /// [`GaEngine::evaluate_initial`] after restarting.
    pub fn restart_worst(&mut self, frac: f64) {
        assert!(
            (0.0..=1.0).contains(&frac),
            "restart fraction is a probability"
        );
        let n = ((self.population.len() as f64) * frac).round() as usize;
        if n == 0 {
            return;
        }
        self.population.sort_by_fitness_desc();
        let len = self.population.len();
        let dims = self.dims;
        for m in &mut self.population.members_mut()[len - n..] {
            m.genes = (0..dims).map(|_| self.rng.random::<f64>()).collect();
            m.fitness = f64::NAN;
        }
    }

    /// Current population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Mutable population access (migration in the island model).
    pub fn population_mut(&mut self) -> &mut Population {
        &mut self.population
    }

    /// Generation counter.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Total evaluations so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Statistics of the current population.
    pub fn stats(&self) -> GenStats {
        let f = self.population.fitness_values();
        let (mean, _) = landscape_stats(&f);
        GenStats {
            generation: self.generation,
            best_fitness: f.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean_fitness: mean,
            fitness_iqr: iqr(&f),
            evaluations: self.evaluations,
        }
    }
}

// Small local statistics (duplicating `landscape::metrics` would drag a
// dependency into this otherwise problem-agnostic crate).
fn landscape_stats(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Interquartile range with linear interpolation (kept consistent with
/// `landscape::metrics::iqr`; duplicated deliberately, see above).
pub(crate) fn iqr(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = |frac: f64| -> f64 {
        let pos = frac * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    };
    q(0.75) - q(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::sphere;

    fn sphere_eval() -> impl FnMut(&[Vec<f64>]) -> Vec<f64> {
        |gs: &[Vec<f64>]| gs.iter().map(|g| sphere(g)).collect()
    }

    #[test]
    fn ga_improves_sphere_fitness() {
        let mut engine = GaEngine::new(
            8,
            GaConfig {
                seed: 21,
                ..GaConfig::default()
            },
        );
        let mut eval = sphere_eval();
        let start = engine.evaluate_initial(&mut eval);
        let mut last = start;
        for _ in 0..30 {
            last = engine.step(&mut eval);
        }
        assert!(
            last.best_fitness > start.best_fitness + 0.05,
            "no progress: {} → {}",
            start.best_fitness,
            last.best_fitness
        );
        assert!(last.best_fitness > 0.9);
    }

    #[test]
    fn elitism_never_regresses_best() {
        let mut engine = GaEngine::new(
            6,
            GaConfig {
                seed: 5,
                ..GaConfig::default()
            },
        );
        let mut eval = sphere_eval();
        let mut best = engine.evaluate_initial(&mut eval).best_fitness;
        for _ in 0..15 {
            let s = engine.step(&mut eval);
            assert!(s.best_fitness >= best - 1e-12, "elitism violated");
            best = s.best_fitness;
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut engine = GaEngine::new(
                5,
                GaConfig {
                    seed,
                    ..GaConfig::default()
                },
            );
            let mut eval = sphere_eval();
            engine.evaluate_initial(&mut eval);
            for _ in 0..10 {
                engine.step(&mut eval);
            }
            engine.population().genomes()
        };
        assert_eq!(run(33), run(33));
        assert_ne!(run(33), run(34));
    }

    #[test]
    fn evaluation_count_tracks_budget() {
        let cfg = GaConfig {
            population_size: 10,
            offspring: 20,
            seed: 1,
            ..GaConfig::default()
        };
        let mut engine = GaEngine::new(4, cfg);
        let mut eval = sphere_eval();
        engine.evaluate_initial(&mut eval);
        assert_eq!(engine.evaluations(), 10);
        engine.step(&mut eval);
        assert_eq!(engine.evaluations(), 30);
        engine.step(&mut eval);
        assert_eq!(engine.evaluations(), 50);
    }

    #[test]
    fn restart_worst_resets_tail() {
        let mut engine = GaEngine::new(
            4,
            GaConfig {
                seed: 2,
                ..GaConfig::default()
            },
        );
        let mut eval = sphere_eval();
        engine.evaluate_initial(&mut eval);
        engine.restart_worst(0.5);
        let unevaluated = engine
            .population()
            .members()
            .iter()
            .filter(|m| !m.is_evaluated())
            .count();
        assert_eq!(unevaluated, 25);
        // Re-evaluate and continue stepping without panic.
        engine.evaluate_initial(&mut eval);
        engine.step(&mut eval);
    }

    #[test]
    #[should_panic(expected = "evaluate_initial")]
    fn stepping_before_evaluation_panics() {
        let mut engine = GaEngine::new(4, GaConfig::default());
        let mut eval = sphere_eval();
        engine.step(&mut eval);
    }

    #[test]
    fn stats_report_population_summary() {
        let mut engine = GaEngine::new(
            4,
            GaConfig {
                seed: 9,
                ..GaConfig::default()
            },
        );
        let mut eval = sphere_eval();
        let s = engine.evaluate_initial(&mut eval);
        assert!(s.best_fitness >= s.mean_fitness);
        assert!(s.fitness_iqr >= 0.0);
        assert_eq!(s.generation, 0);
    }
}
