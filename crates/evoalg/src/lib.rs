//! `evoalg` — the evolutionary-computation substrate of the ESS-NS
//! reproduction.
//!
//! The paper's Optimization Stage is populated by metaheuristics: a classic
//! genetic algorithm (ESS), an island-model GA (ESSIM-EA), differential
//! evolution (ESSIM-DE) and the proposed novelty-search GA (ESS-NS,
//! Algorithm 1). This crate provides their shared building blocks:
//!
//! * [`individual`] — genomes (normalised `f64` gene vectors), scored
//!   individuals and populations;
//! * [`selection`] — roulette-wheel (the paper's GA selection strategy,
//!   §III-B) and tournament selection over arbitrary scores;
//! * [`operators`] — crossover (one-point, uniform, BLX-α) and mutation
//!   (uniform reset, Gaussian creep) over `[0, 1]` genes;
//! * [`ga`] — a step-wise fitness-driven GA engine (the baseline systems);
//! * [`de`] — a step-wise Differential Evolution engine (`rand/1/bin`,
//!   the ESSIM-DE metaheuristic);
//! * [`novelty`] — the Novelty Search kit: the novelty score ρ(x) of
//!   Eq. (1), behaviour distances including the paper's fitness-difference
//!   measure of Eq. (2), and the novelty [`novelty::NoveltyArchive`]
//!   (which maintains its descriptors incrementally in the flat layout);
//! * [`behaviour`] — [`behaviour::BehaviourMatrix`], the flat
//!   structure-of-arrays descriptor store every novelty path reads;
//! * [`knn`] — the batched novelty-scoring subsystem:
//!   [`knn::NoveltyIndex`] (sorted-scan / chunked brute-force kNN
//!   strategies, bit-identical to the reference functions by
//!   construction) and [`knn::NoveltyEngine`] (the batch driver that can
//!   fan subject chunks out over `parworker` scoped workers);
//! * [`bestset`] — the bounded max-fitness memory `bestSet` that
//!   Algorithm 1 returns;
//! * [`diversity`] — population diversity statistics (E2 of the experiment
//!   index);
//! * [`benchmarks`] — deceptive and unimodal test functions used to
//!   reproduce the §II-C deceptiveness argument (E5).
//!
//! Everything is deterministic given a seed and performs no I/O; batch
//! fitness evaluation is abstracted behind [`BatchEvaluator`] so callers
//! can plug the parallel Master/Worker engine in.

pub mod behaviour;
pub mod benchmarks;
pub mod bestset;
pub mod de;
pub mod diversity;
pub mod ga;
pub mod genome;
pub mod individual;
pub mod knn;
pub mod novelty;
pub mod operators;
pub mod selection;

pub use behaviour::BehaviourMatrix;
pub use bestset::BestSet;
pub use de::{DeConfig, DeEngine};
pub use ga::{GaConfig, GaEngine, GenStats};
pub use genome::GenomeMatrix;
pub use individual::{Individual, Population};
pub use knn::{NoveltyEngine, NoveltyIndex, ParseNoveltyEngineError, PreparedIndex};
pub use novelty::{novelty_score, novelty_score_external, NoveltyArchive};

/// Batch fitness evaluation: maps a slice of genomes to their fitness
/// values, in order. Implemented by closures and by the parallel evaluators
/// in the `ess` crate (where the fire simulations happen).
pub trait BatchEvaluator {
    /// Evaluates every genome; `result[i]` is the fitness of `genomes[i]`.
    /// Fitness must be finite and is maximised by every engine here.
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<f64>;

    /// Number of evaluations performed so far, when the implementation
    /// tracks it (used for evaluation-budget experiments).
    fn evaluations(&self) -> u64 {
        0
    }

    /// Evaluates a flat [`GenomeMatrix`] batch — the preferred entry point
    /// for callers that already hold their genomes in the flat layout (one
    /// allocation per batch). The default projects to nested rows and
    /// calls [`BatchEvaluator::evaluate`]; implementations with a native
    /// flat path (the `ess` crate's shared scenario pool) override it to
    /// skip the projection.
    fn evaluate_matrix(&mut self, genomes: &GenomeMatrix) -> Vec<f64> {
        self.evaluate(&genomes.to_rows())
    }
}

impl<F> BatchEvaluator for F
where
    F: FnMut(&[Vec<f64>]) -> Vec<f64>,
{
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<f64> {
        self(genomes)
    }
}
