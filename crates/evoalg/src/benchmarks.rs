//! Synthetic objective functions for the deceptiveness experiments (E5).
//!
//! §II-C argues that objective-based search fails on *deceptive* fitness
//! landscapes — "the combination of solutions of high fitness leads to
//! solutions of lower fitness and vice versa" — and that Novelty Search is
//! immune because it ignores the objective. These functions make that
//! claim testable:
//!
//! * [`sphere`] — unimodal control: objective search should win or tie;
//! * [`deceptive_trap`] — the classic fully-deceptive trap: the fitness
//!   gradient points *away* from the global optimum;
//! * [`two_peaks`] — a broad local hill hiding a narrow distant global
//!   peak, the continuous analogue of deception.
//!
//! All functions map `[0, 1]^d` genomes to a fitness in `[0, 1]`,
//! maximised, so they drop into the same engines as the fire problem.

/// Unimodal control: `1 − mean((gᵢ − 0.5)²) / 0.25`. Maximum 1 at the cube
/// centre; smooth gradient everywhere.
pub fn sphere(genes: &[f64]) -> f64 {
    assert!(!genes.is_empty());
    let mse: f64 = genes.iter().map(|&g| (g - 0.5) * (g - 0.5)).sum::<f64>() / genes.len() as f64;
    1.0 - mse / 0.25
}

/// Fully deceptive trap function over `blocks` of `block_size` pseudo-bits
/// (a gene is a 1-bit when ≥ 0.5).
///
/// Per block of size `b` with `u` ones: fitness is `b` when `u = b` (the
/// optimum) and `b − 1 − u` otherwise, so every hill-climbing step towards
/// more ones *reduces* fitness until the very last bit — the textbook
/// deceptive landscape (Goldberg). Normalised to `[0, 1]`.
///
/// # Panics
/// Panics when `genes.len()` is not a multiple of `block_size`.
pub fn deceptive_trap(genes: &[f64], block_size: usize) -> f64 {
    assert!(block_size >= 2, "trap blocks need at least 2 bits");
    assert_eq!(
        genes.len() % block_size,
        0,
        "genome length must be a multiple of the block size"
    );
    let blocks = genes.len() / block_size;
    let mut total = 0.0;
    for blk in 0..blocks {
        let ones = genes[blk * block_size..(blk + 1) * block_size]
            .iter()
            .filter(|&&g| g >= 0.5)
            .count();
        total += if ones == block_size {
            block_size as f64
        } else {
            (block_size - 1 - ones) as f64
        };
    }
    total / (blocks * block_size) as f64
}

/// Two-peaks landscape, averaged per gene: a broad hill of height
/// `local_height` at `x = 0.25` (σ = 0.15) and a narrow global peak of
/// height 1 at `x = 0.9` (σ = 0.02). With `local_height < 1` the global
/// optimum is the narrow peak, but almost all gradient information points
/// at the hill.
pub fn two_peaks(genes: &[f64], local_height: f64) -> f64 {
    assert!(!genes.is_empty());
    assert!(
        (0.0..1.0).contains(&local_height),
        "local peak must be lower than the global one"
    );
    let per_gene = |x: f64| -> f64 {
        let hill = local_height * (-((x - 0.25) / 0.15).powi(2)).exp();
        let peak = (-((x - 0.9) / 0.02).powi(2)).exp();
        hill.max(peak)
    };
    genes.iter().map(|&g| per_gene(g)).sum::<f64>() / genes.len() as f64
}

/// Twin-basin landscape: two equal Gaussian optima centred at `0.2·𝟙` and
/// `0.8·𝟙` (RMS width 0.15). Fitness cannot distinguish the basins, so an
/// objective-driven GA converges to whichever it finds first and its final
/// population covers *one* region; a search that returns multiple distant
/// solutions should cover both. This is the §II-C mechanism distilled:
/// "different solutions may be genotypically far apart in the search
/// space, but may still have acceptable fitness values that contribute to
/// the prediction".
pub fn twin_basins(genes: &[f64]) -> f64 {
    let d2 = |c: f64| genes.iter().map(|&x| (x - c) * (x - c)).sum::<f64>() / genes.len() as f64;
    let a = (-d2(0.2) / (0.15 * 0.15)).exp();
    let b = (-d2(0.8) / (0.15 * 0.15)).exp();
    a.max(b)
}

/// Which twin basins a genome belongs to: `(near 0.2·𝟙, near 0.8·𝟙)`
/// (RMS distance below 0.15).
pub fn twin_basin_membership(genes: &[f64]) -> (bool, bool) {
    let rms = |c: f64| {
        (genes.iter().map(|&x| (x - c) * (x - c)).sum::<f64>() / genes.len() as f64).sqrt()
    };
    (rms(0.2) < 0.15, rms(0.8) < 0.15)
}

/// `true` when a *result set* covers both twin basins — the coverage
/// metric of experiment E5.
pub fn covers_both_basins(set: &[Vec<f64>]) -> bool {
    let mut a = false;
    let mut b = false;
    for g in set {
        let (na, nb) = twin_basin_membership(g);
        a |= na;
        b |= nb;
    }
    a && b
}

/// `true` when a genome sits on the global optimum of the trap function
/// (all pseudo-bits set).
pub fn trap_is_optimal(genes: &[f64]) -> bool {
    genes.iter().all(|&g| g >= 0.5)
}

/// `true` when a genome has every gene within `tol` of the two-peaks global
/// optimum at 0.9.
pub fn two_peaks_is_optimal(genes: &[f64], tol: f64) -> bool {
    genes.iter().all(|&g| (g - 0.9).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_max_at_centre() {
        assert!((sphere(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((sphere(&[0.0, 1.0]) - 0.0).abs() < 1e-12);
        assert!(sphere(&[0.4, 0.6]) > sphere(&[0.1, 0.9]));
    }

    #[test]
    fn trap_optimum_is_all_ones() {
        let opt = vec![1.0; 8];
        assert_eq!(deceptive_trap(&opt, 4), 1.0);
        assert!(trap_is_optimal(&opt));
    }

    #[test]
    fn trap_is_deceptive() {
        // With block size 4, fitness at u ones (u < 4) is 3 − u: adding a
        // one *hurts* until the block completes.
        let zeros = vec![0.0; 4];
        let one = vec![1.0, 0.0, 0.0, 0.0];
        let three = vec![1.0, 1.0, 1.0, 0.0];
        let four = vec![1.0; 4];
        let f0 = deceptive_trap(&zeros, 4);
        let f1 = deceptive_trap(&one, 4);
        let f3 = deceptive_trap(&three, 4);
        let f4 = deceptive_trap(&four, 4);
        assert!(
            f0 > f1 && f1 > f3,
            "gradient must point to zeros: {f0} {f1} {f3}"
        );
        assert!(f4 > f0, "global optimum must beat the deceptive attractor");
    }

    #[test]
    fn trap_deceptive_attractor_is_second_best() {
        // all-zeros scores (b−1)/b per block — the best non-optimal value.
        assert!((deceptive_trap(&[0.0; 8], 4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn two_peaks_global_at_09() {
        let local = two_peaks(&[0.25], 0.6);
        let global = two_peaks(&[0.9], 0.6);
        assert!((global - 1.0).abs() < 1e-9);
        assert!((local - 0.6).abs() < 1e-9);
        assert!(global > local);
    }

    #[test]
    fn two_peaks_hill_dominates_locally() {
        // Anywhere between 0.1 and 0.5 the hill's gradient exceeds the
        // far-away peak's contribution.
        let f = |x: f64| two_peaks(&[x], 0.6);
        assert!(f(0.25) > f(0.4));
        assert!(f(0.4) > f(0.55), "{} {}", f(0.4), f(0.55));
    }

    #[test]
    fn twin_basins_symmetric_equal_peaks() {
        assert!((twin_basins(&[0.2, 0.2]) - 1.0).abs() < 1e-12);
        assert!((twin_basins(&[0.8, 0.8]) - 1.0).abs() < 1e-12);
        // The midpoint is the fitness valley.
        assert!(twin_basins(&[0.5, 0.5]) < 0.2);
    }

    #[test]
    fn twin_basin_membership_disjoint() {
        assert_eq!(twin_basin_membership(&[0.2, 0.2]), (true, false));
        assert_eq!(twin_basin_membership(&[0.8, 0.8]), (false, true));
        assert_eq!(twin_basin_membership(&[0.5, 0.5]), (false, false));
    }

    #[test]
    fn coverage_requires_both() {
        let only_a = vec![vec![0.2, 0.2], vec![0.22, 0.18]];
        let both = vec![vec![0.2, 0.2], vec![0.8, 0.8]];
        assert!(!covers_both_basins(&only_a));
        assert!(covers_both_basins(&both));
        assert!(!covers_both_basins(&[]));
    }

    #[test]
    fn optimality_predicates() {
        assert!(two_peaks_is_optimal(&[0.895, 0.905], 0.01));
        assert!(!two_peaks_is_optimal(&[0.8, 0.9], 0.01));
        assert!(!trap_is_optimal(&[1.0, 0.49]));
    }

    #[test]
    #[should_panic(expected = "multiple of the block size")]
    fn trap_rejects_ragged_genome() {
        let _ = deceptive_trap(&[0.1; 7], 4);
    }
}
