//! [`GenomeMatrix`] — the flat, structure-of-arrays store for genome
//! batches, mirroring [`crate::behaviour::BehaviourMatrix`] on the genome
//! path.
//!
//! Every evaluation batch a metaheuristic submits is a dense set of
//! fixed-width genome rows. Storing the batch as `Vec<Vec<f64>>` costs one
//! heap allocation per genome and scatters the rows across the heap; a
//! flat `Vec<f64>` with a fixed row width keeps the whole batch in one
//! contiguous block, so a shared evaluation pool can carry **one**
//! allocation per batch (or per fused mega-batch) and workers slice their
//! row straight out of it. The `ess` crate's `SharedScenarioPool` routes
//! all batches through this type; the nested `Vec<Vec<f64>>` signatures
//! remain only as compatibility shims.

/// A dense row-major matrix of genomes: `len` rows of a fixed `dim` width
/// in one contiguous `Vec<f64>`.
///
/// The dimension is fixed by the first row pushed (or up front via
/// [`GenomeMatrix::with_dim`]); every later row must match it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GenomeMatrix {
    data: Vec<f64>,
    dim: usize,
}

impl GenomeMatrix {
    /// An empty matrix whose dimension is inferred from the first push.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty matrix with the row width fixed up front.
    ///
    /// # Panics
    /// Panics when `dim == 0`.
    pub fn with_dim(dim: usize) -> Self {
        assert!(dim > 0, "genome dimension must be positive");
        Self {
            data: Vec::new(),
            dim,
        }
    }

    /// Row width (0 while empty with no fixed dimension).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reserves room for `rows` additional rows (no-op until the
    /// dimension is known).
    pub fn reserve_rows(&mut self, rows: usize) {
        if self.dim > 0 {
            self.data.reserve(rows * self.dim);
        }
    }

    /// Appends one genome row.
    ///
    /// # Panics
    /// Panics on a row-width mismatch or an empty row.
    pub fn push(&mut self, row: &[f64]) {
        self.set_dim(row.len());
        self.data.extend_from_slice(row);
    }

    /// Row `index` as a slice.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn row(&self, index: usize) -> &[f64] {
        let start = index * self.dim;
        &self.data[start..start + self.dim]
    }

    /// Iterates the rows in order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.dim.max(1))
    }

    /// Appends every row of `other` with one bulk copy.
    ///
    /// # Panics
    /// Panics when the dimensions differ (an empty `other` always works).
    pub fn extend_from(&mut self, other: &GenomeMatrix) {
        if other.is_empty() {
            return;
        }
        self.set_dim(other.dim);
        self.data.extend_from_slice(&other.data);
    }

    /// Clears the rows, keeping the allocation and the dimension — the
    /// per-batch reuse entry point.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// The flat row-major storage.
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Builds a matrix from nested rows (migration/test convenience).
    ///
    /// # Panics
    /// Panics on ragged rows.
    pub fn from_rows<R: AsRef<[f64]>>(rows: &[R]) -> Self {
        let mut m = Self::new();
        for row in rows {
            m.push(row.as_ref());
        }
        m
    }

    /// The nested-rows projection (compatibility with the deprecated
    /// `Vec<Vec<f64>>` shape).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.rows().map(<[f64]>::to_vec).collect()
    }

    fn set_dim(&mut self, dim: usize) {
        assert!(dim > 0, "genomes cannot be empty");
        if self.dim == 0 {
            self.dim = dim;
        } else {
            assert_eq!(dim, self.dim, "genome dimension mismatch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_row_round_trip() {
        let mut m = GenomeMatrix::new();
        m.push(&[1.0, 2.0]);
        m.push(&[3.0, 4.0]);
        assert_eq!(m.len(), 2);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.to_rows(), vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn rows_iterator_matches_indexing() {
        let m = GenomeMatrix::from_rows(&[[0.1], [0.2], [0.3]]);
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, row) in collected.iter().enumerate() {
            assert_eq!(*row, m.row(i));
        }
    }

    #[test]
    fn extend_from_is_a_bulk_append() {
        let mut a = GenomeMatrix::from_rows(&[[1.0], [2.0]]);
        let b = GenomeMatrix::from_rows(&[[3.0], [4.0]]);
        a.extend_from(&b);
        assert_eq!(
            a.to_rows(),
            vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]
        );
        a.extend_from(&GenomeMatrix::new()); // empty other: no-op
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn clear_keeps_dim_and_capacity() {
        let mut m = GenomeMatrix::with_dim(3);
        m.push(&[1.0, 2.0, 3.0]);
        let cap = m.data.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.dim(), 3);
        assert_eq!(m.data.capacity(), cap);
    }

    #[test]
    fn reserve_rows_preallocates() {
        let mut m = GenomeMatrix::with_dim(4);
        m.reserve_rows(10);
        assert!(m.data.capacity() >= 40);
        GenomeMatrix::new().reserve_rows(10); // dimension unknown: no-op
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn ragged_rows_rejected() {
        let mut m = GenomeMatrix::new();
        m.push(&[1.0, 2.0]);
        m.push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_row_rejected() {
        let mut m = GenomeMatrix::new();
        m.push(&[]);
    }
}
