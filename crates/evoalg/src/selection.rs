//! Parent selection operators.
//!
//! The paper fixes roulette-wheel selection for the NS-based GA ("the GA
//! population selection strategy will be by roulette wheel selection",
//! §III-B); tournament selection is provided for the baselines and
//! ablations.

use rand::Rng;

/// Roulette-wheel (fitness-proportionate) selection over arbitrary
/// non-negative scores. Returns the index of the selected entry.
///
/// Scores may be any finite non-negative values (fitness for the baseline
/// GA, novelty for Algorithm 1). When every score is zero — common in the
/// first generations of a fire-prediction run, where most scenarios score
/// J = 0 — selection degrades gracefully to uniform, which matches how the
/// ESS implementations seed their searches.
///
/// # Panics
/// Panics on an empty slice or on negative/non-finite scores.
pub fn roulette<R: Rng + ?Sized>(scores: &[f64], rng: &mut R) -> usize {
    assert!(!scores.is_empty(), "roulette over an empty slice");
    let mut total = 0.0;
    for &s in scores {
        assert!(
            s.is_finite() && s >= 0.0,
            "roulette scores must be finite and non-negative"
        );
        total += s;
    }
    if total <= 0.0 {
        return rng.random_range(0..scores.len());
    }
    let mut ticket = rng.random::<f64>() * total;
    for (i, &s) in scores.iter().enumerate() {
        ticket -= s;
        if ticket <= 0.0 {
            return i;
        }
    }
    scores.len() - 1 // numeric edge: the ticket fell off the wheel's end
}

/// Tournament selection: draws `k` uniform entrants and returns the index
/// of the one with the highest score. Unlike roulette it tolerates
/// negative scores.
///
/// # Panics
/// Panics on an empty slice or `k == 0`.
pub fn tournament<R: Rng + ?Sized>(scores: &[f64], k: usize, rng: &mut R) -> usize {
    assert!(!scores.is_empty(), "tournament over an empty slice");
    assert!(k > 0, "tournament size must be positive");
    let mut best = rng.random_range(0..scores.len());
    for _ in 1..k {
        let challenger = rng.random_range(0..scores.len());
        if scores[challenger] > scores[best] {
            best = challenger;
        }
    }
    best
}

/// Elitist replacement shared by the engines: keeps the `capacity` entries
/// with the highest scores out of the concatenation of two score slices,
/// returning indices into the virtual concatenation `[a, b]`.
///
/// Ties resolve in favour of `a` (the incumbent population), making
/// replacement stable — important for reproducibility across platforms.
pub fn elitist_merge_indices(a: &[f64], b: &[f64], capacity: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..a.len() + b.len()).collect();
    let score = |i: usize| if i < a.len() { a[i] } else { b[i - a.len()] };
    idx.sort_by(|&x, &y| score(y).total_cmp(&score(x)).then(x.cmp(&y)));
    idx.truncate(capacity);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roulette_prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(3);
        let scores = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[roulette(&scores, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-score entry must never win");
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((7.0..11.5).contains(&ratio), "expected ≈9×, got {ratio}");
    }

    #[test]
    fn roulette_uniform_when_all_zero() {
        let mut rng = StdRng::seed_from_u64(4);
        let scores = [0.0, 0.0, 0.0, 0.0];
        let mut counts = [0usize; 4];
        for _ in 0..8_000 {
            counts[roulette(&scores, &mut rng)] += 1;
        }
        for c in counts {
            assert!(c > 1_600, "uniform fallback skewed: {counts:?}");
        }
    }

    #[test]
    fn roulette_single_entry() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(roulette(&[0.7], &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn roulette_rejects_negative() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = roulette(&[0.5, -0.1], &mut rng);
    }

    #[test]
    fn tournament_full_size_is_argmax_often() {
        let mut rng = StdRng::seed_from_u64(7);
        let scores = [0.2, 0.9, 0.4];
        // P(max never drawn in 8 tries) = (2/3)^8 ≈ 3.9 %, so ≈ 480/500
        // expected wins; 440 leaves ample slack while still proving strong
        // selection pressure.
        let mut wins = 0;
        for _ in 0..500 {
            if tournament(&scores, 8, &mut rng) == 1 {
                wins += 1;
            }
        }
        assert!(
            wins > 440,
            "k≫n tournament should almost always pick the max, got {wins}/500"
        );
    }

    #[test]
    fn tournament_handles_negative_scores() {
        let mut rng = StdRng::seed_from_u64(8);
        let scores = [-5.0, -1.0, -9.0];
        let pick = tournament(&scores, 16, &mut rng);
        assert_eq!(pick, 1);
    }

    #[test]
    fn elitist_merge_keeps_top() {
        let a = [0.5, 0.1];
        let b = [0.9, 0.3, 0.05];
        let kept = elitist_merge_indices(&a, &b, 3);
        // Scores by index: a0=0.5 a1=0.1 b→2:0.9 3:0.3 4:0.05
        assert_eq!(kept, vec![2, 0, 3]);
    }

    #[test]
    fn elitist_merge_tie_prefers_incumbent() {
        let a = [0.5];
        let b = [0.5];
        assert_eq!(elitist_merge_indices(&a, &b, 1), vec![0]);
    }

    #[test]
    fn elitist_merge_capacity_bounds() {
        let kept = elitist_merge_indices(&[1.0], &[2.0], 10);
        assert_eq!(kept.len(), 2);
    }
}
