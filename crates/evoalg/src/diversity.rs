//! Population diversity statistics (experiment E2).
//!
//! The paper's core criticism of the baselines is genotypic convergence:
//! "the population evolved for each prediction step may consist of a set of
//! scenarios similar to each other, which limits the contribution of these
//! solutions to uncertainty reduction" (§II-B). These metrics quantify
//! that: the result set a method feeds into the Statistical Stage should be
//! *diverse*, and ESS-NS's `bestSet` is expected to score markedly higher
//! than the baselines' final populations.

/// Mean pairwise Euclidean distance between genomes, normalised by `√dims`
/// so the value lies in `[0, 1]` for unit-cube genes. Zero for fewer than
/// two genomes.
pub fn mean_pairwise_distance(genomes: &[Vec<f64>]) -> f64 {
    if genomes.len() < 2 {
        return 0.0;
    }
    let dims = genomes[0].len() as f64;
    let mut total = 0.0;
    let mut pairs = 0u64;
    for i in 0..genomes.len() {
        for j in (i + 1)..genomes.len() {
            debug_assert_eq!(genomes[i].len(), genomes[j].len());
            let sq: f64 = genomes[i]
                .iter()
                .zip(&genomes[j])
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            total += (sq / dims).sqrt();
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Per-gene population standard deviation, averaged over genes — a cheap
/// O(n·d) convergence indicator used by the per-generation traces.
pub fn mean_gene_std(genomes: &[Vec<f64>]) -> f64 {
    if genomes.len() < 2 {
        return 0.0;
    }
    let dims = genomes[0].len();
    let n = genomes.len() as f64;
    let mut acc = 0.0;
    for d in 0..dims {
        let mean: f64 = genomes.iter().map(|g| g[d]).sum::<f64>() / n;
        let var: f64 = genomes
            .iter()
            .map(|g| (g[d] - mean) * (g[d] - mean))
            .sum::<f64>()
            / n;
        acc += var.sqrt();
    }
    acc / dims as f64
}

/// Count of *distinct* genomes (exact equality) — detects the degenerate
/// "population of clones" end state of a converged GA.
pub fn distinct_genomes(genomes: &[Vec<f64>]) -> usize {
    let mut seen: Vec<&Vec<f64>> = Vec::with_capacity(genomes.len());
    for g in genomes {
        if !seen.contains(&g) {
            seen.push(g);
        }
    }
    seen.len()
}

/// A bundled diversity report for one result set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiversityReport {
    /// Mean pairwise normalised distance.
    pub mean_pairwise: f64,
    /// Mean per-gene standard deviation.
    pub mean_gene_std: f64,
    /// Number of distinct genomes.
    pub distinct: usize,
    /// Set size.
    pub size: usize,
}

/// Computes all diversity metrics at once.
pub fn report(genomes: &[Vec<f64>]) -> DiversityReport {
    DiversityReport {
        mean_pairwise: mean_pairwise_distance(genomes),
        mean_gene_std: mean_gene_std(genomes),
        distinct: distinct_genomes(genomes),
        size: genomes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_have_zero_diversity() {
        let pop = vec![vec![0.5, 0.5]; 10];
        assert_eq!(mean_pairwise_distance(&pop), 0.0);
        assert_eq!(mean_gene_std(&pop), 0.0);
        assert_eq!(distinct_genomes(&pop), 1);
    }

    #[test]
    fn opposite_corners_have_unit_distance() {
        let pop = vec![vec![0.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]];
        assert!((mean_pairwise_distance(&pop) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spread_beats_cluster() {
        let cluster: Vec<Vec<f64>> = (0..8).map(|i| vec![0.5 + i as f64 * 1e-3, 0.5]).collect();
        let spread: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![i as f64 / 7.0, 1.0 - i as f64 / 7.0])
            .collect();
        assert!(mean_pairwise_distance(&spread) > 10.0 * mean_pairwise_distance(&cluster));
        assert!(mean_gene_std(&spread) > mean_gene_std(&cluster));
    }

    #[test]
    fn singleton_and_empty_are_zero() {
        assert_eq!(mean_pairwise_distance(&[]), 0.0);
        assert_eq!(mean_pairwise_distance(&[vec![0.3]]), 0.0);
        assert_eq!(mean_gene_std(&[vec![0.3]]), 0.0);
    }

    #[test]
    fn distinct_counts_exact_duplicates_only() {
        let pop = vec![vec![0.1], vec![0.1], vec![0.1 + 1e-15], vec![0.2]];
        assert_eq!(distinct_genomes(&pop), 3);
    }

    #[test]
    fn report_bundles_consistently() {
        let pop = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![0.0, 1.0]];
        let r = report(&pop);
        assert_eq!(r.size, 3);
        assert_eq!(r.distinct, 2);
        assert!((r.mean_pairwise - mean_pairwise_distance(&pop)).abs() < 1e-15);
    }
}
