//! The Novelty Search kit: behaviour distances, the novelty score ρ(x)
//! (Eq. (1) of the paper) and the archive of novel solutions.
//!
//! In the paper's formulation a solution's *behaviour* is characterised by
//! its fitness value, and the behaviour distance is the fitness difference
//! (Eq. (2)). Since the raw difference can be negative, distances here take
//! the absolute value — the standard reading of Eq. (2) as a distance
//! measure. To support the ablation experiments the behaviour is a general
//! `f64` vector with Euclidean distance; the paper's measure is the 1-D
//! case `[fitness]`.
//!
//! The per-subject functions here ([`novelty_score`],
//! [`novelty_score_external`], [`local_competition_score`]) are the
//! **brute-force reference semantics**; the batched
//! [`crate::knn::NoveltyIndex`] strategies reproduce them bit-identically
//! over a flat [`crate::behaviour::BehaviourMatrix`]. Two canonical
//! choices make that identity hold *by construction* rather than by luck:
//! the k smallest distances are summed in ascending `total_cmp` order (so
//! any algorithm that finds the same k-smallest multiset produces the
//! same `f64` sum), and local-competition neighbours are ordered by
//! `(distance, index)` (so distance ties at the k-th-neighbour boundary
//! resolve the same way in every implementation). The reference functions
//! adopt these canonical orders themselves — a deliberate semantic choice
//! that can shift a score by an ulp (and a tied niche member) relative to
//! the earlier partial-selection order; nothing pins those last bits, and
//! with one shared reduction every scoring path in the workspace agrees
//! exactly.

use crate::behaviour::BehaviourMatrix;

/// Euclidean distance between two behaviour descriptors.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn behaviour_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "behaviour descriptors must have equal dimension"
    );
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// The novelty score ρ(x) of Eq. (1): the mean distance from
/// `behaviours[subject]` to its `k` nearest neighbours among the other
/// entries of `behaviours` (the paper's `noveltySet` = population ∪
/// offspring ∪ archive). The subject itself is excluded by index, not by
/// value, so genuine duplicates still count as zero-distance neighbours —
/// exactly the behaviour that drives duplicates' novelty to zero.
///
/// When fewer than `k` neighbours exist, all of them are used (`k` is
/// clamped), matching the "entire population can also be used" remark in
/// §II-C.
///
/// # Panics
/// Panics when `subject` is out of bounds or `k == 0`.
pub fn novelty_score(subject: usize, behaviours: &[Vec<f64>], k: usize) -> f64 {
    assert!(subject < behaviours.len(), "subject index out of bounds");
    assert!(k > 0, "k must be positive");
    let me = &behaviours[subject];
    let mut dists: Vec<f64> = behaviours
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != subject)
        .map(|(_, b)| behaviour_distance(me, b))
        .collect();
    mean_of_k_smallest(&mut dists, k)
}

/// ρ(x) for a behaviour that is *not* a member of the reference set (used
/// when scoring archive candidates against an external reference).
pub fn novelty_score_external(behaviour: &[f64], reference: &[Vec<f64>], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    let mut dists: Vec<f64> = reference
        .iter()
        .map(|b| behaviour_distance(behaviour, b))
        .collect();
    mean_of_k_smallest(&mut dists, k)
}

/// Local-competition score (Lehman & Stanley's novelty search with local
/// competition, ref. \[26\] of the paper): the fraction of the subject's `k`
/// nearest behaviour-space neighbours whose fitness is strictly lower.
/// 1 means the subject out-competes its whole niche; 0 means it loses to
/// all neighbours. Used by the NSLC scoring extension.
///
/// # Panics
/// Panics on index/length mismatches or `k == 0`.
pub fn local_competition_score(
    subject: usize,
    behaviours: &[Vec<f64>],
    fitnesses: &[f64],
    k: usize,
) -> f64 {
    assert!(subject < behaviours.len(), "subject index out of bounds");
    assert_eq!(
        behaviours.len(),
        fitnesses.len(),
        "one fitness per behaviour"
    );
    assert!(k > 0, "k must be positive");
    let me = &behaviours[subject];
    let mut neighbours: Vec<(f64, usize)> = behaviours
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != subject)
        .map(|(i, b)| (behaviour_distance(me, b), i))
        .collect();
    if neighbours.is_empty() {
        return 1.0; // no niche: trivially dominant
    }
    let k = k.min(neighbours.len());
    // Canonical neighbour order: (distance, index). The index tiebreak
    // makes the chosen niche deterministic under distance ties, so every
    // kNN strategy counts the exact same neighbours.
    neighbours.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    beaten_fraction(&neighbours[..k], fitnesses, fitnesses[subject])
}

/// The local-competition tally over an already-selected niche: the
/// fraction of `niche` (as `(distance, index)` pairs) whose fitness is
/// strictly below `subject_fitness`.
pub(crate) fn beaten_fraction(
    niche: &[(f64, usize)],
    fitnesses: &[f64],
    subject_fitness: f64,
) -> f64 {
    let beaten = niche
        .iter()
        .filter(|&&(_, i)| fitnesses[i] < subject_fitness)
        .count();
    beaten as f64 / niche.len() as f64
}

/// Mean of the `k` smallest values of `dists` (clamping `k`), summed in
/// ascending `total_cmp` order — the canonical reduction every novelty
/// path shares, so that equal k-smallest multisets give bit-equal means.
pub(crate) fn mean_of_k_smallest(dists: &mut [f64], k: usize) -> f64 {
    if dists.is_empty() {
        // No reference at all: maximally novel by convention (first
        // individual ever scored). Eq. (1) is undefined here; returning the
        // supremum keeps archive seeding well-ordered.
        return f64::MAX;
    }
    let k = k.min(dists.len());
    // Partial selection of the k smallest distances, then the canonical
    // ascending summation order.
    dists.select_nth_unstable_by(k - 1, f64::total_cmp);
    dists[..k].sort_unstable_by(f64::total_cmp);
    dists[..k].iter().sum::<f64>() / k as f64
}

/// One archived novel solution. Its behaviour descriptor lives in the
/// archive's flat [`BehaviourMatrix`] (same index), not in the entry —
/// see [`NoveltyArchive::behaviour_matrix`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchiveEntry {
    /// The genome.
    pub genes: Vec<f64>,
    /// The novelty score it held when (last) offered to the archive.
    pub novelty: f64,
    /// The fitness it was recorded at (kept so local-competition scoring
    /// can compete against archived behaviours too).
    pub fitness: f64,
}

/// The archive of novel solutions (paper §II-C / Algorithm 1 line 15).
///
/// The paper fixes a **fixed-size archive managed with replacement based on
/// novelty only** ("as opposed to the pseudocode in \[29\], which uses a
/// randomized approach", §III-B): when full, a candidate with a higher
/// novelty score replaces the current minimum-novelty entry. An optional
/// admission threshold (the `\[15\]`-style variant listed as future work) can
/// be set for the ablation experiments.
#[derive(Debug, Clone)]
pub struct NoveltyArchive {
    capacity: usize,
    threshold: Option<f64>,
    entries: Vec<ArchiveEntry>,
    /// The stored behaviour descriptors, maintained *incrementally* in the
    /// flat layout the novelty computation consumes (row `i` ↔
    /// `entries[i]`): admissions push a row, replacements overwrite one, so
    /// building each generation's noveltySet is a single bulk copy instead
    /// of a per-entry `Vec<Vec<f64>>` clone.
    behaviours: BehaviourMatrix,
}

impl NoveltyArchive {
    /// A fixed-capacity archive with pure novelty-based replacement.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "archive capacity must be positive");
        Self {
            capacity,
            threshold: None,
            entries: Vec::with_capacity(capacity),
            behaviours: BehaviourMatrix::new(),
        }
    }

    /// Adds a minimum-novelty admission threshold (future-work variant;
    /// candidates below it are rejected even when space is free).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 0.0, "novelty threshold must be non-negative");
        self.threshold = Some(threshold);
        self
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The stored entries (unordered).
    pub fn entries(&self) -> &[ArchiveEntry] {
        &self.entries
    }

    /// The stored behaviour descriptors as a borrowed flat matrix (row `i`
    /// describes `entries()[i]`) — the zero-copy view the novelty paths
    /// consume; append it to a noveltySet with
    /// [`BehaviourMatrix::extend_from`] (one bulk copy).
    pub fn behaviour_matrix(&self) -> &BehaviourMatrix {
        &self.behaviours
    }

    /// The behaviour descriptor of `entries()[index]`.
    ///
    /// # Panics
    /// Panics when `index` is out of bounds.
    pub fn behaviour_of(&self, index: usize) -> &[f64] {
        self.behaviours.row(index)
    }

    /// Offers a candidate. Returns `true` when it entered the archive:
    ///
    /// * below the admission threshold (if any) → rejected;
    /// * free space → accepted;
    /// * full → accepted iff its novelty exceeds the current minimum, which
    ///   it replaces (novelty-only replacement, §III-B).
    pub fn offer(&mut self, genes: &[f64], behaviour: &[f64], novelty: f64, fitness: f64) -> bool {
        assert!(novelty >= 0.0, "novelty scores are non-negative");
        if let Some(t) = self.threshold {
            if novelty < t {
                return false;
            }
        }
        if self.entries.len() < self.capacity {
            self.entries.push(ArchiveEntry {
                genes: genes.to_vec(),
                novelty,
                fitness,
            });
            self.behaviours.push(behaviour);
            return true;
        }
        let (min_idx, min_novelty) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.novelty))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("archive is non-empty here");
        if novelty > min_novelty {
            self.entries[min_idx] = ArchiveEntry {
                genes: genes.to_vec(),
                novelty,
                fitness,
            };
            self.behaviours.set_row(min_idx, behaviour);
            true
        } else {
            false
        }
    }

    /// Minimum novelty currently stored (`None` when empty).
    pub fn min_novelty(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| e.novelty)
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Maximum novelty currently stored (`None` when empty).
    pub fn max_novelty(&self) -> Option<f64> {
        self.entries
            .iter()
            .map(|e| e.novelty)
            .max_by(|a, b| a.total_cmp(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(vals: &[f64]) -> Vec<Vec<f64>> {
        vals.iter().map(|&v| vec![v]).collect()
    }

    #[test]
    fn distance_is_euclidean() {
        assert_eq!(behaviour_distance(&[0.0], &[3.0]), 3.0);
        assert!((behaviour_distance(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn paper_example_k2() {
        // Behaviours (fitness values): subject 0.5; others at 0.4, 0.7, 0.9.
        // Two nearest: 0.4 (d=0.1) and 0.7 (d=0.2) → ρ = 0.15.
        let set = b(&[0.5, 0.4, 0.7, 0.9]);
        assert!((novelty_score(0, &set, 2) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn duplicate_has_zero_novelty_with_k1() {
        let set = b(&[0.5, 0.5, 0.9]);
        assert_eq!(novelty_score(0, &set, 1), 0.0);
    }

    #[test]
    fn k_clamped_to_reference_size() {
        let set = b(&[0.1, 0.9]);
        // Only one neighbour exists; k = 10 clamps to 1.
        assert!((novelty_score(0, &set, 10) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn isolated_subject_is_maximally_novel() {
        let set = b(&[0.3]);
        assert_eq!(novelty_score(0, &set, 3), f64::MAX);
        assert_eq!(novelty_score_external(&[0.3], &[], 3), f64::MAX);
    }

    #[test]
    fn external_score_counts_all_reference_entries() {
        let reference = b(&[0.0, 1.0]);
        // d = 0.5 to each → mean of k=2 is 0.5.
        assert!((novelty_score_external(&[0.5], &reference, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn outlier_scores_higher_than_cluster_member() {
        let set = b(&[0.50, 0.51, 0.49, 0.52, 0.95]);
        let clustered = novelty_score(0, &set, 3);
        let outlier = novelty_score(4, &set, 3);
        assert!(
            outlier > 3.0 * clustered,
            "outlier {outlier} vs cluster {clustered}"
        );
    }

    #[test]
    fn local_competition_counts_beaten_neighbours() {
        // Behaviours equally spaced; fitness rises with index. Subject 2's
        // two nearest neighbours are 1 and 3: it beats 1, loses to 3 → 0.5.
        let b = b(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let f = [0.0, 0.25, 0.5, 0.75, 1.0];
        assert!((local_competition_score(2, &b, &f, 2) - 0.5).abs() < 1e-12);
        // The best individual dominates any niche.
        assert_eq!(local_competition_score(4, &b, &f, 2), 1.0);
        // The worst loses everywhere.
        assert_eq!(local_competition_score(0, &b, &f, 2), 0.0);
    }

    #[test]
    fn local_competition_is_local_not_global() {
        // Subject 0 is globally mediocre but locally dominant: its niche
        // (nearby behaviours) all have lower fitness, while a far-away
        // cluster is fitter.
        let b = b(&[0.10, 0.11, 0.12, 0.9, 0.91]);
        let f = [0.5, 0.1, 0.2, 0.9, 0.95];
        assert_eq!(local_competition_score(0, &b, &f, 2), 1.0);
    }

    #[test]
    fn lonely_subject_dominates_trivially() {
        assert_eq!(local_competition_score(0, &b(&[0.5]), &[0.3], 3), 1.0);
    }

    #[test]
    fn archive_respects_capacity() {
        let mut a = NoveltyArchive::new(3);
        for i in 0..10 {
            a.offer(&[i as f64], &[i as f64], i as f64, 0.5);
            assert!(a.len() <= 3);
        }
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn archive_keeps_maximal_novelty_set() {
        let mut a = NoveltyArchive::new(2);
        assert!(a.offer(&[1.0], &[1.0], 0.1, 0.5));
        assert!(a.offer(&[2.0], &[2.0], 0.5, 0.5));
        assert!(a.offer(&[3.0], &[3.0], 0.9, 0.5)); // replaces 0.1
        assert!(!a.offer(&[4.0], &[4.0], 0.2, 0.5)); // below current min (0.5)
        assert_eq!(a.min_novelty(), Some(0.5));
        assert_eq!(a.max_novelty(), Some(0.9));
    }

    #[test]
    fn equal_novelty_does_not_replace() {
        let mut a = NoveltyArchive::new(1);
        assert!(a.offer(&[1.0], &[1.0], 0.5, 0.5));
        assert!(!a.offer(&[2.0], &[2.0], 0.5, 0.5));
        assert_eq!(a.entries()[0].genes, vec![1.0]);
    }

    #[test]
    fn threshold_rejects_low_novelty_even_with_space() {
        let mut a = NoveltyArchive::new(5).with_threshold(0.3);
        assert!(!a.offer(&[1.0], &[1.0], 0.2, 0.5));
        assert!(a.offer(&[2.0], &[2.0], 0.3, 0.5));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn behaviour_matrix_tracks_entries_incrementally() {
        let mut a = NoveltyArchive::new(2);
        a.offer(&[1.0, 2.0], &[0.7], 1.0, 0.9);
        a.offer(&[3.0, 4.0], &[0.2], 2.0, 0.1);
        assert_eq!(a.behaviour_matrix().to_rows(), vec![vec![0.7], vec![0.2]]);
        assert_eq!(a.behaviour_of(1), &[0.2]);
        // Replacement overwrites the evicted entry's row in place.
        assert!(a.offer(&[5.0, 6.0], &[0.9], 3.0, 0.5));
        assert_eq!(a.behaviour_matrix().to_rows(), vec![vec![0.9], vec![0.2]]);
        assert_eq!(a.entries()[0].genes, vec![5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = NoveltyArchive::new(0);
    }
}
