//! Variation operators over normalised (`[0, 1]`) gene vectors.

use rand::Rng;

/// One-point crossover: children swap tails after a random cut point.
///
/// # Panics
/// Panics when parents differ in length or have fewer than 2 genes.
pub fn one_point_crossover<R: Rng + ?Sized>(
    a: &[f64],
    b: &[f64],
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "crossover parents must have equal length");
    assert!(a.len() >= 2, "one-point crossover needs at least two genes");
    let cut = rng.random_range(1..a.len());
    let mut c1 = a.to_vec();
    let mut c2 = b.to_vec();
    c1[cut..].copy_from_slice(&b[cut..]);
    c2[cut..].copy_from_slice(&a[cut..]);
    (c1, c2)
}

/// Uniform crossover: each gene independently swaps with probability ½.
pub fn uniform_crossover<R: Rng + ?Sized>(
    a: &[f64],
    b: &[f64],
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "crossover parents must have equal length");
    let mut c1 = a.to_vec();
    let mut c2 = b.to_vec();
    for i in 0..a.len() {
        if rng.random::<bool>() {
            c1[i] = b[i];
            c2[i] = a[i];
        }
    }
    (c1, c2)
}

/// BLX-α blend crossover: each child gene is drawn uniformly from the
/// parents' interval extended by `alpha` on both sides, clamped to `[0, 1]`.
pub fn blx_alpha_crossover<R: Rng + ?Sized>(
    a: &[f64],
    b: &[f64],
    alpha: f64,
    rng: &mut R,
) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(a.len(), b.len(), "crossover parents must have equal length");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut sample = |x: f64, y: f64| {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let span = hi - lo;
        let lo_e = lo - alpha * span;
        let hi_e = hi + alpha * span;
        let v = lo_e + rng.random::<f64>() * (hi_e - lo_e);
        v.clamp(0.0, 1.0)
    };
    let c1: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| sample(x, y)).collect();
    let c2: Vec<f64> = a.iter().zip(b).map(|(&x, &y)| sample(x, y)).collect();
    (c1, c2)
}

/// Uniform-reset mutation: each gene is independently resampled uniformly
/// in `[0, 1]` with probability `rate`.
pub fn uniform_mutation<R: Rng + ?Sized>(genes: &mut [f64], rate: f64, rng: &mut R) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "mutation rate must be a probability"
    );
    for g in genes {
        if rng.random::<f64>() < rate {
            *g = rng.random::<f64>();
        }
    }
}

/// Gaussian creep mutation: each gene is independently perturbed by
/// `N(0, sigma)` with probability `rate`, clamped to `[0, 1]`.
///
/// Uses a Box–Muller draw so no external distribution crate is needed.
pub fn gaussian_mutation<R: Rng + ?Sized>(genes: &mut [f64], rate: f64, sigma: f64, rng: &mut R) {
    assert!(
        (0.0..=1.0).contains(&rate),
        "mutation rate must be a probability"
    );
    assert!(sigma >= 0.0, "sigma must be non-negative");
    for g in genes {
        if rng.random::<f64>() < rate {
            *g = (*g + sigma * standard_normal(rng)).clamp(0.0, 1.0);
        }
    }
}

/// A standard normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by drawing u1 from (0, 1].
    let u1 = 1.0 - rng.random::<f64>();
    let u2 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// DE `rand/1` donor vector: `x_r1 + f × (x_r2 − x_r3)`, clamped to
/// `[0, 1]`. `r1, r2, r3` are distinct indices into `population`, all
/// different from `target`.
///
/// # Panics
/// Panics when the population has fewer than 4 members (DE's minimum).
pub fn de_rand_1_donor<R: Rng + ?Sized>(
    population: &[Vec<f64>],
    target: usize,
    f: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(
        population.len() >= 4,
        "DE rand/1 needs at least 4 individuals"
    );
    let mut pick = |exclude: &[usize]| -> usize {
        loop {
            let i = rng.random_range(0..population.len());
            if !exclude.contains(&i) {
                return i;
            }
        }
    };
    let r1 = pick(&[target]);
    let r2 = pick(&[target, r1]);
    let r3 = pick(&[target, r1, r2]);
    population[r1]
        .iter()
        .zip(&population[r2])
        .zip(&population[r3])
        .map(|((&a, &b), &c)| (a + f * (b - c)).clamp(0.0, 1.0))
        .collect()
}

/// DE binomial crossover: gene-wise take the donor with probability `cr`,
/// with one guaranteed donor gene (`j_rand`).
pub fn de_binomial_crossover<R: Rng + ?Sized>(
    target: &[f64],
    donor: &[f64],
    cr: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert_eq!(target.len(), donor.len(), "DE crossover length mismatch");
    assert!(
        (0.0..=1.0).contains(&cr),
        "crossover rate must be a probability"
    );
    let j_rand = rng.random_range(0..target.len());
    target
        .iter()
        .zip(donor)
        .enumerate()
        .map(|(j, (&t, &d))| {
            if j == j_rand || rng.random::<f64>() < cr {
                d
            } else {
                t
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn one_point_preserves_multiset_per_position() {
        let a = vec![0.1, 0.2, 0.3, 0.4];
        let b = vec![0.9, 0.8, 0.7, 0.6];
        let (c1, c2) = one_point_crossover(&a, &b, &mut rng());
        for i in 0..4 {
            let mut got = [c1[i], c2[i]];
            let mut want = [a[i], b[i]];
            got.sort_by(f64::total_cmp);
            want.sort_by(f64::total_cmp);
            assert_eq!(got, want);
        }
        // The cut must actually exchange a tail.
        assert_ne!(c1, a);
    }

    #[test]
    fn uniform_crossover_positionwise_swap() {
        let a = vec![0.0; 16];
        let b = vec![1.0; 16];
        let (c1, c2) = uniform_crossover(&a, &b, &mut rng());
        for i in 0..16 {
            assert!((c1[i] == 0.0 && c2[i] == 1.0) || (c1[i] == 1.0 && c2[i] == 0.0));
        }
    }

    #[test]
    fn blx_children_within_extended_interval() {
        let a = vec![0.3; 8];
        let b = vec![0.5; 8];
        let (c1, c2) = blx_alpha_crossover(&a, &b, 0.5, &mut rng());
        for g in c1.iter().chain(&c2) {
            assert!((0.2..=0.6).contains(g), "gene {g} outside BLX interval");
        }
    }

    #[test]
    fn mutation_rate_zero_is_identity() {
        let mut genes = vec![0.25, 0.5, 0.75];
        let orig = genes.clone();
        uniform_mutation(&mut genes, 0.0, &mut rng());
        assert_eq!(genes, orig);
        gaussian_mutation(&mut genes, 0.0, 0.1, &mut rng());
        assert_eq!(genes, orig);
    }

    #[test]
    fn mutation_rate_one_changes_most_genes() {
        let mut genes = vec![0.5; 64];
        uniform_mutation(&mut genes, 1.0, &mut rng());
        let changed = genes.iter().filter(|&&g| g != 0.5).count();
        assert!(
            changed > 56,
            "expected nearly all genes resampled, got {changed}"
        );
        assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
    }

    #[test]
    fn gaussian_mutation_stays_clamped() {
        let mut genes = vec![0.01, 0.99];
        for _ in 0..200 {
            gaussian_mutation(&mut genes, 1.0, 0.5, &mut rng());
            assert!(genes.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn de_donor_in_bounds_and_distinct_sources() {
        let pop: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 / 6.0; 4]).collect();
        let mut r = rng();
        for target in 0..pop.len() {
            let donor = de_rand_1_donor(&pop, target, 0.8, &mut r);
            assert_eq!(donor.len(), 4);
            assert!(donor.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }

    #[test]
    fn de_crossover_keeps_at_least_one_donor_gene() {
        let target = vec![0.0; 8];
        let donor = vec![1.0; 8];
        let mut r = rng();
        for _ in 0..50 {
            let trial = de_binomial_crossover(&target, &donor, 0.0, &mut r);
            assert_eq!(trial.iter().filter(|&&g| g == 1.0).count(), 1);
        }
    }

    #[test]
    fn de_crossover_cr_one_copies_donor() {
        let target = vec![0.0; 5];
        let donor = vec![1.0; 5];
        let trial = de_binomial_crossover(&target, &donor, 1.0, &mut rng());
        assert_eq!(trial, donor);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn de_requires_four_members() {
        let pop = vec![vec![0.5]; 3];
        let _ = de_rand_1_donor(&pop, 0, 0.5, &mut rng());
    }
}
