//! Individuals (scored genomes) and populations.

/// A candidate solution: a normalised gene vector plus the scores the
/// algorithms attach to it.
///
/// Genes live in `[0, 1]` and are decoded by the problem layer (for the
/// wildfire systems, [`firelib::ScenarioSpace`]-style decoding; for the
/// benchmark functions, directly). `fitness` is the objective score
/// (Eq. (3) for the fire problem); `novelty` is ρ(x) from Eq. (1), present
/// only in novelty-driven algorithms.
///
/// [`firelib::ScenarioSpace`]: https://docs.rs/firelib
#[derive(Debug, Clone, PartialEq)]
pub struct Individual {
    /// Normalised genome.
    pub genes: Vec<f64>,
    /// Objective score (NaN until evaluated; engines always evaluate before
    /// reading it).
    pub fitness: f64,
    /// Novelty score ρ(x), when computed.
    pub novelty: f64,
    /// Local-competition score (fraction of behaviour-space neighbours
    /// out-fitted), when an NSLC-style policy computes it.
    pub local_comp: f64,
}

impl Individual {
    /// A fresh, unevaluated individual.
    pub fn new(genes: Vec<f64>) -> Self {
        Self {
            genes,
            fitness: f64::NAN,
            novelty: f64::NAN,
            local_comp: f64::NAN,
        }
    }

    /// `true` once a finite fitness has been assigned.
    pub fn is_evaluated(&self) -> bool {
        self.fitness.is_finite()
    }

    /// Number of genes.
    pub fn dims(&self) -> usize {
        self.genes.len()
    }
}

/// A population of individuals with the bookkeeping the engines share.
#[derive(Debug, Clone, Default)]
pub struct Population {
    members: Vec<Individual>,
}

impl Population {
    /// An empty population.
    pub fn new() -> Self {
        Self {
            members: Vec::new(),
        }
    }

    /// Wraps existing members.
    pub fn from_members(members: Vec<Individual>) -> Self {
        Self { members }
    }

    /// Uniformly random population of `size` genomes with `dims` genes.
    pub fn random<R: rand::Rng + ?Sized>(size: usize, dims: usize, rng: &mut R) -> Self {
        let members = (0..size)
            .map(|_| Individual::new((0..dims).map(|_| rng.random::<f64>()).collect()))
            .collect();
        Self { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Immutable members.
    pub fn members(&self) -> &[Individual] {
        &self.members
    }

    /// Mutable members.
    pub fn members_mut(&mut self) -> &mut [Individual] {
        &mut self.members
    }

    /// Adds a member.
    pub fn push(&mut self, ind: Individual) {
        self.members.push(ind);
    }

    /// Moves all members out.
    pub fn into_members(self) -> Vec<Individual> {
        self.members
    }

    /// The genomes, cloned into the shape batch evaluators take.
    pub fn genomes(&self) -> Vec<Vec<f64>> {
        self.members.iter().map(|m| m.genes.clone()).collect()
    }

    /// Writes `fitness[i]` into member `i`.
    ///
    /// # Panics
    /// Panics on length mismatch or non-finite fitness — a NaN score would
    /// silently poison every later comparison.
    pub fn assign_fitness(&mut self, fitness: &[f64]) {
        assert_eq!(
            fitness.len(),
            self.members.len(),
            "fitness batch length mismatch"
        );
        for (m, &f) in self.members.iter_mut().zip(fitness) {
            assert!(f.is_finite(), "fitness must be finite, got {f}");
            m.fitness = f;
        }
    }

    /// The member with the highest fitness.
    pub fn best(&self) -> Option<&Individual> {
        self.members
            .iter()
            .filter(|m| m.is_evaluated())
            .max_by(|a, b| a.fitness.total_cmp(&b.fitness))
    }

    /// All fitness values (evaluated members only).
    pub fn fitness_values(&self) -> Vec<f64> {
        self.members
            .iter()
            .filter(|m| m.is_evaluated())
            .map(|m| m.fitness)
            .collect()
    }

    /// Sorts members by descending fitness (unevaluated members sink).
    pub fn sort_by_fitness_desc(&mut self) {
        self.members.sort_by(|a, b| {
            let fa = if a.fitness.is_finite() {
                a.fitness
            } else {
                f64::NEG_INFINITY
            };
            let fb = if b.fitness.is_finite() {
                b.fitness
            } else {
                f64::NEG_INFINITY
            };
            fb.total_cmp(&fa)
        });
    }

    /// Sorts members by descending novelty (unscored members sink).
    pub fn sort_by_novelty_desc(&mut self) {
        self.members.sort_by(|a, b| {
            let na = if a.novelty.is_finite() {
                a.novelty
            } else {
                f64::NEG_INFINITY
            };
            let nb = if b.novelty.is_finite() {
                b.novelty
            } else {
                f64::NEG_INFINITY
            };
            nb.total_cmp(&na)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_individual_is_unevaluated() {
        let ind = Individual::new(vec![0.5, 0.5]);
        assert!(!ind.is_evaluated());
        assert_eq!(ind.dims(), 2);
    }

    #[test]
    fn random_population_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::random(20, 5, &mut rng);
        assert_eq!(pop.len(), 20);
        for m in pop.members() {
            assert_eq!(m.dims(), 5);
            assert!(m.genes.iter().all(|g| (0.0..=1.0).contains(g)));
        }
    }

    #[test]
    fn assign_and_best() {
        let mut pop = Population::from_members(vec![
            Individual::new(vec![0.1]),
            Individual::new(vec![0.2]),
            Individual::new(vec![0.3]),
        ]);
        pop.assign_fitness(&[0.5, 0.9, 0.1]);
        assert_eq!(pop.best().unwrap().genes, vec![0.2]);
        assert_eq!(pop.fitness_values(), vec![0.5, 0.9, 0.1]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_fitness_rejected() {
        let mut pop = Population::from_members(vec![Individual::new(vec![0.1])]);
        pop.assign_fitness(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_batch_length_rejected() {
        let mut pop = Population::from_members(vec![Individual::new(vec![0.1])]);
        pop.assign_fitness(&[0.1, 0.2]);
    }

    #[test]
    fn sorts_are_descending() {
        let mut pop = Population::from_members(vec![
            Individual::new(vec![0.0]),
            Individual::new(vec![0.1]),
            Individual::new(vec![0.2]),
        ]);
        pop.assign_fitness(&[0.3, 0.9, 0.6]);
        pop.sort_by_fitness_desc();
        let f: Vec<f64> = pop.members().iter().map(|m| m.fitness).collect();
        assert_eq!(f, vec![0.9, 0.6, 0.3]);

        for (i, m) in pop.members_mut().iter_mut().enumerate() {
            m.novelty = i as f64;
        }
        pop.sort_by_novelty_desc();
        let n: Vec<f64> = pop.members().iter().map(|m| m.novelty).collect();
        assert_eq!(n, vec![2.0, 1.0, 0.0]);
    }

    #[test]
    fn determinism_for_fixed_seed() {
        let a = Population::random(10, 3, &mut StdRng::seed_from_u64(9));
        let b = Population::random(10, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.genomes(), b.genomes());
    }
}
