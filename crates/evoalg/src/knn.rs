//! Indexed, batched, optionally parallel novelty scoring.
//!
//! Algorithm 1 scores ρ(x) (Eq. (1)) for every member of
//! population ∪ offspring against the full noveltySet each generation —
//! the one master-side O(n²) hot path of ESS-NS. This module turns that
//! into a subsystem with three independent knobs:
//!
//! * **Layout** — scoring runs over a flat
//!   [`BehaviourMatrix`](crate::behaviour::BehaviourMatrix) (one
//!   contiguous block) instead of `Vec<Vec<f64>>`;
//! * **Index** — [`NoveltyIndex`] picks the kNN strategy:
//!   [`NoveltyIndex::SortedScan`] sorts the 1-D behaviour values once per
//!   generation and finds each subject's k nearest neighbours with a
//!   two-pointer walk (O(n log n + n·k) instead of O(n²)) — the paper's
//!   Eq. (2) fitness behaviour is exactly this 1-D case —
//!   while [`NoveltyIndex::ChunkedBruteForce`] handles any dimension;
//! * **Execution** — [`NoveltyEngine`] batches the per-subject scores and
//!   can fan chunks of subjects out over
//!   [`parworker::scoped_chunk_map_ranges`] (the same self-scheduling
//!   discipline as the scenario-evaluation pools).
//!
//! **Bit-identity guarantee.** Every strategy × worker-count combination
//! returns exactly (`f64`-bit-equal) the values of the brute-force
//! reference functions [`crate::novelty::novelty_score`],
//! [`crate::novelty::novelty_score_external`] and
//! [`crate::novelty::local_competition_score`]. This holds by
//! construction, not by tolerance: all paths compute distances with the
//! same expressions, reduce the same k-smallest multiset through the
//! shared canonical `mean_of_k_smallest` (ascending summation), and
//! resolve distance ties in the same `(distance, index)` order (see
//! `crates/evoalg/tests/properties.rs`). Backend-parallel scoring is a
//! pure fan-out of per-subject calls, so worker count changes wall time
//! only. One guarded edge: the sorted-scan walk needs finite behaviour
//! values (its frontier comparisons are plain `<=`), so
//! [`NoveltyIndex::prepare`] *rejects* non-finite 1-D descriptors loudly
//! rather than diverging silently; brute force stays NaN-tolerant and
//! reference-identical.

use crate::behaviour::BehaviourMatrix;
use crate::novelty::{beaten_fraction, behaviour_distance, mean_of_k_smallest};
use std::fmt;
use std::str::FromStr;

/// The kNN strategy behind batch novelty scoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NoveltyIndex {
    /// Sort the behaviour values once, then find each subject's k nearest
    /// neighbours with a two-pointer walk outward from its sorted
    /// position. Applies to 1-D behaviours (the paper's fitness-difference
    /// measure of Eq. (2)); for higher-dimensional behaviour spaces it
    /// falls back to [`NoveltyIndex::ChunkedBruteForce`].
    #[default]
    SortedScan,
    /// Exhaustive pairwise distances for any behaviour dimension, scored
    /// subject-by-subject so the engine can hand out contiguous subject
    /// chunks to workers.
    ChunkedBruteForce,
}

impl NoveltyIndex {
    /// Builds the per-generation index state over `reference` (for
    /// [`NoveltyIndex::SortedScan`] on 1-D data: the sorted order of the
    /// rows; otherwise nothing). Prepare once per generation, score many.
    ///
    /// # Panics
    /// Panics when the sorted-scan path meets a non-finite behaviour
    /// value: the two-pointer walk's frontier comparisons rely on finite
    /// distances, and silently diverging from the brute-force reference
    /// (whose `total_cmp` selection tolerates NaN) would break the
    /// bit-identity contract. Finite descriptors are the engines'
    /// contract anyway (fitness is asserted finite at evaluation); use
    /// [`NoveltyIndex::ChunkedBruteForce`] for non-finite exotica.
    pub fn prepare<'a>(&self, reference: &'a BehaviourMatrix) -> PreparedIndex<'a> {
        let sorted = match self {
            NoveltyIndex::SortedScan if reference.dim() == 1 && !reference.is_empty() => {
                assert!(
                    reference.as_flat().iter().all(|v| v.is_finite()),
                    "sorted-scan requires finite behaviour values"
                );
                let mut order: Vec<u32> = (0..reference.len() as u32).collect();
                // Total order (value, index): deterministic under ties.
                order.sort_unstable_by(|&a, &b| {
                    reference.row(a as usize)[0]
                        .total_cmp(&reference.row(b as usize)[0])
                        .then(a.cmp(&b))
                });
                let mut position = vec![0u32; reference.len()];
                for (rank, &row) in order.iter().enumerate() {
                    position[row as usize] = rank as u32;
                }
                Some(SortedOrder { order, position })
            }
            _ => None,
        };
        PreparedIndex { reference, sorted }
    }
}

impl fmt::Display for NoveltyIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NoveltyIndex::SortedScan => write!(f, "sorted-scan"),
            NoveltyIndex::ChunkedBruteForce => write!(f, "brute-force"),
        }
    }
}

/// The 1-D index state: rows sorted by `(value, index)` plus the inverse
/// permutation.
struct SortedOrder {
    order: Vec<u32>,
    position: Vec<u32>,
}

/// A [`NoveltyIndex`] prepared over one reference set; shared read-only by
/// every scoring worker of the generation.
pub struct PreparedIndex<'a> {
    reference: &'a BehaviourMatrix,
    sorted: Option<SortedOrder>,
}

impl PreparedIndex<'_> {
    /// The reference set this index was built over.
    pub fn reference(&self) -> &BehaviourMatrix {
        self.reference
    }

    /// ρ(x) of reference row `subject` against all other rows —
    /// bit-identical to [`crate::novelty::novelty_score`].
    pub fn novelty_of(&self, subject: usize, k: usize) -> f64 {
        self.novelty_of_with(subject, k, &mut Vec::new())
    }

    /// [`PreparedIndex::novelty_of`] with a caller-owned distance scratch
    /// buffer (reused across a chunk of subjects).
    pub fn novelty_of_with(&self, subject: usize, k: usize, scratch: &mut Vec<f64>) -> f64 {
        assert!(
            subject < self.reference.len(),
            "subject index out of bounds"
        );
        assert!(k > 0, "k must be positive");
        scratch.clear();
        match &self.sorted {
            Some(sorted) => {
                let n = self.reference.len();
                if n <= 1 {
                    return f64::MAX; // no neighbours: the sentinel of the reference path
                }
                let k = k.min(n - 1);
                let me = self.reference.row(subject)[0];
                let pos = sorted.position[subject] as usize;
                self.merge_nearest_1d(sorted, me, pos, pos + 1, k, |d, _| scratch.push(d));
                mean_of_k_smallest(scratch, k)
            }
            None => {
                let me = self.reference.row(subject);
                for (j, row) in self.reference.rows().enumerate() {
                    if j != subject {
                        scratch.push(behaviour_distance(me, row));
                    }
                }
                mean_of_k_smallest(scratch, k)
            }
        }
    }

    /// ρ(x) for a behaviour that is *not* a reference row — bit-identical
    /// to [`crate::novelty::novelty_score_external`].
    ///
    /// # Panics
    /// Panics on a dimension mismatch against a non-empty reference (the
    /// same contract `behaviour_distance` enforces on the brute path).
    pub fn novelty_of_external(&self, behaviour: &[f64], k: usize) -> f64 {
        assert!(k > 0, "k must be positive");
        assert!(
            self.reference.is_empty() || behaviour.len() == self.reference.dim(),
            "behaviour descriptors must have equal dimension"
        );
        let mut scratch = Vec::new();
        match &self.sorted {
            Some(sorted) => {
                let n = self.reference.len();
                let k = k.min(n);
                let x = behaviour[0];
                // First sorted rank whose value is >= x: the walk starts at
                // the insertion point, with no row excluded.
                let start = sorted
                    .order
                    .partition_point(|&row| self.reference.row(row as usize)[0] < x);
                self.merge_nearest_1d(sorted, x, start, start, k, |d, _| scratch.push(d));
                mean_of_k_smallest(&mut scratch, k)
            }
            None => {
                for row in self.reference.rows() {
                    scratch.push(behaviour_distance(behaviour, row));
                }
                mean_of_k_smallest(&mut scratch, k)
            }
        }
    }

    /// Local-competition score of reference row `subject` — bit-identical
    /// to [`crate::novelty::local_competition_score`].
    pub fn local_competition_of(&self, subject: usize, fitnesses: &[f64], k: usize) -> f64 {
        self.local_competition_of_with(subject, fitnesses, k, &mut Vec::new())
    }

    /// [`PreparedIndex::local_competition_of`] with a caller-owned
    /// neighbour scratch buffer.
    pub fn local_competition_of_with(
        &self,
        subject: usize,
        fitnesses: &[f64],
        k: usize,
        scratch: &mut Vec<(f64, usize)>,
    ) -> f64 {
        assert!(
            subject < self.reference.len(),
            "subject index out of bounds"
        );
        assert_eq!(
            self.reference.len(),
            fitnesses.len(),
            "one fitness per behaviour"
        );
        assert!(k > 0, "k must be positive");
        let n = self.reference.len();
        if n <= 1 {
            return 1.0; // no niche: trivially dominant
        }
        let k = k.min(n - 1);
        scratch.clear();
        match &self.sorted {
            Some(sorted) => {
                let me = self.reference.row(subject)[0];
                let pos = sorted.position[subject] as usize;
                let (mut left, mut right) =
                    self.merge_nearest_1d(sorted, me, pos, pos + 1, k, |d, row| {
                        scratch.push((d, row))
                    });
                // The walk emits non-decreasing distances, so the k-th
                // neighbour distance is the last one. Distance ties
                // straddling that boundary must resolve by the canonical
                // (distance, index) order, not by walk direction: pull in
                // *every* remaining candidate at exactly that distance,
                // then select and cut.
                let boundary = scratch[k - 1].0;
                while left > 0 {
                    let row = sorted.order[left - 1] as usize;
                    let d = dist_1d(me, self.reference.row(row)[0]);
                    if d != boundary {
                        break;
                    }
                    scratch.push((d, row));
                    left -= 1;
                }
                while right < n {
                    let row = sorted.order[right] as usize;
                    let d = dist_1d(me, self.reference.row(row)[0]);
                    if d != boundary {
                        break;
                    }
                    scratch.push((d, row));
                    right += 1;
                }
            }
            None => {
                let me = self.reference.row(subject);
                for (j, row) in self.reference.rows().enumerate() {
                    if j != subject {
                        scratch.push((behaviour_distance(me, row), j));
                    }
                }
            }
        }
        // (distance, index) is a strict total order, so partial selection
        // of the first k determines a unique niche set — no full sort
        // needed (the tally is order-independent).
        if scratch.len() > k {
            scratch.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        }
        beaten_fraction(&scratch[..k], fitnesses, fitnesses[subject])
    }

    /// The 1-D two-pointer neighbour walk: starting with the candidate
    /// ranks `left - 1` (downward) and `right` (upward), repeatedly takes
    /// the closer of the two frontier rows until `k` neighbours were
    /// emitted (distances come out non-decreasing). Rows at rank
    /// `left..right` are excluded — the subject itself, or nothing for an
    /// external query. Returns the final `(left, right)` frontier.
    fn merge_nearest_1d(
        &self,
        sorted: &SortedOrder,
        me: f64,
        left: usize,
        right: usize,
        k: usize,
        mut emit: impl FnMut(f64, usize),
    ) -> (usize, usize) {
        let n = self.reference.len();
        let (mut left, mut right) = (left, right);
        for _ in 0..k {
            let down = (left > 0)
                .then(|| dist_1d(me, self.reference.row(sorted.order[left - 1] as usize)[0]));
            let up = (right < n)
                .then(|| dist_1d(me, self.reference.row(sorted.order[right] as usize)[0]));
            match (down, up) {
                (Some(d), Some(u)) if d <= u => {
                    left -= 1;
                    emit(d, sorted.order[left] as usize);
                }
                (_, Some(u)) => {
                    emit(u, sorted.order[right] as usize);
                    right += 1;
                }
                (Some(d), None) => {
                    left -= 1;
                    emit(d, sorted.order[left] as usize);
                }
                (None, None) => unreachable!("k is clamped to the neighbour count"),
            }
        }
        (left, right)
    }
}

/// 1-D behaviour distance, written as the exact expression
/// [`behaviour_distance`] evaluates for one-element descriptors (a
/// one-term square sum under a square root), so the sorted path's
/// distances are bit-equal to the brute-force path's.
#[inline]
fn dist_1d(a: f64, b: f64) -> f64 {
    ((a - b) * (a - b)).sqrt()
}

/// The batch novelty-scoring engine: a [`NoveltyIndex`] plus a scoring
/// worker count — the runtime knob `EssNsConfig`/`RunSpec` surface.
/// Parses from strings (`sorted`, `brute`, `sorted:4`, …), like
/// `parworker::EvalBackend`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoveltyEngine {
    /// kNN strategy.
    pub index: NoveltyIndex,
    /// Scoring threads (1 = score in the master, the classic layout).
    pub workers: usize,
}

impl Default for NoveltyEngine {
    /// Indexed, master-side scoring: always at least as fast as brute
    /// force and bit-identical to it, so it is the default everywhere.
    fn default() -> Self {
        Self {
            index: NoveltyIndex::SortedScan,
            workers: 1,
        }
    }
}

impl NoveltyEngine {
    /// The pre-refactor reference configuration: exhaustive pairwise
    /// scoring in the master.
    pub fn brute_force() -> Self {
        Self {
            index: NoveltyIndex::ChunkedBruteForce,
            workers: 1,
        }
    }

    /// The indexed default ([`NoveltyIndex::SortedScan`], master-side).
    pub fn indexed() -> Self {
        Self::default()
    }

    /// Sets the scoring worker count.
    ///
    /// # Panics
    /// Panics when `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "novelty engine needs at least one worker");
        self.workers = workers;
        self
    }

    /// Report name (`"sorted-scan"`, `"brute-force:4"`, …).
    pub fn name(&self) -> String {
        self.to_string()
    }

    /// ρ(x) of reference rows `0..subjects` against the whole reference
    /// set, in subject order — Algorithm 1 lines 12–14 as one batch. The
    /// index is prepared once; subjects are then scored in contiguous
    /// chunks, fanned out over scoped workers when `workers > 1`.
    ///
    /// `result[i]` is bit-identical to
    /// `novelty_score(i, reference_rows, k)` for every strategy and
    /// worker count.
    ///
    /// # Panics
    /// Panics when `subjects > reference.len()` or `k == 0`.
    pub fn novelty_scores(
        &self,
        reference: &BehaviourMatrix,
        subjects: usize,
        k: usize,
    ) -> Vec<f64> {
        self.novelty_scores_prepared(&self.index.prepare(reference), subjects, k)
    }

    /// [`NoveltyEngine::novelty_scores`] over an already-prepared index —
    /// the entry point for callers that score several batches (ρ and
    /// local competition) against one generation's noveltySet without
    /// rebuilding the index each time.
    ///
    /// # Panics
    /// Panics when `subjects` exceeds the prepared reference's rows or
    /// `k == 0`.
    pub fn novelty_scores_prepared(
        &self,
        prepared: &PreparedIndex<'_>,
        subjects: usize,
        k: usize,
    ) -> Vec<f64> {
        assert!(
            subjects <= prepared.reference().len(),
            "subjects must be reference rows"
        );
        assert!(k > 0, "k must be positive");
        parworker::scoped_chunk_map_ranges(
            self.workers.max(1),
            subjects,
            self.chunk_size(subjects),
            |range| {
                let mut scratch = Vec::new();
                range
                    .map(|i| prepared.novelty_of_with(i, k, &mut scratch))
                    .collect()
            },
        )
    }

    /// Local-competition scores of reference rows `0..subjects`, batched
    /// like [`NoveltyEngine::novelty_scores`]; `result[i]` is
    /// bit-identical to `local_competition_score(i, rows, fitnesses, k)`.
    ///
    /// # Panics
    /// Panics when `subjects > reference.len()`, on a fitness-length
    /// mismatch, or `k == 0`.
    pub fn local_competition_scores(
        &self,
        reference: &BehaviourMatrix,
        fitnesses: &[f64],
        subjects: usize,
        k: usize,
    ) -> Vec<f64> {
        self.local_competition_scores_prepared(
            &self.index.prepare(reference),
            fitnesses,
            subjects,
            k,
        )
    }

    /// [`NoveltyEngine::local_competition_scores`] over an
    /// already-prepared index (see
    /// [`NoveltyEngine::novelty_scores_prepared`]).
    ///
    /// # Panics
    /// Panics when `subjects` exceeds the prepared reference's rows, on a
    /// fitness-length mismatch, or `k == 0`.
    pub fn local_competition_scores_prepared(
        &self,
        prepared: &PreparedIndex<'_>,
        fitnesses: &[f64],
        subjects: usize,
        k: usize,
    ) -> Vec<f64> {
        assert!(
            subjects <= prepared.reference().len(),
            "subjects must be reference rows"
        );
        assert_eq!(
            prepared.reference().len(),
            fitnesses.len(),
            "one fitness per behaviour"
        );
        assert!(k > 0, "k must be positive");
        parworker::scoped_chunk_map_ranges(
            self.workers.max(1),
            subjects,
            self.chunk_size(subjects),
            |range| {
                let mut scratch = Vec::new();
                range
                    .map(|i| prepared.local_competition_of_with(i, fitnesses, k, &mut scratch))
                    .collect()
            },
        )
    }

    /// Chunk granularity: roughly four chunks per worker so the
    /// self-scheduler can balance irregular subjects, floored so tiny
    /// batches do not pay fan-out overhead.
    fn chunk_size(&self, subjects: usize) -> usize {
        subjects.div_ceil(self.workers.max(1) * 4).clamp(16, 512)
    }
}

impl fmt::Display for NoveltyEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.workers > 1 {
            write!(f, "{}:{}", self.index, self.workers)
        } else {
            write!(f, "{}", self.index)
        }
    }
}

/// Error from parsing a [`NoveltyEngine`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNoveltyEngineError(String);

impl fmt::Display for ParseNoveltyEngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid novelty engine '{}' (expected sorted | brute, optionally :N workers)",
            self.0
        )
    }
}

impl std::error::Error for ParseNoveltyEngineError {}

impl FromStr for NoveltyEngine {
    type Err = ParseNoveltyEngineError;

    /// Parses `sorted` / `sorted-scan` / `indexed` and `brute` /
    /// `brute-force` / `chunked`, each with an optional `:N` worker
    /// suffix (e.g. `sorted:4`). The `Display` form round-trips.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let spec = s.trim();
        let (kind, workers) = match spec.split_once(':') {
            Some((kind, n)) => {
                let workers: usize = n
                    .trim()
                    .parse()
                    .map_err(|_| ParseNoveltyEngineError(s.into()))?;
                if workers == 0 {
                    return Err(ParseNoveltyEngineError(s.into()));
                }
                (kind, workers)
            }
            None => (spec, 1),
        };
        let index = match kind.trim().to_ascii_lowercase().as_str() {
            "sorted" | "sorted-scan" | "indexed" => NoveltyIndex::SortedScan,
            "brute" | "brute-force" | "chunked" => NoveltyIndex::ChunkedBruteForce,
            _ => return Err(ParseNoveltyEngineError(s.into())),
        };
        Ok(NoveltyEngine { index, workers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::novelty::{local_competition_score, novelty_score, novelty_score_external};

    fn matrix_1d(vals: &[f64]) -> BehaviourMatrix {
        let rows: Vec<[f64; 1]> = vals.iter().map(|&v| [v]).collect();
        BehaviourMatrix::from_rows(&rows)
    }

    #[test]
    fn sorted_scan_matches_reference_on_paper_example() {
        let m = matrix_1d(&[0.5, 0.4, 0.7, 0.9]);
        let prepared = NoveltyIndex::SortedScan.prepare(&m);
        assert!((prepared.novelty_of(0, 2) - 0.15).abs() < 1e-15);
        let rows = m.to_rows();
        for i in 0..4 {
            assert_eq!(prepared.novelty_of(i, 2), novelty_score(i, &rows, 2));
        }
    }

    #[test]
    fn brute_force_index_matches_reference_in_2d() {
        let m = BehaviourMatrix::from_rows(&[[0.1, 0.9], [0.2, 0.8], [0.9, 0.1], [0.5, 0.5]]);
        let prepared = NoveltyIndex::ChunkedBruteForce.prepare(&m);
        let rows = m.to_rows();
        for i in 0..4 {
            assert_eq!(prepared.novelty_of(i, 2), novelty_score(i, &rows, 2));
        }
    }

    #[test]
    fn sorted_scan_falls_back_to_brute_force_beyond_1d() {
        let m = BehaviourMatrix::from_rows(&[[0.1, 0.9], [0.2, 0.8], [0.9, 0.1]]);
        let prepared = NoveltyIndex::SortedScan.prepare(&m);
        let rows = m.to_rows();
        for i in 0..3 {
            assert_eq!(prepared.novelty_of(i, 1), novelty_score(i, &rows, 1));
        }
    }

    #[test]
    fn external_scores_match_reference() {
        let m = matrix_1d(&[0.0, 0.25, 0.5, 1.0]);
        let rows = m.to_rows();
        for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
            let prepared = index.prepare(&m);
            for q in [-0.5, 0.0, 0.3, 0.5, 2.0] {
                assert_eq!(
                    prepared.novelty_of_external(&[q], 2),
                    novelty_score_external(&[q], &rows, 2),
                    "{index} query {q}"
                );
            }
        }
        // Empty reference: sentinel.
        let empty = BehaviourMatrix::new();
        let prepared = NoveltyIndex::SortedScan.prepare(&empty);
        assert_eq!(prepared.novelty_of_external(&[0.3], 3), f64::MAX);
    }

    #[test]
    fn local_competition_matches_reference_under_heavy_ties() {
        // Duplicated behaviour values force distance ties at every k
        // boundary — the case where tie order decides the niche.
        let m = matrix_1d(&[0.5, 0.5, 0.5, 0.4, 0.6, 0.5, 0.4]);
        let fits = [0.9, 0.1, 0.5, 0.7, 0.2, 0.8, 0.3];
        let rows = m.to_rows();
        for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
            let prepared = index.prepare(&m);
            for k in 1..=7 {
                for subject in 0..rows.len() {
                    assert_eq!(
                        prepared.local_competition_of(subject, &fits, k),
                        local_competition_score(subject, &rows, &fits, k),
                        "{index} subject {subject} k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn engine_batches_match_per_subject_scores_for_any_worker_count() {
        let m = matrix_1d(&[0.31, 0.7, 0.7, 0.12, 0.94, 0.7, 0.02, 0.55]);
        let fits: Vec<f64> = (0..8).map(|i| (i as f64) / 7.0).collect();
        let rows = m.to_rows();
        for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
            for workers in [1, 2, 4] {
                let engine = NoveltyEngine { index, workers };
                let rho = engine.novelty_scores(&m, 8, 3);
                let lc = engine.local_competition_scores(&m, &fits, 8, 3);
                for i in 0..8 {
                    assert_eq!(rho[i], novelty_score(i, &rows, 3), "{engine} rho {i}");
                    assert_eq!(
                        lc[i],
                        local_competition_score(i, &rows, &fits, 3),
                        "{engine} lc {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_row_reference_keeps_sentinels() {
        let m = matrix_1d(&[0.3]);
        for index in [NoveltyIndex::SortedScan, NoveltyIndex::ChunkedBruteForce] {
            let prepared = index.prepare(&m);
            assert_eq!(prepared.novelty_of(0, 3), f64::MAX);
            assert_eq!(prepared.local_competition_of(0, &[0.5], 3), 1.0);
        }
    }

    #[test]
    fn engine_specs_parse_and_round_trip() {
        assert_eq!(
            "sorted".parse::<NoveltyEngine>().unwrap(),
            NoveltyEngine::indexed()
        );
        assert_eq!(
            "brute".parse::<NoveltyEngine>().unwrap(),
            NoveltyEngine::brute_force()
        );
        assert_eq!(
            "SORTED-SCAN:4".parse::<NoveltyEngine>().unwrap(),
            NoveltyEngine::indexed().with_workers(4)
        );
        assert_eq!(
            "chunked:2".parse::<NoveltyEngine>().unwrap(),
            NoveltyEngine::brute_force().with_workers(2)
        );
        for engine in [
            NoveltyEngine::indexed(),
            NoveltyEngine::brute_force(),
            NoveltyEngine::indexed().with_workers(8),
        ] {
            assert_eq!(engine.name().parse::<NoveltyEngine>().unwrap(), engine);
        }
        assert!("kdtree".parse::<NoveltyEngine>().is_err());
        assert!("sorted:0".parse::<NoveltyEngine>().is_err());
        assert!("sorted:x".parse::<NoveltyEngine>().is_err());
    }

    #[test]
    fn brute_force_tolerates_nan_like_the_reference() {
        // NaN descriptors are out of the engines' contract, but the brute
        // path must still mirror the reference's total_cmp semantics.
        let m = matrix_1d(&[f64::NAN, 1.0, 2.0, 5.0]);
        let rows = m.to_rows();
        let prepared = NoveltyIndex::ChunkedBruteForce.prepare(&m);
        for subject in 0..4 {
            let got = prepared.novelty_of(subject, 2);
            let expected = novelty_score(subject, &rows, 2);
            assert!(got == expected || (got.is_nan() && expected.is_nan()));
        }
    }

    #[test]
    #[should_panic(expected = "finite behaviour values")]
    fn sorted_scan_rejects_nan_instead_of_diverging() {
        let m = matrix_1d(&[f64::NAN, 1.0, 2.0, 5.0]);
        let _ = NoveltyIndex::SortedScan.prepare(&m);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = NoveltyEngine::indexed().with_workers(0);
    }
}
