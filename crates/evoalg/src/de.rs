//! A step-wise Differential Evolution engine (`rand/1/bin`).
//!
//! This is the per-island metaheuristic of ESSIM-DE (paper §II-B). The
//! engine exposes one generation per [`DeEngine::step`] so the framework
//! layer can interleave migration and the published tuning operators
//! (population restart \[21\] and IQR-based dynamic tuning \[22\]) between
//! generations.

use crate::ga::{iqr, GenStats};
use crate::individual::{Individual, Population};
use crate::operators::{de_binomial_crossover, de_rand_1_donor};
use crate::BatchEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Differential Evolution parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeConfig {
    /// Population size (≥ 4 for `rand/1`).
    pub population_size: usize,
    /// Differential weight `F` ∈ (0, 2].
    pub differential_weight: f64,
    /// Crossover probability `CR`.
    pub crossover_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeConfig {
    fn default() -> Self {
        Self {
            population_size: 50,
            differential_weight: 0.8,
            crossover_rate: 0.9,
            seed: 0,
        }
    }
}

/// The step-wise DE engine.
#[derive(Debug)]
pub struct DeEngine {
    config: DeConfig,
    dims: usize,
    population: Population,
    rng: StdRng,
    generation: u32,
    evaluations: u64,
}

impl DeEngine {
    /// Creates an engine with a random initial population; call
    /// [`DeEngine::evaluate_initial`] before the first [`DeEngine::step`].
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(dims: usize, config: DeConfig) -> Self {
        assert!(
            config.population_size >= 4,
            "DE rand/1 needs at least 4 individuals"
        );
        assert!(
            config.differential_weight > 0.0 && config.differential_weight <= 2.0,
            "differential weight must be in (0, 2]"
        );
        assert!(
            (0.0..=1.0).contains(&config.crossover_rate),
            "CR is a probability"
        );
        assert!(dims >= 1, "genome needs at least one gene");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = Population::random(config.population_size, dims, &mut rng);
        Self {
            config,
            dims,
            population,
            rng,
            generation: 0,
            evaluations: 0,
        }
    }

    /// Evaluates the current population (initially, and after restarts or
    /// migrations that introduced unevaluated members).
    pub fn evaluate_initial<E: BatchEvaluator>(&mut self, evaluator: &mut E) -> GenStats {
        let fitness = evaluator.evaluate(&self.population.genomes());
        self.evaluations += fitness.len() as u64;
        self.population.assign_fitness(&fitness);
        self.stats()
    }

    /// One DE generation: per target, build a `rand/1` donor, binomial
    /// crossover into a trial, evaluate all trials, and greedily replace
    /// each target whose trial is at least as fit.
    pub fn step<E: BatchEvaluator>(&mut self, evaluator: &mut E) -> GenStats {
        assert!(
            self.population
                .members()
                .iter()
                .all(Individual::is_evaluated),
            "call evaluate_initial before step"
        );
        let genomes = self.population.genomes();
        let mut trials = Vec::with_capacity(genomes.len());
        for target in 0..genomes.len() {
            let donor = de_rand_1_donor(
                &genomes,
                target,
                self.config.differential_weight,
                &mut self.rng,
            );
            trials.push(de_binomial_crossover(
                &genomes[target],
                &donor,
                self.config.crossover_rate,
                &mut self.rng,
            ));
        }
        let trial_fitness = evaluator.evaluate(&trials);
        self.evaluations += trial_fitness.len() as u64;
        for (i, (trial, tf)) in trials.into_iter().zip(trial_fitness).enumerate() {
            assert!(tf.is_finite(), "fitness must be finite");
            let m = &mut self.population.members_mut()[i];
            // Greedy selection with >=: drifting across plateaus is what
            // lets DE escape flat fitness regions (important for J = 0
            // early fire-prediction populations).
            if tf >= m.fitness {
                m.genes = trial;
                m.fitness = tf;
            }
        }
        self.generation += 1;
        self.stats()
    }

    /// Reinitialises the `frac` worst members uniformly at random — the
    /// ESSIM-DE population restart operator (\[21\]). Restarted members are
    /// unevaluated; call [`DeEngine::evaluate_initial`] before stepping.
    pub fn restart_worst(&mut self, frac: f64) {
        assert!(
            (0.0..=1.0).contains(&frac),
            "restart fraction is a probability"
        );
        let n = ((self.population.len() as f64) * frac).round() as usize;
        if n == 0 {
            return;
        }
        self.population.sort_by_fitness_desc();
        let len = self.population.len();
        let dims = self.dims;
        for m in &mut self.population.members_mut()[len - n..] {
            m.genes = (0..dims).map(|_| self.rng.random::<f64>()).collect();
            m.fitness = f64::NAN;
        }
    }

    /// Current population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Mutable population access (migration).
    pub fn population_mut(&mut self) -> &mut Population {
        &mut self.population
    }

    /// Generation counter.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Total evaluations so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Statistics of the current population.
    pub fn stats(&self) -> GenStats {
        let f = self.population.fitness_values();
        let mean = if f.is_empty() {
            0.0
        } else {
            f.iter().sum::<f64>() / f.len() as f64
        };
        GenStats {
            generation: self.generation,
            best_fitness: f.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean_fitness: mean,
            fitness_iqr: iqr(&f),
            evaluations: self.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::sphere;

    fn sphere_eval() -> impl FnMut(&[Vec<f64>]) -> Vec<f64> {
        |gs: &[Vec<f64>]| gs.iter().map(|g| sphere(g)).collect()
    }

    #[test]
    fn de_converges_on_sphere() {
        let mut engine = DeEngine::new(
            6,
            DeConfig {
                seed: 77,
                ..DeConfig::default()
            },
        );
        let mut eval = sphere_eval();
        engine.evaluate_initial(&mut eval);
        let mut last = engine.stats();
        for _ in 0..60 {
            last = engine.step(&mut eval);
        }
        assert!(
            last.best_fitness > 0.98,
            "DE should solve sphere, got {}",
            last.best_fitness
        );
    }

    #[test]
    fn greedy_selection_never_regresses_any_member() {
        let mut engine = DeEngine::new(
            4,
            DeConfig {
                seed: 3,
                ..DeConfig::default()
            },
        );
        let mut eval = sphere_eval();
        engine.evaluate_initial(&mut eval);
        let before: Vec<f64> = engine.population().fitness_values();
        engine.step(&mut eval);
        let after: Vec<f64> = engine.population().fitness_values();
        for (b, a) in before.iter().zip(&after) {
            assert!(a >= b, "member regressed: {b} → {a}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut e = DeEngine::new(
                4,
                DeConfig {
                    seed,
                    ..DeConfig::default()
                },
            );
            let mut eval = sphere_eval();
            e.evaluate_initial(&mut eval);
            for _ in 0..10 {
                e.step(&mut eval);
            }
            e.population().genomes()
        };
        assert_eq!(run(8), run(8));
        assert_ne!(run(8), run(9));
    }

    #[test]
    fn evaluations_accumulate() {
        let cfg = DeConfig {
            population_size: 12,
            seed: 1,
            ..DeConfig::default()
        };
        let mut e = DeEngine::new(3, cfg);
        let mut eval = sphere_eval();
        e.evaluate_initial(&mut eval);
        e.step(&mut eval);
        e.step(&mut eval);
        assert_eq!(e.evaluations(), 36);
    }

    #[test]
    fn restart_marks_worst_unevaluated() {
        let mut e = DeEngine::new(
            3,
            DeConfig {
                seed: 4,
                ..DeConfig::default()
            },
        );
        let mut eval = sphere_eval();
        e.evaluate_initial(&mut eval);
        e.restart_worst(0.25);
        let fresh = e
            .population()
            .members()
            .iter()
            .filter(|m| !m.is_evaluated())
            .count();
        assert_eq!(fresh, 13); // round(50 × 0.25)
        e.evaluate_initial(&mut eval);
        e.step(&mut eval);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_population_rejected() {
        let _ = DeEngine::new(
            3,
            DeConfig {
                population_size: 3,
                ..DeConfig::default()
            },
        );
    }
}
