//! `bestSet` — the bounded memory of the fittest solutions found during the
//! whole search (Algorithm 1, lines 3 and 17).
//!
//! The paper's central design point: because Novelty Search never
//! converges, the *output* of the optimisation stage is not the final
//! population but "a collection of high fitness individuals which were
//! accumulated during the search" (§III-A). `BestSet` is that collection:
//! a fixed-capacity set holding the top-fitness genomes seen so far, kept
//! sorted by descending fitness.

/// A genome with the fitness it was recorded at.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredGenome {
    /// The genome.
    pub genes: Vec<f64>,
    /// Its fitness.
    pub fitness: f64,
}

/// Bounded, fitness-sorted memory of the best solutions ever seen.
#[derive(Debug, Clone)]
pub struct BestSet {
    capacity: usize,
    entries: Vec<ScoredGenome>,
}

impl BestSet {
    /// An empty best-set with the given capacity ("for the first version,
    /// we are considering a fixed size archive and solution set", §III-B).
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "bestSet capacity must be positive");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stored genomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries in descending fitness order.
    pub fn entries(&self) -> &[ScoredGenome] {
        &self.entries
    }

    /// Highest recorded fitness — Algorithm 1's `getMaxFitness(bestSet)`
    /// (line 18). Zero when empty, matching the algorithm's
    /// `maxFitness ← 0` initialisation (line 5).
    pub fn max_fitness(&self) -> f64 {
        self.entries.first().map_or(0.0, |e| e.fitness)
    }

    /// Lowest fitness still retained (`None` when empty).
    pub fn min_fitness(&self) -> Option<f64> {
        self.entries.last().map(|e| e.fitness)
    }

    /// Offers one genome — Algorithm 1's `updateBest` applied to a single
    /// offspring. Returns `true` when it was retained.
    ///
    /// Duplicates (identical gene vectors) are rejected so the set cannot
    /// fill up with copies of one scenario — a set of `n` identical
    /// scenarios would defeat the uncertainty-reduction purpose of the
    /// Statistical Stage.
    ///
    /// # Panics
    /// Panics on non-finite fitness.
    pub fn offer(&mut self, genes: &[f64], fitness: f64) -> bool {
        assert!(fitness.is_finite(), "fitness must be finite");
        if self.entries.iter().any(|e| e.genes == genes) {
            return false;
        }
        if self.entries.len() == self.capacity {
            match self.min_fitness() {
                Some(min) if fitness > min => {
                    self.entries.pop();
                }
                _ => return false,
            }
        }
        // Insert keeping descending order (stable: later equal-fitness
        // entries go after earlier ones).
        let pos = self.entries.partition_point(|e| e.fitness >= fitness);
        self.entries.insert(
            pos,
            ScoredGenome {
                genes: genes.to_vec(),
                fitness,
            },
        );
        true
    }

    /// Offers a whole batch (Algorithm 1 line 17:
    /// `bestSet ← updateBest(bestSet, offspring)`), returning how many were
    /// retained.
    pub fn update<'a>(&mut self, batch: impl IntoIterator<Item = (&'a [f64], f64)>) -> usize {
        batch.into_iter().filter(|&(g, f)| self.offer(g, f)).count()
    }

    /// The stored genomes, cloned (the scenario set handed to the
    /// Statistical Stage).
    pub fn genomes(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|e| e.genes.clone()).collect()
    }

    /// The stored fitness values, descending.
    pub fn fitness_values(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.fitness).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_of_a_stream() {
        let mut bs = BestSet::new(3);
        let stream = [0.1, 0.9, 0.3, 0.8, 0.2, 0.95, 0.01];
        for (i, f) in stream.into_iter().enumerate() {
            bs.offer(&[i as f64], f);
        }
        assert_eq!(bs.fitness_values(), vec![0.95, 0.9, 0.8]);
    }

    #[test]
    fn sorted_descending_invariant() {
        let mut bs = BestSet::new(5);
        for (i, f) in [0.5, 0.5, 0.7, 0.1, 0.6].into_iter().enumerate() {
            bs.offer(&[i as f64], f);
        }
        let f = bs.fitness_values();
        assert!(f.windows(2).all(|w| w[0] >= w[1]), "not sorted: {f:?}");
    }

    #[test]
    fn max_fitness_zero_when_empty() {
        let bs = BestSet::new(2);
        assert_eq!(bs.max_fitness(), 0.0);
        assert_eq!(bs.min_fitness(), None);
    }

    #[test]
    fn duplicates_rejected() {
        let mut bs = BestSet::new(3);
        assert!(bs.offer(&[0.5, 0.5], 0.9));
        assert!(!bs.offer(&[0.5, 0.5], 0.9));
        assert!(!bs.offer(&[0.5, 0.5], 0.99)); // same genes, even if refit
        assert_eq!(bs.len(), 1);
    }

    #[test]
    fn full_set_rejects_non_improving() {
        let mut bs = BestSet::new(2);
        bs.offer(&[0.0], 0.5);
        bs.offer(&[1.0], 0.6);
        assert!(!bs.offer(&[2.0], 0.5)); // equal to min: not better
        assert!(bs.offer(&[3.0], 0.55));
        assert_eq!(bs.fitness_values(), vec![0.6, 0.55]);
    }

    #[test]
    fn update_batch_counts_retained() {
        let mut bs = BestSet::new(2);
        let g1 = [0.1];
        let g2 = [0.2];
        let g3 = [0.3];
        let n = bs.update([(&g1[..], 0.3), (&g2[..], 0.7), (&g3[..], 0.1)]);
        assert_eq!(n, 2); // 0.3 and 0.7 enter; then 0.1 is rejected (full, worse)
        assert_eq!(bs.max_fitness(), 0.7);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut bs = BestSet::new(4);
        for i in 0..100 {
            bs.offer(&[i as f64], (i % 17) as f64 / 17.0);
            assert!(bs.len() <= 4);
        }
    }

    #[test]
    fn best_is_monotone_over_time() {
        let mut bs = BestSet::new(3);
        let mut prev = 0.0;
        for i in 0..50 {
            bs.offer(&[i as f64], ((i * 7) % 13) as f64 / 13.0);
            assert!(bs.max_fitness() >= prev, "max fitness regressed");
            prev = bs.max_fitness();
        }
    }
}
