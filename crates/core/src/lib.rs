//! `ess-ns` — the paper's contribution: the Evolutionary Statistical
//! System with Novelty Search (Fig. 3) and its Novelty-based Genetic
//! Algorithm with Multiple Solutions (Algorithm 1).
//!
//! The core idea (paper §III): replace the fitness-guided metaheuristic of
//! the Optimization Stage with a **novelty-driven** genetic algorithm. The
//! search is steered exclusively by the novelty score ρ(x) of Eq. (1) —
//! with the behaviour distance of Eq. (2), the fitness difference — so the
//! population *never converges*; meanwhile a bounded [`evoalg::BestSet`]
//! records the highest-fitness scenarios discovered anywhere along the
//! way, and that set (not the final population) feeds the Statistical
//! Stage. Because the recorded scenarios come from entirely different
//! regions of the search space, the aggregated ignition-probability matrix
//! captures more of the residual uncertainty.
//!
//! * [`algorithm`] — [`algorithm::NoveltyGa`], a faithful step-wise
//!   implementation of Algorithm 1 with its two stopping conditions, the
//!   novelty-only archive replacement and the novelty-elitist population
//!   replacement;
//! * [`hybrid`] — the §IV future-work variants: weighted
//!   fitness/novelty scoring (E7) and ε-inclusion of novel/random members
//!   in the result set (E9), plus genotypic behaviour descriptors for the
//!   behaviour-space ablation;
//! * [`system`] — [`system::EssNs`], the [`ess::StepOptimizer`] wiring of
//!   Algorithm 1 into the Fig. 3 prediction pipeline.

pub mod algorithm;
pub mod hybrid;
pub mod system;

pub use algorithm::{NoveltyGa, NoveltyGaConfig, NsGenStats, StopReason};
pub use evoalg::{NoveltyEngine, NoveltyIndex, ParseNoveltyEngineError};
pub use hybrid::{BehaviourSpace, InclusionPolicy, ScoringPolicy};
pub use system::{EssNs, EssNsConfig};
