//! ESS-NS — the Fig. 3 system: Algorithm 1 plugged into the ESS prediction
//! pipeline as its Optimization Stage.
//!
//! The two highlighted differences from ESS (paper §III-A) live here:
//! the `PEA` block runs the **NS-based GA** instead of the fitness GA, and
//! the stage's output is **`bestSet`** — "a collection of high fitness
//! individuals which were accumulated during the search" — rather than the
//! final evolved population. The Master/Worker split is one-level (no
//! islands), with the workers doing simulation + fitness (Eq. (3)) and the
//! master doing the novelty bookkeeping (Eq. (1)).

use crate::algorithm::{NoveltyGa, NoveltyGaConfig};
use crate::hybrid::InclusionPolicy;
use ess::error::ServiceError;
use ess::fitness::{EvalBackend, ScenarioEvaluator};
use ess::pipeline::{OptimizeOutcome, PredictionPipeline, StepOptimizer};
use firelib::{ScenarioSpace, GENE_COUNT};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the ESS-NS system.
#[derive(Debug, Clone, PartialEq)]
pub struct EssNsConfig {
    /// Algorithm 1 parameters.
    pub algorithm: NoveltyGaConfig,
    /// Result-set composition (§IV variants; `BestOnly` is the paper's
    /// baseline).
    pub inclusion: InclusionPolicy,
    /// Execution backend for scenario evaluation (the `PEA F` block of
    /// Fig. 3): Serial, the Master/Worker farm, or work stealing. Results
    /// are backend-independent; only wall time changes.
    pub backend: EvalBackend,
    /// Named workload/case to run on (resolved through [`ess::cases`]: a
    /// hand-built library case or any workload of the corpus). `None`
    /// means the caller supplies its own [`ess::cases::BurnCase`].
    pub workload: Option<String>,
}

impl Default for EssNsConfig {
    fn default() -> Self {
        Self {
            algorithm: NoveltyGaConfig::default(),
            inclusion: InclusionPolicy::BestOnly,
            backend: EvalBackend::Serial,
            workload: None,
        }
    }
}

impl EssNsConfig {
    /// Sets the novelty-scoring engine (kNN index strategy × scoring
    /// workers) — the master-side counterpart of [`EssNsConfig::backend`].
    /// Scenario evaluation parallelises the workers' fire simulations;
    /// this knob parallelises (and indexes) the master's ρ(x) batches.
    /// The engine lives on [`NoveltyGaConfig::novelty`]; this builder just
    /// surfaces it at the system level. Results are engine-independent
    /// (bit-identical scores); only wall time changes.
    pub fn with_novelty(mut self, engine: evoalg::NoveltyEngine) -> Self {
        self.algorithm.novelty = engine;
        self
    }

    /// The configured novelty-scoring engine.
    pub fn novelty_engine(&self) -> evoalg::NoveltyEngine {
        self.algorithm.novelty
    }
}

/// The ESS-NS optimizer (drop-in [`StepOptimizer`], like the baselines).
#[derive(Debug, Clone)]
pub struct EssNs {
    config: EssNsConfig,
}

impl EssNs {
    /// Builds the system with `config`.
    pub fn new(config: EssNsConfig) -> Self {
        Self { config }
    }

    /// Paper-baseline configuration (pure novelty, bestSet only).
    pub fn baseline() -> Self {
        Self::new(EssNsConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &EssNsConfig {
        &self.config
    }

    /// Builds the Fig. 3 prediction pipeline on this system's configured
    /// evaluation backend — the one-stop way to run ESS-NS end to end:
    ///
    /// ```no_run
    /// use ess_ns::{EssNs, EssNsConfig};
    /// use ess::fitness::EvalBackend;
    /// use ess::cases;
    ///
    /// let system = EssNs::new(EssNsConfig {
    ///     backend: EvalBackend::WorkerPool(4),
    ///     ..EssNsConfig::default()
    /// });
    /// let mut optimizer = system.clone();
    /// let case = cases::grass_uniform();
    /// let report = system.pipeline(7).run(&case, &mut optimizer);
    /// ```
    pub fn pipeline(&self, base_seed: u64) -> PredictionPipeline {
        PredictionPipeline::new(self.config.backend, base_seed)
    }

    /// Runs the full calibration → prediction pipeline on the workload the
    /// config names (`EssNsConfig::workload`), end to end: the named case
    /// is resolved through `ess::cases::by_name` (hand-built library or
    /// workload corpus), its reference fire is generated, and every
    /// prediction step runs on the configured backend.
    ///
    /// # Errors
    /// [`ServiceError::BadSpec`] when the config names no workload,
    /// [`ServiceError::UnknownCase`] when the name resolves to nothing.
    pub fn run(&self, base_seed: u64) -> Result<ess::pipeline::RunReport, ServiceError> {
        let name = self.config.workload.as_deref().ok_or_else(|| {
            ServiceError::BadSpec("EssNsConfig::workload names no case to run".into())
        })?;
        let case =
            ess::cases::by_name(name).ok_or_else(|| ServiceError::UnknownCase(name.into()))?;
        let mut optimizer = self.clone();
        Ok(self.pipeline(base_seed).run(&case, &mut optimizer))
    }
}

impl Default for EssNs {
    fn default() -> Self {
        Self::baseline()
    }
}

impl StepOptimizer for EssNs {
    fn name(&self) -> &'static str {
        "ESS-NS"
    }

    fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, seed: u64) -> OptimizeOutcome {
        let algo_cfg = NoveltyGaConfig {
            seed,
            ..self.config.algorithm
        };
        let engine = NoveltyGa::new(GENE_COUNT, algo_cfg);
        let outcome = engine.run(evaluator);

        // Line 21: the result set is bestSet …
        let mut result_set = outcome.best_set.genomes();
        // … optionally extended with novel/random scenarios (§IV).
        let extra = self.config.inclusion.extra_count(result_set.len().max(1));
        if extra > 0 {
            match self.config.inclusion {
                InclusionPolicy::BestOnly => {}
                InclusionPolicy::WithNovel { .. } => {
                    // The most novel archive entries not already present.
                    let mut entries: Vec<_> = outcome.archive.entries().to_vec();
                    entries.sort_by(|a, b| b.novelty.total_cmp(&a.novelty));
                    for e in entries {
                        if result_set.len() >= outcome.best_set.capacity() + extra {
                            break;
                        }
                        if !result_set.contains(&e.genes) {
                            result_set.push(e.genes);
                        }
                    }
                }
                InclusionPolicy::WithRandom { .. } => {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0x5851F42D4C957F2D);
                    for _ in 0..extra {
                        result_set.push(ScenarioSpace.sample_genes(&mut rng).to_vec());
                    }
                }
            }
        }

        OptimizeOutcome {
            result_set,
            best_fitness: outcome.best_set.max_fitness(),
            generations: outcome.generations,
            evaluations: outcome.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ess::cases::tiny_test_case;
    use ess::fitness::{EvalBackend, StepContext};
    use std::sync::Arc;

    fn step_evaluator() -> ScenarioEvaluator {
        let case = tiny_test_case();
        let ctx = Arc::new(StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[0].clone(),
            case.fire_lines[1].clone(),
            case.times[0],
            case.times[1],
        ));
        ScenarioEvaluator::new(ctx, EvalBackend::Serial)
    }

    fn small_algo() -> NoveltyGaConfig {
        NoveltyGaConfig {
            population_size: 16,
            offspring: 16,
            max_generations: 8,
            best_set_capacity: 10,
            ..NoveltyGaConfig::default()
        }
    }

    #[test]
    fn baseline_returns_best_set_genomes() {
        let mut essns = EssNs::new(EssNsConfig {
            algorithm: small_algo(),
            inclusion: InclusionPolicy::BestOnly,
            backend: EvalBackend::Serial,
            ..EssNsConfig::default()
        });
        let mut eval = step_evaluator();
        let out = essns.optimize(&mut eval, 3);
        assert!(!out.result_set.is_empty());
        assert!(out.result_set.len() <= 10);
        assert!(out.best_fitness > 0.0);
        assert_eq!(out.evaluations, eval.evaluation_count());
    }

    #[test]
    fn novel_inclusion_extends_result_set() {
        let mut base = EssNs::new(EssNsConfig {
            algorithm: small_algo(),
            inclusion: InclusionPolicy::BestOnly,
            backend: EvalBackend::Serial,
            ..EssNsConfig::default()
        });
        let mut with_novel = EssNs::new(EssNsConfig {
            algorithm: small_algo(),
            inclusion: InclusionPolicy::WithNovel { fraction: 0.3 },
            backend: EvalBackend::Serial,
            ..EssNsConfig::default()
        });
        let mut e1 = step_evaluator();
        let mut e2 = step_evaluator();
        let plain = base.optimize(&mut e1, 5);
        let extended = with_novel.optimize(&mut e2, 5);
        assert!(
            extended.result_set.len() > plain.result_set.len(),
            "novel inclusion should extend the set ({} vs {})",
            extended.result_set.len(),
            plain.result_set.len()
        );
    }

    #[test]
    fn random_inclusion_adds_valid_genomes() {
        let mut essns = EssNs::new(EssNsConfig {
            algorithm: small_algo(),
            inclusion: InclusionPolicy::WithRandom { fraction: 0.5 },
            backend: EvalBackend::Serial,
            ..EssNsConfig::default()
        });
        let mut eval = step_evaluator();
        let out = essns.optimize(&mut eval, 7);
        for g in &out.result_set {
            assert_eq!(g.len(), GENE_COUNT);
            assert!(g.iter().all(|v| (0.0..=1.0).contains(v)));
        }
    }

    #[test]
    fn result_set_is_more_diverse_than_ess_population() {
        // The paper's hypothesis at the unit level: the set ESS-NS feeds to
        // the Statistical Stage is genotypically more diverse than the
        // converged final population of the fitness GA baseline.
        use ess::ess_classic::{EssClassic, EssConfig};
        let mut essns = EssNs::new(EssNsConfig {
            algorithm: NoveltyGaConfig {
                max_generations: 12,
                ..small_algo()
            },
            inclusion: InclusionPolicy::BestOnly,
            backend: EvalBackend::Serial,
            ..EssNsConfig::default()
        });
        let mut ess = EssClassic::new(EssConfig {
            population_size: 16,
            offspring: 16,
            max_generations: 12,
            fitness_threshold: 2.0,
            ..EssConfig::default()
        });
        let mut e1 = step_evaluator();
        let mut e2 = step_evaluator();
        let ns_out = essns.optimize(&mut e1, 9);
        let ess_out = ess.optimize(&mut e2, 9);
        let ns_div = evoalg::diversity::mean_pairwise_distance(&ns_out.result_set);
        let ess_div = evoalg::diversity::mean_pairwise_distance(&ess_out.result_set);
        assert!(
            ns_div > ess_div,
            "ESS-NS result set should be more diverse (NS {ns_div} vs ESS {ess_div})"
        );
    }

    #[test]
    fn named_workload_runs_end_to_end() {
        let system = EssNs::new(EssNsConfig {
            algorithm: NoveltyGaConfig {
                population_size: 8,
                offspring: 8,
                max_generations: 2,
                best_set_capacity: 6,
                ..NoveltyGaConfig::default()
            },
            workload: Some("meadow_small".to_string()),
            ..EssNsConfig::default()
        });
        let report = system.run(3).expect("corpus workload must resolve");
        assert_eq!(report.case, "meadow_small");
        assert_eq!(report.system, "ESS-NS");
        assert!(report.total_evaluations() > 0);
        // Unknown names and unset workloads produce typed one-line errors
        // instead of a silent skip.
        let unknown = EssNs::new(EssNsConfig {
            workload: Some("no_such_workload".to_string()),
            ..EssNsConfig::default()
        })
        .run(1);
        assert!(matches!(
            unknown,
            Err(ServiceError::UnknownCase(ref name)) if name == "no_such_workload"
        ));
        assert!(matches!(
            EssNs::baseline().run(1),
            Err(ServiceError::BadSpec(_))
        ));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut essns = EssNs::new(EssNsConfig {
                algorithm: small_algo(),
                inclusion: InclusionPolicy::BestOnly,
                backend: EvalBackend::Serial,
                ..EssNsConfig::default()
            });
            let mut eval = step_evaluator();
            essns.optimize(&mut eval, seed).result_set
        };
        assert_eq!(run(11), run(11));
    }
}
