//! The §IV future-work variants, implemented as policies plugged into
//! [`crate::NoveltyGa`].
//!
//! "We may also explore possible variants of the algorithm that build a
//! solution set not only according to fitness values but also by some
//! criterion, like the addition of a percentage of novel or random
//! solutions" and "the implementation of … hybridization with
//! fitness-based strategies" (§IV). Both are reproduced here so the
//! ablation experiments (E7, E9) can quantify them.

/// How the search score that drives selection and replacement is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringPolicy {
    /// Pure novelty — the paper's Algorithm 1 ("an optimization guided
    /// exclusively by the novelty criterion", §III-B).
    PureNovelty,
    /// Weighted blend `w·novelty + (1−w)·fitness` (Cuccu & Gomez \[31\]).
    /// `w = 1` degenerates to [`ScoringPolicy::PureNovelty`]; `w = 0` to a
    /// fitness GA that still maintains NS bookkeeping.
    Weighted {
        /// Novelty weight `w ∈ [0, 1]`.
        novelty_weight: f64,
    },
    /// Novelty Search with Local Competition (Lehman & Stanley \[26\],
    /// cited in §II-C): `w·novelty + (1−w)·local_competition`, where the
    /// local-competition term is the fraction of behaviour-space
    /// neighbours the individual out-fits. Rewards being *better than
    /// your niche* instead of globally fit — the quality-diversity end of
    /// the paper's hybridisation spectrum.
    NoveltyLocalCompetition {
        /// Novelty weight `w ∈ [0, 1]` (0.5 in \[26\]).
        novelty_weight: f64,
    },
}

impl ScoringPolicy {
    /// `true` when the policy needs a local-competition term: the engine
    /// then computes it per individual and calls
    /// [`ScoringPolicy::score_with_lc`].
    pub fn uses_local_competition(&self) -> bool {
        matches!(self, ScoringPolicy::NoveltyLocalCompetition { .. })
    }

    /// Combines a fitness and a novelty value into the search score.
    /// Novelty is clamped into `[0, 1]` first: with the paper's
    /// fitness-difference behaviour it already lives there, and the clamp
    /// keeps the blend meaningful for other behaviour spaces (an archive
    /// seeded with `f64::MAX` sentinel novelty must not drown fitness).
    ///
    /// For [`ScoringPolicy::NoveltyLocalCompetition`] this is the
    /// `lc = 0` projection; use [`ScoringPolicy::score_with_lc`] when the
    /// term is available.
    pub fn score(&self, fitness: f64, novelty: f64) -> f64 {
        self.score_with_lc(fitness, novelty, 0.0)
    }

    /// Full scoring including the local-competition term (ignored by the
    /// non-NSLC policies).
    pub fn score_with_lc(&self, fitness: f64, novelty: f64, local_competition: f64) -> f64 {
        let n = novelty.clamp(0.0, 1.0);
        match *self {
            ScoringPolicy::PureNovelty => n,
            ScoringPolicy::Weighted { novelty_weight } => {
                assert!(
                    (0.0..=1.0).contains(&novelty_weight),
                    "novelty weight is a proportion"
                );
                novelty_weight * n + (1.0 - novelty_weight) * fitness
            }
            ScoringPolicy::NoveltyLocalCompetition { novelty_weight } => {
                assert!(
                    (0.0..=1.0).contains(&novelty_weight),
                    "novelty weight is a proportion"
                );
                assert!(
                    (0.0..=1.0).contains(&local_competition),
                    "local competition is a fraction"
                );
                novelty_weight * n + (1.0 - novelty_weight) * local_competition
            }
        }
    }
}

/// What behaviour descriptor characterises a solution (the `dist` space of
/// Eq. (1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BehaviourSpace {
    /// The paper's Eq. (2): behaviour = the fitness value, distance = the
    /// (absolute) fitness difference.
    Fitness,
    /// Genotypic behaviour: the gene vector itself, normalised Euclidean
    /// distance — the ablation testing whether behaviour-space choice
    /// matters on this problem.
    Genotype,
}

impl BehaviourSpace {
    /// Builds the behaviour descriptor of an individual.
    pub fn describe(&self, genes: &[f64], fitness: f64) -> Vec<f64> {
        match self {
            BehaviourSpace::Fitness => vec![fitness],
            // Normalise by √dim so distances stay in [0, 1], commensurate
            // with the fitness space.
            BehaviourSpace::Genotype => {
                let norm = (genes.len() as f64).sqrt();
                genes.iter().map(|&g| g / norm).collect()
            }
        }
    }

    /// Writes the descriptor straight into a flat
    /// [`evoalg::BehaviourMatrix`] row — the allocation-free path the
    /// engine uses to build each generation's noveltySet. Values are
    /// identical to [`BehaviourSpace::describe`].
    pub fn describe_into(&self, genes: &[f64], fitness: f64, out: &mut evoalg::BehaviourMatrix) {
        match self {
            BehaviourSpace::Fitness => out.push(&[fitness]),
            BehaviourSpace::Genotype => {
                let norm = (genes.len() as f64).sqrt();
                for (slot, &g) in out.push_uninit(genes.len()).iter_mut().zip(genes) {
                    *slot = g / norm;
                }
            }
        }
    }

    /// Descriptor dimension for `genome_dims`-gene genomes (1 for the
    /// paper's fitness behaviour — the case the sorted-scan kNN index
    /// accelerates).
    pub fn dim(&self, genome_dims: usize) -> usize {
        match self {
            BehaviourSpace::Fitness => 1,
            BehaviourSpace::Genotype => genome_dims,
        }
    }
}

/// How the result set handed to the Statistical Stage is composed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InclusionPolicy {
    /// Pure `bestSet` — Algorithm 1's output.
    BestOnly,
    /// `bestSet` plus a fraction of the most novel archive members
    /// ("addition of a percentage of novel … solutions", §IV).
    WithNovel {
        /// Fraction of the result set drawn from the archive.
        fraction: f64,
    },
    /// `bestSet` plus a fraction of uniformly random scenarios ("… or
    /// random solutions", §IV).
    WithRandom {
        /// Fraction of the result set drawn uniformly at random.
        fraction: f64,
    },
}

impl InclusionPolicy {
    /// Number of extra (novel/random) members for a result set of `size`.
    pub fn extra_count(&self, size: usize) -> usize {
        let fraction = match *self {
            InclusionPolicy::BestOnly => return 0,
            InclusionPolicy::WithNovel { fraction } | InclusionPolicy::WithRandom { fraction } => {
                fraction
            }
        };
        assert!(
            (0.0..=1.0).contains(&fraction),
            "inclusion fraction is a proportion"
        );
        ((size as f64) * fraction).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_novelty_ignores_fitness() {
        let p = ScoringPolicy::PureNovelty;
        assert_eq!(p.score(0.9, 0.2), 0.2);
        assert_eq!(p.score(0.0, 0.2), 0.2);
    }

    #[test]
    fn weighted_blend_interpolates() {
        let p = ScoringPolicy::Weighted {
            novelty_weight: 0.25,
        };
        let s = p.score(0.8, 0.4);
        assert!((s - (0.25 * 0.4 + 0.75 * 0.8)).abs() < 1e-12);
        // Extremes recover the pure strategies.
        assert_eq!(
            ScoringPolicy::Weighted {
                novelty_weight: 1.0
            }
            .score(0.9, 0.3),
            0.3
        );
        assert_eq!(
            ScoringPolicy::Weighted {
                novelty_weight: 0.0
            }
            .score(0.9, 0.3),
            0.9
        );
    }

    #[test]
    fn sentinel_novelty_is_clamped() {
        let p = ScoringPolicy::Weighted {
            novelty_weight: 0.5,
        };
        let s = p.score(0.6, f64::MAX);
        assert!((s - (0.5 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn nslc_blends_novelty_and_local_competition() {
        let p = ScoringPolicy::NoveltyLocalCompetition {
            novelty_weight: 0.5,
        };
        assert!(p.uses_local_competition());
        assert!(!ScoringPolicy::PureNovelty.uses_local_competition());
        // Fitness itself is ignored; only the niche-relative term counts.
        let s = p.score_with_lc(0.99, 0.4, 0.8);
        assert!((s - (0.5 * 0.4 + 0.5 * 0.8)).abs() < 1e-12);
        let s2 = p.score_with_lc(0.01, 0.4, 0.8);
        assert_eq!(s, s2);
    }

    #[test]
    fn fitness_behaviour_is_one_dimensional() {
        let b = BehaviourSpace::Fitness.describe(&[0.1, 0.2], 0.77);
        assert_eq!(b, vec![0.77]);
    }

    #[test]
    fn genotype_behaviour_distance_normalised() {
        let a = BehaviourSpace::Genotype.describe(&[0.0, 0.0, 0.0, 0.0], 0.0);
        let b = BehaviourSpace::Genotype.describe(&[1.0, 1.0, 1.0, 1.0], 0.9);
        let d = evoalg::novelty::behaviour_distance(&a, &b);
        assert!(
            (d - 1.0).abs() < 1e-12,
            "corner-to-corner should be 1, got {d}"
        );
    }

    #[test]
    fn describe_into_matches_describe_bit_for_bit() {
        let genes = [0.3, 0.7, 0.1];
        for (space, fitness) in [
            (BehaviourSpace::Fitness, 0.42),
            (BehaviourSpace::Genotype, 0.9),
        ] {
            let mut m = evoalg::BehaviourMatrix::new();
            space.describe_into(&genes, fitness, &mut m);
            assert_eq!(m.row(0), space.describe(&genes, fitness).as_slice());
            assert_eq!(m.dim(), space.dim(genes.len()));
        }
    }

    #[test]
    fn inclusion_counts() {
        assert_eq!(InclusionPolicy::BestOnly.extra_count(20), 0);
        assert_eq!(
            InclusionPolicy::WithNovel { fraction: 0.25 }.extra_count(20),
            5
        );
        assert_eq!(
            InclusionPolicy::WithRandom { fraction: 0.1 }.extra_count(20),
            2
        );
    }

    #[test]
    #[should_panic(expected = "proportion")]
    fn invalid_fraction_rejected() {
        let _ = InclusionPolicy::WithNovel { fraction: 1.5 }.extra_count(10);
    }
}
