//! Algorithm 1 — the Novelty-based Genetic Algorithm with Multiple
//! Solutions, implemented line for line.
//!
//! ```text
//! Input: N, m, mR, cR, k, maxGen, fThreshold
//! Output: bestSet
//!  1: population ← initializePopulation(N)
//!  2: archive ← ∅
//!  3: bestSet ← ∅
//!  4: generations ← 0
//!  5: maxFitness ← 0
//!  6: while generations < maxGen and maxFitness < fThreshold do
//!  7:   offspring ← generateOffspring(population, m, mR, cR)
//!  8:   for each ind ∈ (population ∪ offspring): ind.fitness ← evaluateFitness(ind)
//! 11:   noveltySet ← (population ∪ offspring ∪ archive)
//! 12:   for each ind ∈ (population ∪ offspring): ind.novelty ← evaluateNovelty(ind, noveltySet, k)
//! 15:   archive ← updateArchive(archive, offspring)
//! 16:   population ← replaceByNovelty(population, offspring, N)
//! 17:   bestSet ← updateBest(bestSet, offspring)
//! 18:   maxFitness ← getMaxFitness(bestSet)
//! 19:   generations ← generations + 1
//! 20: end while
//! 21: return bestSet
//! ```
//!
//! Two deliberate implementation notes, both documented against the paper:
//!
//! * **Fitness caching** (lines 8–10): scenario fitness is deterministic
//!   within a prediction step, so already-evaluated population members are
//!   not re-simulated; the loop's semantics are unchanged and the
//!   evaluation counter reflects real simulations only.
//! * **`updateBest` coverage** (line 17): the pseudocode offers only
//!   `offspring`, but the output contract is "the set of individuals of
//!   highest fitness found **during the search**"; offering the evaluated
//!   initial population as well (its members would otherwise be the only
//!   evaluated individuals that can never be recorded) is a strict
//!   superset that matches the stated contract. `BestSet` dedupes, so this
//!   costs nothing.
//!
//! Lines 11–14 run as one *batched* pass: the noveltySet is assembled in
//! a generation-reused flat [`evoalg::BehaviourMatrix`] (each individual
//! described exactly once; the archive contributes its incrementally
//! maintained matrix via one bulk copy), and ρ(x) for every subject is
//! computed by the configured [`evoalg::NoveltyEngine`] — indexed kNN,
//! optionally fanned out over scoring workers, always bit-identical to
//! the brute-force reference `novelty_score`.

use crate::hybrid::{BehaviourSpace, ScoringPolicy};
use evoalg::individual::{Individual, Population};
use evoalg::operators::{one_point_crossover, uniform_mutation};
use evoalg::selection::{elitist_merge_indices, roulette};
use evoalg::{BatchEvaluator, BehaviourMatrix, BestSet, NoveltyArchive, NoveltyEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Input parameters of Algorithm 1 (its `Input:` line plus the fixed sizes
/// §III-B declares: "for the first version, we are considering a fixed size
/// archive and solution set").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoveltyGaConfig {
    /// Population size `N`.
    pub population_size: usize,
    /// Offspring per generation `m`.
    pub offspring: usize,
    /// Per-gene mutation probability `mR`.
    pub mutation_rate: f64,
    /// Crossover probability `cR`.
    pub crossover_rate: f64,
    /// Neighbours `k` for the novelty score of Eq. (1).
    pub novelty_neighbours: usize,
    /// Stopping condition: maximum generations `maxGen`.
    pub max_generations: u32,
    /// Stopping condition: fitness threshold `fThreshold`.
    pub fitness_threshold: f64,
    /// Fixed archive capacity.
    pub archive_capacity: usize,
    /// Fixed `bestSet` capacity.
    pub best_set_capacity: usize,
    /// Optional archive admission threshold (§IV variant; `None` = the
    /// baseline's pure novelty-replacement archive).
    pub archive_threshold: Option<f64>,
    /// Search-score policy (pure novelty for the baseline, weighted for
    /// the E7 hybrid ablation).
    pub scoring: ScoringPolicy,
    /// Behaviour space for Eq. (1)/(2) (fitness for the baseline).
    pub behaviour: BehaviourSpace,
    /// How ρ(x) batches are computed: kNN index strategy × scoring worker
    /// count. Every engine yields bit-identical scores — this knob trades
    /// master-side wall time only.
    pub novelty: NoveltyEngine,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NoveltyGaConfig {
    fn default() -> Self {
        Self {
            population_size: 32,
            offspring: 32,
            mutation_rate: 0.1,
            crossover_rate: 0.9,
            novelty_neighbours: 5,
            max_generations: 12,
            fitness_threshold: 0.95,
            archive_capacity: 64,
            best_set_capacity: 24,
            archive_threshold: None,
            scoring: ScoringPolicy::PureNovelty,
            behaviour: BehaviourSpace::Fitness,
            novelty: NoveltyEngine::default(),
            seed: 0,
        }
    }
}

/// Why the main loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `generations` reached `maxGen`.
    GenerationBudget,
    /// `maxFitness` reached `fThreshold`.
    FitnessThreshold,
}

/// Per-generation trace (the F3 harness prints these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NsGenStats {
    /// Generation index (1-based; after the generation completed).
    pub generation: u32,
    /// `getMaxFitness(bestSet)` — the running maximum.
    pub max_fitness: f64,
    /// Mean novelty of the surviving population.
    pub mean_novelty: f64,
    /// Mean fitness of the surviving population (diagnostic: NS populations
    /// need *not* improve here — that is the point).
    pub mean_fitness: f64,
    /// Archive occupancy.
    pub archive_len: usize,
    /// `bestSet` occupancy.
    pub best_set_len: usize,
    /// Cumulative evaluations (simulations).
    pub evaluations: u64,
}

/// The outcome of one Algorithm 1 run.
#[derive(Debug, Clone)]
pub struct NoveltyGaOutcome {
    /// Line 21: the returned `bestSet`.
    pub best_set: BestSet,
    /// The final archive (exposed for the §IV inclusion variants and for
    /// diagnostics).
    pub archive: NoveltyArchive,
    /// The final (non-converged) population.
    pub final_population: Population,
    /// Generations executed.
    pub generations: u32,
    /// Scenario evaluations performed.
    pub evaluations: u64,
    /// Which stopping condition fired.
    pub stop_reason: StopReason,
    /// Per-generation trace.
    pub history: Vec<NsGenStats>,
}

/// The Algorithm 1 engine.
#[derive(Debug)]
pub struct NoveltyGa {
    config: NoveltyGaConfig,
    dims: usize,
}

impl NoveltyGa {
    /// Creates the engine for `dims`-gene genomes.
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn new(dims: usize, config: NoveltyGaConfig) -> Self {
        assert!(dims >= 2, "genome needs at least two genes");
        assert!(config.population_size >= 2, "N must be at least 2");
        assert!(config.offspring >= 2, "m must be at least 2");
        assert!(
            (0.0..=1.0).contains(&config.mutation_rate),
            "mR is a probability"
        );
        assert!(
            (0.0..=1.0).contains(&config.crossover_rate),
            "cR is a probability"
        );
        assert!(config.novelty_neighbours >= 1, "k must be at least 1");
        Self { config, dims }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NoveltyGaConfig {
        &self.config
    }

    /// Runs Algorithm 1 to completion against `evaluator`.
    pub fn run<E: BatchEvaluator>(&self, evaluator: &mut E) -> NoveltyGaOutcome {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Line 1: initializePopulation(N).
        let mut population = Population::random(cfg.population_size, self.dims, &mut rng);
        // Lines 2–5.
        let mut archive = match cfg.archive_threshold {
            Some(t) => NoveltyArchive::new(cfg.archive_capacity).with_threshold(t),
            None => NoveltyArchive::new(cfg.archive_capacity),
        };
        let mut best_set = BestSet::new(cfg.best_set_capacity);
        let mut generations = 0u32;
        let mut max_fitness = 0.0f64;
        let mut evaluations = 0u64;
        let mut history = Vec::new();
        let mut stop_reason = StopReason::GenerationBudget;
        // The noveltySet buffer, reused across generations: one flat block
        // holding population ∪ offspring ∪ archive descriptors.
        let mut novelty_set = BehaviourMatrix::with_dim(cfg.behaviour.dim(self.dims));

        // Line 6: the two stopping conditions.
        while generations < cfg.max_generations {
            if max_fitness >= cfg.fitness_threshold {
                stop_reason = StopReason::FitnessThreshold;
                break;
            }

            // Line 7: generateOffspring(population, m, mR, cR).
            let mut offspring = self.generate_offspring(&population, &mut rng);

            // Lines 8–10: evaluate fitness of (population ∪ offspring).
            // Population members keep their cached deterministic fitness.
            evaluations += Self::evaluate_missing(&mut population, evaluator);
            evaluations += Self::evaluate_missing(&mut offspring, evaluator);

            // Line 11: noveltySet ← population ∪ offspring ∪ archive,
            // rebuilt in the reused flat buffer. Each individual is
            // described exactly once per generation — the archive offers
            // below reuse these rows — and the archive's descriptors
            // arrive with one bulk copy of its incrementally maintained
            // matrix (no per-entry clone).
            novelty_set.clear();
            novelty_set.reserve_rows(population.len() + offspring.len() + archive.len());
            for ind in population.members().iter().chain(offspring.members()) {
                cfg.behaviour
                    .describe_into(&ind.genes, ind.fitness, &mut novelty_set);
            }
            novelty_set.extend_from(archive.behaviour_matrix());

            // Lines 12–14: ρ(x) of each ind ∈ population ∪ offspring, as
            // one batch on the configured engine (indexed kNN, optionally
            // chunk-parallel; bit-identical to brute force either way).
            // The index is prepared once and shared with the NSLC batch.
            let subjects = population.len() + offspring.len();
            let prepared = cfg.novelty.index.prepare(&novelty_set);
            let scores =
                cfg.novelty
                    .novelty_scores_prepared(&prepared, subjects, cfg.novelty_neighbours);
            for (idx, rho) in scores.into_iter().enumerate() {
                // The sentinel for an empty reference cannot occur here
                // (the reference always holds ≥ N+m−1 ≥ 3 entries), but
                // clamp defensively for custom behaviour spaces.
                let rho = if rho.is_finite() { rho } else { 1.0 };
                if idx < population.len() {
                    population.members_mut()[idx].novelty = rho;
                } else {
                    offspring.members_mut()[idx - population.len()].novelty = rho;
                }
            }

            // NSLC extension: when the scoring policy competes locally,
            // compute each subject's local-competition term over the same
            // noveltySet (archived entries compete with their recorded
            // fitness).
            if cfg.scoring.uses_local_competition() {
                let mut all_fitness: Vec<f64> = population
                    .members()
                    .iter()
                    .chain(offspring.members())
                    .map(|m| m.fitness)
                    .collect();
                all_fitness.extend(archive.entries().iter().map(|e| e.fitness));
                let lcs = cfg.novelty.local_competition_scores_prepared(
                    &prepared,
                    &all_fitness,
                    subjects,
                    cfg.novelty_neighbours,
                );
                for (idx, lc) in lcs.into_iter().enumerate() {
                    if idx < population.len() {
                        population.members_mut()[idx].local_comp = lc;
                    } else {
                        offspring.members_mut()[idx - population.len()].local_comp = lc;
                    }
                }
            }

            // Line 15: updateArchive(archive, offspring) — offspring enter
            // by novelty; replacement inside the archive is novelty-only.
            // Descriptors are the rows already built for the noveltySet.
            for (j, ind) in offspring.members().iter().enumerate() {
                archive.offer(
                    &ind.genes,
                    novelty_set.row(population.len() + j),
                    ind.novelty,
                    ind.fitness,
                );
            }

            // Line 16: replaceByNovelty(population, offspring, N) — elitist
            // over the union by the search score (novelty for the
            // baseline; the hybrid/NSLC policies for E7).
            let score = |ind: &Individual| {
                let lc = if ind.local_comp.is_finite() {
                    ind.local_comp
                } else {
                    0.0
                };
                cfg.scoring.score_with_lc(ind.fitness, ind.novelty, lc)
            };
            let pop_scores: Vec<f64> = population.members().iter().map(score).collect();
            let off_scores: Vec<f64> = offspring.members().iter().map(score).collect();
            let keep = elitist_merge_indices(&pop_scores, &off_scores, cfg.population_size);
            let parents = std::mem::take(&mut population).into_members();
            let off_members = offspring.members().to_vec();
            let mut next = Vec::with_capacity(cfg.population_size);
            for i in keep {
                if i < parents.len() {
                    next.push(parents[i].clone());
                } else {
                    next.push(off_members[i - parents.len()].clone());
                }
            }
            population = Population::from_members(next);

            // Line 17: updateBest — all evaluated individuals this
            // generation (see the module docs for why this supersets the
            // pseudocode's `offspring`).
            for ind in off_members.iter().chain(parents.iter()) {
                if ind.is_evaluated() {
                    best_set.offer(&ind.genes, ind.fitness);
                }
            }

            // Lines 18–19.
            max_fitness = best_set.max_fitness();
            generations += 1;

            let novelties: Vec<f64> = population.members().iter().map(|m| m.novelty).collect();
            let fitnesses: Vec<f64> = population.members().iter().map(|m| m.fitness).collect();
            history.push(NsGenStats {
                generation: generations,
                max_fitness,
                mean_novelty: mean(&novelties),
                mean_fitness: mean(&fitnesses),
                archive_len: archive.len(),
                best_set_len: best_set.len(),
                evaluations,
            });
        }
        NoveltyGaOutcome {
            best_set,
            archive,
            final_population: population,
            generations,
            evaluations,
            stop_reason,
            history,
        }
    }

    /// Line 7: roulette selection on the previous generation's search
    /// score, one-point crossover with probability `cR`, per-gene uniform
    /// mutation `mR`. In the first generation no novelty exists yet, so
    /// selection is uniform (roulette over all-zero scores).
    fn generate_offspring(&self, population: &Population, rng: &mut StdRng) -> Population {
        let cfg = &self.config;
        let scores: Vec<f64> = population
            .members()
            .iter()
            .map(|m| {
                if m.novelty.is_finite() && m.fitness.is_finite() {
                    let lc = if m.local_comp.is_finite() {
                        m.local_comp
                    } else {
                        0.0
                    };
                    cfg.scoring.score_with_lc(m.fitness, m.novelty, lc)
                } else {
                    0.0 // first generation: uniform selection
                }
            })
            .collect();
        let mut out = Vec::with_capacity(cfg.offspring);
        while out.len() < cfg.offspring {
            let pa = roulette(&scores, rng);
            let pb = roulette(&scores, rng);
            let (mut c1, mut c2) = if rng.random::<f64>() < cfg.crossover_rate {
                one_point_crossover(
                    &population.members()[pa].genes,
                    &population.members()[pb].genes,
                    rng,
                )
            } else {
                (
                    population.members()[pa].genes.clone(),
                    population.members()[pb].genes.clone(),
                )
            };
            uniform_mutation(&mut c1, cfg.mutation_rate, rng);
            uniform_mutation(&mut c2, cfg.mutation_rate, rng);
            out.push(Individual::new(c1));
            if out.len() < cfg.offspring {
                out.push(Individual::new(c2));
            }
        }
        Population::from_members(out)
    }

    /// Evaluates exactly the members without a cached fitness; returns how
    /// many evaluations were spent.
    fn evaluate_missing<E: BatchEvaluator>(pop: &mut Population, evaluator: &mut E) -> u64 {
        let missing: Vec<usize> = pop
            .members()
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.is_evaluated())
            .map(|(i, _)| i)
            .collect();
        if missing.is_empty() {
            return 0;
        }
        let genomes: Vec<Vec<f64>> = missing
            .iter()
            .map(|&i| pop.members()[i].genes.clone())
            .collect();
        let fitness = evaluator.evaluate(&genomes);
        assert_eq!(
            fitness.len(),
            genomes.len(),
            "evaluator returned wrong batch size"
        );
        for (&i, f) in missing.iter().zip(&fitness) {
            assert!(f.is_finite(), "fitness must be finite");
            pop.members_mut()[i].fitness = *f;
        }
        missing.len() as u64
    }
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evoalg::benchmarks::{deceptive_trap, sphere, two_peaks};

    fn run_on<F: Fn(&[f64]) -> f64>(
        f: F,
        cfg: NoveltyGaConfig,
        dims: usize,
    ) -> (NoveltyGaOutcome, u64) {
        let mut calls = 0u64;
        let mut eval = |gs: &[Vec<f64>]| -> Vec<f64> {
            calls += gs.len() as u64;
            gs.iter().map(|g| f(g)).collect()
        };
        let out = NoveltyGa::new(dims, cfg).run(&mut eval);
        (out, calls)
    }

    #[test]
    fn returns_nonempty_sorted_best_set() {
        let (out, _) = run_on(sphere, NoveltyGaConfig::default(), 6);
        assert!(!out.best_set.is_empty());
        let f = out.best_set.fitness_values();
        assert!(
            f.windows(2).all(|w| w[0] >= w[1]),
            "bestSet not sorted: {f:?}"
        );
        assert_eq!(out.best_set.max_fitness(), f[0]);
    }

    #[test]
    fn stopping_condition_generation_budget() {
        let cfg = NoveltyGaConfig {
            max_generations: 5,
            fitness_threshold: 2.0, // unreachable
            ..NoveltyGaConfig::default()
        };
        let (out, _) = run_on(sphere, cfg, 4);
        assert_eq!(out.generations, 5);
        assert_eq!(out.stop_reason, StopReason::GenerationBudget);
        assert_eq!(out.history.len(), 5);
    }

    #[test]
    fn stopping_condition_fitness_threshold() {
        let cfg = NoveltyGaConfig {
            max_generations: 500,
            fitness_threshold: 0.2, // easily reached on sphere
            ..NoveltyGaConfig::default()
        };
        let (out, _) = run_on(sphere, cfg, 4);
        assert_eq!(out.stop_reason, StopReason::FitnessThreshold);
        assert!(out.generations < 500);
        assert!(out.best_set.max_fitness() >= 0.2);
    }

    #[test]
    fn evaluation_caching_never_resimulates() {
        // Per generation: exactly m new evaluations after the initial N.
        let cfg = NoveltyGaConfig {
            population_size: 10,
            offspring: 14,
            max_generations: 4,
            fitness_threshold: 2.0,
            ..NoveltyGaConfig::default()
        };
        let (out, calls) = run_on(sphere, cfg, 4);
        assert_eq!(calls, 10 + 4 * 14);
        assert_eq!(out.evaluations, calls);
    }

    #[test]
    fn max_fitness_is_monotone_in_history() {
        let (out, _) = run_on(sphere, NoveltyGaConfig::default(), 6);
        let mf: Vec<f64> = out.history.iter().map(|h| h.max_fitness).collect();
        assert!(
            mf.windows(2).all(|w| w[1] >= w[0]),
            "maxFitness must never decrease: {mf:?}"
        );
    }

    #[test]
    fn archive_and_best_set_bounded() {
        let cfg = NoveltyGaConfig {
            archive_capacity: 16,
            best_set_capacity: 8,
            max_generations: 10,
            fitness_threshold: 2.0,
            ..NoveltyGaConfig::default()
        };
        let (out, _) = run_on(sphere, cfg, 4);
        assert!(out.archive.len() <= 16);
        assert!(out.best_set.len() <= 8);
        for h in &out.history {
            assert!(h.archive_len <= 16 && h.best_set_len <= 8);
        }
    }

    #[test]
    fn population_does_not_converge_genotypically() {
        // The defining NS property: final population diversity stays high
        // relative to a fitness GA's converged population on the same
        // budget.
        let cfg = NoveltyGaConfig {
            max_generations: 25,
            fitness_threshold: 2.0,
            ..NoveltyGaConfig::default()
        };
        let (out, _) = run_on(sphere, cfg, 6);
        let ns_div = evoalg::diversity::mean_pairwise_distance(&out.final_population.genomes());

        let mut ga = evoalg::GaEngine::new(
            6,
            evoalg::GaConfig {
                population_size: 32,
                offspring: 32,
                seed: 0,
                ..Default::default()
            },
        );
        let mut eval = |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| sphere(g)).collect() };
        ga.evaluate_initial(&mut eval);
        for _ in 0..25 {
            ga.step(&mut eval);
        }
        let ga_div = evoalg::diversity::mean_pairwise_distance(&ga.population().genomes());
        assert!(
            ns_div > 2.0 * ga_div,
            "NS population should stay diverse (NS {ns_div} vs GA {ga_div})"
        );
    }

    #[test]
    fn solves_deceptive_trap_better_than_fitness_ga() {
        // E5 in miniature: on the fully deceptive trap the fitness GA rides
        // the gradient into the all-zeros attractor; NS keeps exploring and
        // its bestSet should reach a higher trap score.
        let dims = 8;
        let trap = |g: &[f64]| deceptive_trap(g, 4);
        let budget_gens = 40;

        let cfg = NoveltyGaConfig {
            population_size: 24,
            offspring: 24,
            max_generations: budget_gens,
            fitness_threshold: 0.999,
            seed: 3,
            ..NoveltyGaConfig::default()
        };
        let (ns_out, _) = run_on(trap, cfg, dims);

        let mut ga = evoalg::GaEngine::new(
            dims,
            evoalg::GaConfig {
                population_size: 24,
                offspring: 24,
                seed: 3,
                ..Default::default()
            },
        );
        let mut eval = |gs: &[Vec<f64>]| -> Vec<f64> { gs.iter().map(|g| trap(g)).collect() };
        let mut ga_best = ga.evaluate_initial(&mut eval).best_fitness;
        for _ in 0..budget_gens {
            ga_best = ga_best.max(ga.step(&mut eval).best_fitness);
        }
        assert!(
            ns_out.best_set.max_fitness() >= ga_best,
            "NS ({}) should not lose to the fitness GA ({ga_best}) on a deceptive trap",
            ns_out.best_set.max_fitness()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let cfg = NoveltyGaConfig {
                seed,
                max_generations: 6,
                ..NoveltyGaConfig::default()
            };
            let (out, _) = run_on(|g| two_peaks(g, 0.6), cfg, 4);
            out.best_set.genomes()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn hybrid_scoring_with_zero_weight_behaves_greedily() {
        // w = 0 reduces the search score to fitness: mean population
        // fitness should then improve like a fitness GA's.
        let mk = |scoring| NoveltyGaConfig {
            scoring,
            max_generations: 15,
            fitness_threshold: 2.0,
            seed: 8,
            ..NoveltyGaConfig::default()
        };
        let (fit_out, _) = run_on(
            sphere,
            mk(ScoringPolicy::Weighted {
                novelty_weight: 0.0,
            }),
            6,
        );
        let (ns_out, _) = run_on(sphere, mk(ScoringPolicy::PureNovelty), 6);
        let fit_mean = fit_out.history.last().unwrap().mean_fitness;
        let ns_mean = ns_out.history.last().unwrap().mean_fitness;
        assert!(
            fit_mean > ns_mean,
            "fitness-scored population ({fit_mean}) should out-converge NS ({ns_mean})"
        );
    }

    #[test]
    fn nslc_policy_runs_and_differs_from_pure_novelty() {
        let mk = |scoring| NoveltyGaConfig {
            scoring,
            max_generations: 12,
            fitness_threshold: 2.0,
            seed: 13,
            ..NoveltyGaConfig::default()
        };
        let (nslc, _) = run_on(
            |g| two_peaks(g, 0.6),
            mk(ScoringPolicy::NoveltyLocalCompetition {
                novelty_weight: 0.5,
            }),
            4,
        );
        let (pure, _) = run_on(|g| two_peaks(g, 0.6), mk(ScoringPolicy::PureNovelty), 4);
        assert!(!nslc.best_set.is_empty());
        assert!(nslc.archive.len() <= nslc.archive.capacity());
        // The local-competition pressure must actually change the search
        // trajectory for the same seed.
        assert_ne!(
            nslc.final_population.genomes(),
            pure.final_population.genomes()
        );
        // Every surviving member carries a computed local-competition score.
        for m in nslc.final_population.members() {
            assert!(
                m.local_comp.is_finite() && (0.0..=1.0).contains(&m.local_comp),
                "missing/invalid local competition score {}",
                m.local_comp
            );
        }
        // Pure NS must never compute it.
        assert!(pure
            .final_population
            .members()
            .iter()
            .all(|m| m.local_comp.is_nan()));
    }

    #[test]
    fn archive_threshold_variant_restricts_admissions() {
        let base = NoveltyGaConfig {
            max_generations: 10,
            fitness_threshold: 2.0,
            seed: 4,
            ..NoveltyGaConfig::default()
        };
        let (open, _) = run_on(sphere, base, 4);
        let strict = NoveltyGaConfig {
            archive_threshold: Some(0.9),
            ..base
        };
        let (gated, _) = run_on(sphere, strict, 4);
        assert!(
            gated.archive.len() < open.archive.len(),
            "a 0.9 novelty gate should admit fewer entries ({} vs {})",
            gated.archive.len(),
            open.archive.len()
        );
    }

    #[test]
    fn novelty_engines_are_bit_identical_end_to_end() {
        // The whole point of the engine knob: sorted-scan, brute-force and
        // chunk-parallel scoring must drive the exact same search — same
        // bestSet, same archive, same final population, per seed.
        use evoalg::NoveltyIndex;
        let run_with = |novelty: NoveltyEngine, behaviour| {
            let cfg = NoveltyGaConfig {
                max_generations: 10,
                fitness_threshold: 2.0,
                novelty,
                behaviour,
                seed: 21,
                ..NoveltyGaConfig::default()
            };
            let (out, _) = run_on(|g| two_peaks(g, 0.6), cfg, 5);
            (
                out.best_set.genomes(),
                out.best_set.fitness_values(),
                out.final_population.genomes(),
                out.archive.entries().to_vec(),
            )
        };
        for behaviour in [BehaviourSpace::Fitness, BehaviourSpace::Genotype] {
            let reference = run_with(NoveltyEngine::brute_force(), behaviour);
            for engine in [
                NoveltyEngine::indexed(),
                NoveltyEngine::indexed().with_workers(3),
                NoveltyEngine {
                    index: NoveltyIndex::ChunkedBruteForce,
                    workers: 2,
                },
            ] {
                assert_eq!(
                    run_with(engine, behaviour),
                    reference,
                    "engine {engine} diverged from brute force ({behaviour:?})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        let _ = NoveltyGa::new(
            4,
            NoveltyGaConfig {
                novelty_neighbours: 0,
                ..NoveltyGaConfig::default()
            },
        );
    }
}
