//! In-memory byte pipes over `std::sync::mpsc`: connect a [`Client`] to a
//! `serve` loop running in another thread of the same process, with the
//! exact `Read`/`Write` semantics a socket would have.
//!
//! [`duplex`] returns the two ends of one unidirectional byte stream;
//! build two for a request/response pair. Writes never block (the channel
//! is unbounded), reads block until bytes or disconnect arrive — so a
//! serve loop on the far end behaves exactly as it would over stdin/
//! stdout, and dropping a writer cleanly EOFs the reader (the serve
//! loop's EOF-implies-drain path).
//!
//! [`Client`]: crate::Client

use std::io::{self, Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};

/// The write end of an in-memory pipe. Cloning gives another writer into
/// the same stream (writes are chunk-atomic: each `write` call arrives
/// contiguously, so writers that emit whole lines per call can share a
/// pipe without interleaving mid-line).
#[derive(Clone)]
pub struct PipeWriter {
    tx: Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe reader disconnected"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The read end of an in-memory pipe. Blocking; returns `Ok(0)` (EOF)
/// once every writer is dropped and the buffered bytes are consumed.
pub struct PipeReader {
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0), // every writer dropped: EOF
            }
        }
        let n = buf.len().min(self.pending.len() - self.pos);
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// One unidirectional in-memory byte stream: `(writer, reader)`.
pub fn duplex() -> (PipeWriter, PipeReader) {
    let (tx, rx) = channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            pending: Vec::new(),
            pos: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn lines_cross_the_pipe_and_eof_on_writer_drop() {
        let (mut w, r) = duplex();
        let handle = std::thread::spawn(move || {
            let mut lines = Vec::new();
            for line in BufReader::new(r).lines() {
                lines.push(line.expect("clean utf-8 line"));
            }
            lines
        });
        w.write_all(b"alpha\nbe").unwrap();
        w.write_all(b"ta\n").unwrap();
        drop(w);
        assert_eq!(handle.join().unwrap(), vec!["alpha", "beta"]);
    }

    #[test]
    fn cloned_writers_share_the_stream_chunk_atomically() {
        let (w, r) = duplex();
        let mut handles = Vec::new();
        for i in 0..4 {
            let mut w = w.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..50 {
                    let line = format!("{i}:{j}\n");
                    w.write_all(line.as_bytes()).unwrap();
                }
            }));
        }
        drop(w);
        for h in handles {
            h.join().unwrap();
        }
        let mut count = 0;
        for line in BufReader::new(r).lines() {
            let line = line.unwrap();
            assert!(line.split_once(':').is_some(), "interleaved line {line:?}");
            count += 1;
        }
        assert_eq!(count, 200);
    }
}
