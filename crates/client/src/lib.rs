//! `ess-client` — the typed protocol-v2 client for the prediction
//! service.
//!
//! A [`Client`] speaks the versioned envelope of `ess_service::proto`
//! over **any** `BufRead`/`Write` pair: a child process's stdin/stdout,
//! an in-memory [`pipe`] to a serve loop in another thread (the loadgen
//! harness configuration), or any socket-like transport the caller
//! wraps. Every request gets a correlation id; the client reads frames
//! until the matching reply arrives, stashing the async `progress`/`done`
//! frames that stream in between (retrieve them with
//! [`Client::take_events`]).
//!
//! ```no_run
//! use ess_client::Client;
//! use ess_service::RunSpec;
//! use std::io::{stdin, stdout};
//!
//! let mut client = Client::new(stdin().lock(), stdout());
//! let sessions = client
//!     .run(&RunSpec::new("ESS-NS", "meadow_small").scale(0.25), true)
//!     .unwrap();
//! let snapshot = client.snapshot(sessions[0]).unwrap(); // checkpoint
//! client.cancel(sessions[0]).unwrap(); // "kill" it …
//! let resumed = client.restore(&snapshot, true).unwrap(); // … and resume
//! client.drain().unwrap();
//! for done in client.take_events() {
//!     println!("{done:?}");
//! }
//! # let _ = resumed;
//! ```

pub mod pipe;

use ess_service::jsonio::Json;
use ess_service::proto::{Frame, Reply, Request, RequestKind};
use ess_service::snapshot::SessionSnapshot;
use ess_service::{RunSpec, SessionId};
use std::fmt;
use std::io::{BufRead, Write};

/// Everything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or EOF'd before the reply).
    Transport(std::io::Error),
    /// The server sent something the protocol does not allow here.
    Protocol(String),
    /// The server answered the request with an error reply.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Transport(e)
    }
}

/// A typed v2 client over one request/response transport.
pub struct Client<R: BufRead, W: Write> {
    input: R,
    output: W,
    next_id: u64,
    events: Vec<Frame>,
}

impl<R: BufRead, W: Write> Client<R, W> {
    /// A client reading frames from `input` and writing requests to
    /// `output`, with correlation ids starting at 1.
    pub fn new(input: R, output: W) -> Self {
        Self::with_id_base(input, output, 0)
    }

    /// [`Client::new`] with correlation ids starting at `base + 1` —
    /// give each client of a shared transport its own id namespace so a
    /// demultiplexer can route replies by id range.
    pub fn with_id_base(input: R, output: W, base: u64) -> Self {
        Self {
            input,
            output,
            next_id: base,
            events: Vec::new(),
        }
    }

    /// Submits every replicate of `spec`; returns the assigned session
    /// ids. `watch` subscribes to per-step `progress` frames.
    ///
    /// # Errors
    /// Transport, protocol, or server-side spec errors.
    pub fn run(&mut self, spec: &RunSpec, watch: bool) -> Result<Vec<SessionId>, ClientError> {
        match self.request(RequestKind::Run {
            spec: spec.clone(),
            watch,
        })? {
            Reply::Accepted { sessions } => Ok(sessions),
            other => Err(unexpected("accepted", &other)),
        }
    }

    /// Resumes a checkpointed session; returns its new session id.
    ///
    /// # Errors
    /// Transport, protocol, or server-side snapshot errors.
    pub fn restore(
        &mut self,
        snapshot: &SessionSnapshot,
        watch: bool,
    ) -> Result<SessionId, ClientError> {
        match self.request(RequestKind::Restore {
            snapshot: snapshot.clone(),
            watch,
        })? {
            Reply::Accepted { sessions } => sessions
                .first()
                .copied()
                .ok_or_else(|| ClientError::Protocol("restore accepted no session".into())),
            other => Err(unexpected("accepted", &other)),
        }
    }

    /// Runs up to `rounds` scheduler rounds server-side; returns
    /// `(rounds actually run, sessions still live)`. Streamed frames land
    /// in [`Client::take_events`].
    ///
    /// # Errors
    /// Transport or protocol errors.
    pub fn advance(&mut self, rounds: usize) -> Result<(usize, usize), ClientError> {
        match self.request(RequestKind::Advance { rounds })? {
            Reply::Advanced { rounds, live } => Ok((rounds, live)),
            other => Err(unexpected("advanced", &other)),
        }
    }

    /// Checkpoints a live session.
    ///
    /// # Errors
    /// Transport, protocol, or server-side errors (unknown session).
    pub fn snapshot(&mut self, session: SessionId) -> Result<SessionSnapshot, ClientError> {
        match self.request(RequestKind::Snapshot { session })? {
            Reply::Snapshot { snapshot, .. } => Ok(*snapshot),
            other => Err(unexpected("snapshot", &other)),
        }
    }

    /// Cancels a live session between steps.
    ///
    /// # Errors
    /// Transport, protocol, or server-side errors (unknown session).
    pub fn cancel(&mut self, session: SessionId) -> Result<(), ClientError> {
        match self.request(RequestKind::Cancel { session })? {
            Reply::Cancelled { .. } => Ok(()),
            other => Err(unexpected("cancelled", &other)),
        }
    }

    /// Drains every live session; returns how many reached a terminal
    /// event during the drain. The per-session `done` frames land in
    /// [`Client::take_events`].
    ///
    /// # Errors
    /// Transport or protocol errors.
    pub fn drain(&mut self) -> Result<usize, ClientError> {
        match self.request(RequestKind::Drain)? {
            Reply::Drained { sessions } => Ok(sessions),
            other => Err(unexpected("drained", &other)),
        }
    }

    /// Ends the serve loop.
    ///
    /// # Errors
    /// Transport or protocol errors.
    pub fn quit(&mut self) -> Result<(), ClientError> {
        match self.request(RequestKind::Quit)? {
            Reply::Bye => Ok(()),
            other => Err(unexpected("bye", &other)),
        }
    }

    /// Removes and returns the async frames (`progress`, `done`) received
    /// so far, in arrival order.
    pub fn take_events(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.events)
    }

    /// Sends one request and reads frames until its reply arrives.
    fn request(&mut self, kind: RequestKind) -> Result<Reply, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        // One write call per line so clients sharing a chunk-atomic
        // transport (see `pipe`) never interleave mid-line.
        let mut line = Request { id, kind }.to_json().to_string();
        line.push('\n');
        self.output.write_all(line.as_bytes())?;
        self.output.flush()?;
        loop {
            match self.read_frame()? {
                Frame::Reply { id: got, reply } if got == id => {
                    return match reply {
                        Reply::Error { message } => Err(ClientError::Server(message)),
                        reply => Ok(reply),
                    };
                }
                Frame::Reply { id: got, .. } => {
                    return Err(ClientError::Protocol(format!(
                        "reply for request {got} while waiting for {id} \
                         (transport shared without a demultiplexer?)"
                    )));
                }
                event => self.events.push(event),
            }
        }
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        loop {
            let mut line = String::new();
            if self.input.read_line(&mut line)? == 0 {
                return Err(ClientError::Transport(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the stream before replying",
                )));
            }
            if line.trim().is_empty() {
                continue;
            }
            let json = Json::parse(line.trim_end())
                .map_err(|e| ClientError::Protocol(format!("unparseable frame: {e}")))?;
            return Frame::from_json(&json).map_err(ClientError::Protocol);
        }
    }
}

fn unexpected(wanted: &str, got: &Reply) -> ClientError {
    ClientError::Protocol(format!("expected a '{wanted}' reply, got {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ess_service::proto::DoneFrame;

    /// Scripted server: a canned byte stream for the reader side plus a
    /// sink for requests.
    fn canned(frames: &[Frame]) -> Vec<u8> {
        let mut out = Vec::new();
        for f in frames {
            out.extend_from_slice(f.to_json().to_string().as_bytes());
            out.push(b'\n');
        }
        out
    }

    #[test]
    fn replies_resolve_and_async_frames_are_stashed() {
        let frames = canned(&[
            Frame::Progress {
                session: 1,
                step: 1,
                evaluations: 40,
                best: 0.5,
            },
            Frame::Done(DoneFrame {
                session: 1,
                status: "finished".into(),
                reason: None,
                system: "ESS".into(),
                case: "meadow_small".into(),
                steps: 2,
                mean_quality: 0.25,
                total_evaluations: 80,
                wall_ms: 1.0,
            }),
            Frame::Reply {
                id: 1,
                reply: Reply::Drained { sessions: 1 },
            },
        ]);
        let mut requests = Vec::new();
        let mut client = Client::new(frames.as_slice(), &mut requests);
        assert_eq!(client.drain().expect("drain reply"), 1);
        assert_eq!(client.take_events().len(), 2);
        assert!(client.take_events().is_empty(), "take_events drains");
        let sent = String::from_utf8(requests).unwrap();
        assert!(sent.contains(r#""kind":"drain""#), "{sent}");
        assert!(sent.contains(r#""v":2"#), "{sent}");
    }

    #[test]
    fn server_errors_surface_as_client_errors() {
        let frames = canned(&[Frame::Reply {
            id: 1,
            reply: Reply::Error {
                message: "unknown case or workload 'atlantis'".into(),
            },
        }]);
        let mut sink = Vec::new();
        let mut client = Client::new(frames.as_slice(), &mut sink);
        match client.cancel(7) {
            Err(ClientError::Server(m)) => assert!(m.contains("atlantis")),
            other => panic!("expected a server error, got {other:?}"),
        }
    }

    #[test]
    fn eof_before_the_reply_is_a_transport_error() {
        let mut sink = Vec::new();
        let mut client = Client::new(&[] as &[u8], &mut sink);
        assert!(matches!(client.drain(), Err(ClientError::Transport(_))));
    }

    #[test]
    fn id_namespaces_keep_clients_distinct() {
        let frames = canned(&[Frame::Reply {
            id: (3 << 32) + 1,
            reply: Reply::Drained { sessions: 0 },
        }]);
        let mut sink = Vec::new();
        let mut client = Client::with_id_base(frames.as_slice(), &mut sink, 3 << 32);
        assert_eq!(client.drain().expect("namespaced reply"), 0);
    }
}
