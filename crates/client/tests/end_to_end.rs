//! End-to-end protocol v2: a typed [`Client`] driving a real serve loop
//! in another thread over in-memory pipes — submit, stream, checkpoint,
//! kill, resume, and verify the resumed session's final report matches an
//! uninterrupted run of the same spec bit for bit (deterministic fields).

use ess::fitness::EvalBackend;
use ess_client::{pipe, Client};
use ess_service::proto::{DoneFrame, Frame};
use ess_service::serve::serve_with;
use ess_service::{PolicyKind, RunSpec};
use std::io::BufReader;
use std::thread;

/// The deterministic fields of a done frame (wall time excluded).
fn fingerprint(d: &DoneFrame) -> (String, String, String, usize, u64, u64) {
    (
        d.status.clone(),
        d.system.clone(),
        d.case.clone(),
        d.steps,
        d.mean_quality.to_bits(),
        d.total_evaluations,
    )
}

fn spawn_server(
    policy: PolicyKind,
) -> (
    Client<BufReader<pipe::PipeReader>, pipe::PipeWriter>,
    thread::JoinHandle<std::io::Result<ess_service::ServeSummary>>,
) {
    let (req_w, req_r) = pipe::duplex();
    let (resp_w, resp_r) = pipe::duplex();
    let server = thread::spawn(move || {
        serve_with(
            BufReader::new(req_r),
            resp_w,
            EvalBackend::WorkerPool(2),
            policy,
        )
    });
    (Client::new(BufReader::new(resp_r), req_w), server)
}

#[test]
fn kill_and_resume_matches_the_uninterrupted_run() {
    let (mut client, server) = spawn_server(PolicyKind::RoundRobin);
    let spec = RunSpec::new("ESS-NS", "meadow_small").seed(5).scale(0.2);

    // Reference: the same spec, never interrupted.
    let reference_ids = client.run(&spec, true).expect("reference accepted");
    assert_eq!(reference_ids.len(), 1);
    client.drain().expect("reference drains");
    let reference: Vec<DoneFrame> = client
        .take_events()
        .into_iter()
        .filter_map(|f| match f {
            Frame::Done(d) => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(reference.len(), 1);
    assert_eq!(reference[0].status, "finished");

    // Interrupted: advance a little, checkpoint, kill, resume, drain.
    let ids = client.run(&spec, true).expect("accepted");
    let (ran, live) = client.advance(2).expect("advance");
    assert_eq!(ran, 2);
    assert_eq!(live, 1);
    let snapshot = client.snapshot(ids[0]).expect("snapshot");
    assert_eq!(snapshot.completed(), 2);
    client.cancel(ids[0]).expect("kill");
    let resumed = client.restore(&snapshot, true).expect("resume");
    assert_ne!(resumed, ids[0], "resume gets a fresh session id");
    client.drain().expect("drain");

    let events = client.take_events();
    let done: Vec<&DoneFrame> = events
        .iter()
        .filter_map(|f| match f {
            Frame::Done(d) if d.session == resumed => Some(d),
            _ => None,
        })
        .collect();
    assert_eq!(done.len(), 1, "exactly one terminal frame for the resume");
    assert_eq!(
        fingerprint(done[0]),
        fingerprint(&reference[0]),
        "resumed run diverged from the uninterrupted reference"
    );

    // Progress frames streamed for the watched sessions, with cumulative
    // evaluation counters.
    let progress: Vec<(u64, usize, u64)> = events
        .iter()
        .filter_map(|f| match f {
            Frame::Progress {
                session,
                step,
                evaluations,
                ..
            } => Some((*session, *step, *evaluations)),
            _ => None,
        })
        .collect();
    assert!(
        !progress.is_empty(),
        "watched sessions must stream progress"
    );
    let resumed_steps: Vec<usize> = progress
        .iter()
        .filter(|(s, _, _)| *s == resumed)
        .map(|(_, step, _)| *step)
        .collect();
    assert_eq!(
        resumed_steps.first().copied(),
        Some(3),
        "resume continues at the checkpointed step, not from scratch"
    );

    client.quit().expect("quit");
    let summary = server.join().expect("server thread").expect("serve I/O");
    assert_eq!(summary.accepted, 3);
    assert_eq!(summary.restored, 1);
    assert_eq!(summary.snapshots, 1);
    assert_eq!(summary.cancelled, 1);
    assert_eq!(summary.finished, 2);
}

#[test]
fn server_side_spec_errors_do_not_kill_the_connection() {
    let (mut client, server) = spawn_server(PolicyKind::WeightedFairShare);
    let err = client
        .run(&RunSpec::new("ESS-9000", "meadow_small"), false)
        .expect_err("unknown system");
    assert!(err.to_string().contains("ESS-9000"), "{err}");
    // The loop survives: a valid run still works afterwards.
    let ids = client
        .run(
            &RunSpec::new("ESS", "meadow_small").scale(0.15).max_steps(1),
            false,
        )
        .expect("valid run accepted");
    assert_eq!(ids.len(), 1);
    client.drain().expect("drains");
    client.quit().expect("quit");
    let summary = server.join().unwrap().unwrap();
    assert_eq!(summary.errors, 1);
    assert_eq!(summary.exhausted, 1);
}
