//! The unified evaluation layer's core contract, as a property test:
//! Serial, WorkerPool and Rayon backends are *interchangeable* — for any
//! genome batch they return bit-identical fitness vectors and identical
//! evaluation accounting, so backend choice can never change results, only
//! wall time (the premise of the E3 speedup comparison).

use ess::cases;
use ess::fitness::{EvalBackend, ScenarioEvaluator, StepContext};
use evoalg::BatchEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn step1_context() -> Arc<StepContext> {
    let case = cases::tiny_test_case();
    Arc::new(StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[0].clone(),
        case.fire_lines[1].clone(),
        case.times[0],
        case.times[1],
    ))
}

fn random_batch(rng: &mut StdRng, len: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|_| {
            (0..firelib::GENE_COUNT)
                .map(|_| rng.random::<f64>())
                .collect()
        })
        .collect()
}

/// The headline property: over many random batches (varying sizes,
/// including the empty and single-genome edge cases), every backend
/// returns bit-identical fitness vectors and the same evaluation count.
#[test]
fn all_backends_bit_identical_on_random_batches() {
    let ctx = step1_context();
    let specs = [
        EvalBackend::Serial,
        EvalBackend::WorkerPool(2),
        EvalBackend::WorkerPool(4),
        EvalBackend::Rayon(2),
    ];
    // Persistent evaluators: worker state must stay correct across rounds.
    let mut evaluators: Vec<ScenarioEvaluator> = specs
        .iter()
        .map(|&s| ScenarioEvaluator::new(Arc::clone(&ctx), s))
        .collect();

    let mut expected_count = 0u64;
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = match seed {
            0 => 0,
            1 => 1,
            _ => rng.random_range(2..48usize),
        };
        let batch = random_batch(&mut rng, len);
        expected_count += len as u64;

        let reference: Vec<u64> = evaluators[0]
            .evaluate(&batch)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        for (spec, evaluator) in specs.iter().zip(&mut evaluators).skip(1) {
            let got: Vec<u64> = evaluator
                .evaluate(&batch)
                .iter()
                .map(|f| f.to_bits())
                .collect();
            assert_eq!(got, reference, "{spec} diverged from serial on seed {seed}");
        }
        for (spec, evaluator) in specs.iter().zip(&evaluators) {
            assert_eq!(
                evaluator.evaluation_count(),
                expected_count,
                "{spec} miscounted evaluations"
            );
            assert_eq!(evaluator.evaluations(), expected_count);
        }
    }
}

/// Fitness values are sane on every backend (finite, in [0, 1] — Eq. (3)
/// is a Jaccard index).
#[test]
fn all_backends_produce_unit_interval_fitness() {
    let ctx = step1_context();
    let mut rng = StdRng::seed_from_u64(99);
    let batch = random_batch(&mut rng, 16);
    for spec in [
        EvalBackend::Serial,
        EvalBackend::WorkerPool(3),
        EvalBackend::Rayon(3),
    ] {
        let mut evaluator = ScenarioEvaluator::new(Arc::clone(&ctx), spec);
        for f in evaluator.evaluate(&batch) {
            assert!((0.0..=1.0).contains(&f), "{spec}: fitness {f} out of range");
        }
    }
}

/// Backends constructed from parsed CLI spec strings behave identically to
/// ones constructed from enum values (the harness `--backend` path).
#[test]
fn parsed_specs_match_programmatic_ones() {
    let ctx = step1_context();
    let mut rng = StdRng::seed_from_u64(7);
    let batch = random_batch(&mut rng, 10);
    let reference: Vec<u64> = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::Serial)
        .evaluate(&batch)
        .iter()
        .map(|f| f.to_bits())
        .collect();
    for spec_str in [
        "serial",
        "worker-pool:2",
        "pool:3",
        "mw:2",
        "rayon:2",
        "steal:2",
    ] {
        let spec: EvalBackend = spec_str.parse().expect("valid spec");
        let got: Vec<u64> = ScenarioEvaluator::new(Arc::clone(&ctx), spec)
            .evaluate(&batch)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        assert_eq!(got, reference, "spec '{spec_str}' diverged");
    }
}

/// The same interchangeability on a *heterogeneous* corpus workload (fuel
/// mosaic + gusty wind field → the per-cell spread path and the arena's
/// spread cache): every backend's worker arenas must reproduce the serial
/// results bit for bit, including when the evaluators are reused across
/// rounds with warm arenas.
#[test]
fn all_backends_bit_identical_on_heterogeneous_workload() {
    let spec = firelib::workload::gusty_channel().shrunk(32);
    let case = cases::workload_case(&spec);
    let ctx = Arc::new(StepContext::new(
        Arc::clone(&case.sim),
        case.fire_lines[0].clone(),
        case.fire_lines[1].clone(),
        case.times[0],
        case.times[1],
    ));
    let specs = [
        EvalBackend::Serial,
        EvalBackend::WorkerPool(3),
        EvalBackend::Rayon(2),
    ];
    let mut evaluators: Vec<ScenarioEvaluator> = specs
        .iter()
        .map(|&s| ScenarioEvaluator::new(Arc::clone(&ctx), s))
        .collect();
    for round in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ round);
        let batch = random_batch(&mut rng, 24);
        let reference: Vec<u64> = evaluators[0]
            .evaluate(&batch)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        for (spec, evaluator) in specs.iter().zip(&mut evaluators).skip(1) {
            let got: Vec<u64> = evaluator
                .evaluate(&batch)
                .iter()
                .map(|f| f.to_bits())
                .collect();
            assert_eq!(
                got, reference,
                "{spec} diverged from serial on {} round {round}",
                case.name
            );
        }
    }
}

/// The evaluator exposes its backend's report name.
#[test]
fn backend_names_surface_through_the_evaluator() {
    let ctx = step1_context();
    let pairs = [
        (EvalBackend::Serial, "serial"),
        (EvalBackend::WorkerPool(2), "worker-pool(2)"),
        (EvalBackend::Rayon(2), "rayon(2)"),
    ];
    for (spec, name) in pairs {
        assert_eq!(
            ScenarioEvaluator::new(Arc::clone(&ctx), spec).backend_name(),
            name
        );
    }
}
