//! ESSIM-DE — the island-model Differential Evolution baseline with its
//! published tuning operators (paper §II-B).
//!
//! Three documented behaviours are reproduced:
//!
//! 1. **Diversity-injected result set**: "it was modified to a new version
//!    that tends toward greater diversity, where a part of the results are
//!    incorporated in the prediction process regardless of their fitness" —
//!    the result set is the best fraction of the winning island's
//!    population plus uniformly drawn members regardless of fitness.
//! 2. **Population restart operator** (\[21\]): when the best fitness
//!    stagnates for `stagnation_window` generations, the worst
//!    `restart_fraction` of each island is reinitialised.
//! 3. **IQR-based dynamic tuning** (\[22\]): when the interquartile range of
//!    an island's fitness falls below `iqr_threshold` (premature
//!    convergence signal), that island is restarted.
//!
//! Both operators can be disabled to reproduce the *untuned* ESSIM-DE that
//! the tuning papers compare against (experiment E6).

use crate::fitness::ScenarioEvaluator;
use crate::pipeline::{OptimizeOutcome, StepOptimizer};
use evoalg::{DeConfig, DeEngine};
use firelib::GENE_COUNT;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The automatic/dynamic tuning metrics of ESSIM-DE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningConfig {
    /// Enables the stagnation-triggered population restart (\[21\]).
    pub restart_enabled: bool,
    /// Generations without best-fitness improvement before a restart.
    pub stagnation_window: u32,
    /// Fraction of the population reinitialised by a restart.
    pub restart_fraction: f64,
    /// Enables the IQR premature-convergence metric (\[22\]).
    pub iqr_enabled: bool,
    /// IQR floor below which an island is considered converged.
    pub iqr_threshold: f64,
    /// Fraction of the generation budget after which restarts stop firing:
    /// a restart spends evaluations re-seeding and needs generations to
    /// recover, so the metrics only act while recovery is possible (\[22\]
    /// tracks the IQR "throughout generations" — an early-convergence
    /// detector, not an end-of-run one).
    pub last_restart_frac: f64,
}

impl TuningConfig {
    /// Both tuning metrics off — the original (pre-tuning) ESSIM-DE.
    pub fn disabled() -> Self {
        Self {
            restart_enabled: false,
            stagnation_window: 4,
            restart_fraction: 0.35,
            iqr_enabled: false,
            iqr_threshold: 1e-3,
            last_restart_frac: 0.7,
        }
    }

    /// Both tuning metrics on with the defaults used in E6.
    pub fn enabled() -> Self {
        Self {
            restart_enabled: true,
            iqr_enabled: true,
            ..Self::disabled()
        }
    }
}

/// Configuration of the ESSIM-DE baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssimDeConfig {
    /// Number of islands.
    pub islands: usize,
    /// Population size per island.
    pub island_population: usize,
    /// DE differential weight `F`.
    pub differential_weight: f64,
    /// DE crossover probability `CR`.
    pub crossover_rate: f64,
    /// Generations between ring migrations.
    pub migration_interval: u32,
    /// Individuals sent per migration.
    pub migrants: usize,
    /// Maximum generations per prediction step.
    pub max_generations: u32,
    /// Early-stop fitness threshold.
    pub fitness_threshold: f64,
    /// Fraction of the result set taken from the fittest members; the rest
    /// is drawn uniformly regardless of fitness (the diversity injection).
    pub elite_fraction: f64,
    /// Result-set size handed to the Statistical Stage.
    pub result_set_size: usize,
    /// Tuning metrics.
    pub tuning: TuningConfig,
}

impl Default for EssimDeConfig {
    fn default() -> Self {
        Self {
            islands: 4,
            island_population: 12,
            differential_weight: 0.8,
            crossover_rate: 0.9,
            migration_interval: 3,
            migrants: 2,
            max_generations: 12,
            fitness_threshold: 0.95,
            elite_fraction: 0.5,
            result_set_size: 12,
            tuning: TuningConfig::enabled(),
        }
    }
}

/// The ESSIM-DE baseline optimizer.
#[derive(Debug, Clone)]
pub struct EssimDe {
    config: EssimDeConfig,
}

impl EssimDe {
    /// Builds the baseline with `config`.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    pub fn new(config: EssimDeConfig) -> Self {
        assert!(
            config.islands >= 2,
            "an island model needs at least 2 islands"
        );
        assert!(
            config.island_population >= 4,
            "DE islands need at least 4 members"
        );
        assert!(
            (0.0..=1.0).contains(&config.elite_fraction),
            "elite fraction is a proportion"
        );
        assert!(config.result_set_size >= 1, "result set must be non-empty");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EssimDeConfig {
        &self.config
    }

    fn migrate(islands: &mut [DeEngine], migrants: usize) {
        let n = islands.len();
        let emigrants: Vec<Vec<evoalg::Individual>> = islands
            .iter_mut()
            .map(|isl| {
                isl.population_mut().sort_by_fitness_desc();
                isl.population().members()[..migrants].to_vec()
            })
            .collect();
        for (src, group) in emigrants.into_iter().enumerate() {
            let dst = (src + 1) % n;
            let pop = islands[dst].population_mut();
            pop.sort_by_fitness_desc();
            let len = pop.len();
            for (k, migrant) in group.into_iter().enumerate() {
                pop.members_mut()[len - 1 - k] = migrant;
            }
        }
    }
}

impl Default for EssimDe {
    fn default() -> Self {
        Self::new(EssimDeConfig::default())
    }
}

impl StepOptimizer for EssimDe {
    fn name(&self) -> &'static str {
        "ESSIM-DE"
    }

    fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, seed: u64) -> OptimizeOutcome {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1B54A32D192ED03);
        let mut islands: Vec<DeEngine> = (0..cfg.islands)
            .map(|i| {
                DeEngine::new(
                    GENE_COUNT,
                    DeConfig {
                        population_size: cfg.island_population,
                        differential_weight: cfg.differential_weight,
                        crossover_rate: cfg.crossover_rate,
                        seed: seed.wrapping_add(0xA24BAED4963EE407u64.wrapping_mul(i as u64 + 1)),
                    },
                )
            })
            .collect();
        for isl in &mut islands {
            isl.evaluate_initial(evaluator);
        }

        let mut best = f64::NEG_INFINITY;
        let mut best_age = 0u32;
        let mut generation = 0u32;
        let last_restart_gen = (cfg.max_generations as f64 * cfg.tuning.last_restart_frac) as u32;
        while generation < cfg.max_generations && best < cfg.fitness_threshold {
            let restarts_allowed = generation < last_restart_gen;
            let mut gen_best = f64::NEG_INFINITY;
            for isl in &mut islands {
                let s = isl.step(evaluator);
                gen_best = gen_best.max(s.best_fitness);
                // IQR metric: restart an island whose fitness spread
                // collapsed early (premature convergence).
                if cfg.tuning.iqr_enabled
                    && restarts_allowed
                    && s.fitness_iqr < cfg.tuning.iqr_threshold
                    && isl.generation() > 1
                {
                    isl.restart_worst(cfg.tuning.restart_fraction);
                    isl.evaluate_initial(evaluator);
                }
            }
            if gen_best > best + 1e-12 {
                best = gen_best;
                best_age = 0;
            } else {
                best_age += 1;
            }
            // Restart metric: global stagnation.
            if cfg.tuning.restart_enabled
                && restarts_allowed
                && best_age >= cfg.tuning.stagnation_window
            {
                for isl in &mut islands {
                    isl.restart_worst(cfg.tuning.restart_fraction);
                    isl.evaluate_initial(evaluator);
                }
                best_age = 0;
            }
            generation += 1;
            if cfg.migration_interval > 0 && generation.is_multiple_of(cfg.migration_interval) {
                Self::migrate(&mut islands, cfg.migrants);
            }
        }

        // Monitor: winning island by best fitness.
        let winner = islands
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.stats().best_fitness.total_cmp(&b.stats().best_fitness))
            .map(|(i, _)| i)
            // audit: allow(panic) — island count is a positive compile-time constant of the topology
            .expect("at least one island");

        // Diversity-injected result set: elite members plus uniform draws
        // regardless of fitness.
        let mut pop = islands[winner].population().clone();
        pop.sort_by_fitness_desc();
        let n_elite = ((cfg.result_set_size as f64) * cfg.elite_fraction).round() as usize;
        let n_elite = n_elite.min(pop.len()).min(cfg.result_set_size);
        let mut result_set: Vec<Vec<f64>> = pop.members()[..n_elite]
            .iter()
            .map(|m| m.genes.clone())
            .collect();
        while result_set.len() < cfg.result_set_size.min(pop.len()) {
            let pick = rng.random_range(0..pop.len());
            result_set.push(pop.members()[pick].genes.clone());
        }

        let evaluations: u64 = islands.iter().map(|i| i.evaluations()).sum();
        OptimizeOutcome {
            result_set,
            best_fitness: best,
            generations: generation,
            evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::tiny_test_case;
    use crate::fitness::{EvalBackend, StepContext};
    use std::sync::Arc;

    fn step_evaluator() -> ScenarioEvaluator {
        let case = tiny_test_case();
        let ctx = Arc::new(StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[0].clone(),
            case.fire_lines[1].clone(),
            case.times[0],
            case.times[1],
        ));
        ScenarioEvaluator::new(ctx, EvalBackend::Serial)
    }

    fn small_config(tuning: TuningConfig) -> EssimDeConfig {
        EssimDeConfig {
            islands: 2,
            island_population: 8,
            migration_interval: 2,
            migrants: 1,
            max_generations: 6,
            result_set_size: 8,
            tuning,
            ..EssimDeConfig::default()
        }
    }

    #[test]
    fn produces_requested_result_set() {
        let mut de = EssimDe::new(small_config(TuningConfig::disabled()));
        let mut eval = step_evaluator();
        let out = de.optimize(&mut eval, 17);
        assert_eq!(out.result_set.len(), 8);
        assert!(out.best_fitness > 0.0);
    }

    #[test]
    fn tuned_variant_runs_and_spends_more_evaluations_under_stagnation() {
        // On a hard-to-improve tiny budget the tuned variant should trigger
        // restarts (hence extra evaluations) at equal generation counts.
        let mut plain = EssimDe::new(EssimDeConfig {
            fitness_threshold: 2.0, // force full budget
            ..small_config(TuningConfig::disabled())
        });
        let mut tuned = EssimDe::new(EssimDeConfig {
            fitness_threshold: 2.0,
            tuning: TuningConfig {
                restart_enabled: true,
                stagnation_window: 1,
                restart_fraction: 0.5,
                iqr_enabled: true,
                iqr_threshold: 0.5, // aggressive: trips easily
                last_restart_frac: 1.0,
            },
            ..small_config(TuningConfig::disabled())
        });
        let mut e1 = step_evaluator();
        let mut e2 = step_evaluator();
        let out_plain = plain.optimize(&mut e1, 23);
        let out_tuned = tuned.optimize(&mut e2, 23);
        assert!(
            out_tuned.evaluations > out_plain.evaluations,
            "tuning should re-evaluate restarted members ({} vs {})",
            out_tuned.evaluations,
            out_plain.evaluations
        );
    }

    #[test]
    fn diversity_injection_duplicates_allowed_but_elites_first() {
        let mut de = EssimDe::new(EssimDeConfig {
            elite_fraction: 0.25,
            ..small_config(TuningConfig::disabled())
        });
        let mut eval = step_evaluator();
        let out = de.optimize(&mut eval, 31);
        assert_eq!(out.result_set.len(), 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut de = EssimDe::new(small_config(TuningConfig::enabled()));
            let mut eval = step_evaluator();
            de.optimize(&mut eval, seed).result_set
        };
        assert_eq!(run(41), run(41));
    }

    #[test]
    #[should_panic(expected = "at least 2 islands")]
    fn single_island_rejected() {
        let _ = EssimDe::new(EssimDeConfig {
            islands: 1,
            ..EssimDeConfig::default()
        });
    }
}
