//! The service-level error taxonomy of the run API.
//!
//! Every entry point that resolves names or enforces budgets — the
//! `service` crate's `RunSpec`/`PredictionSession`, `ess_ns::EssNs::run`,
//! the bench harness — reports failures through [`ServiceError`] instead
//! of silently returning `None`, so a misspelled workload or system name
//! surfaces as a one-line diagnostic rather than a skipped run.

use crate::pipeline::RunReport;
use std::fmt;

/// Why a session stopped before completing every prediction step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The configured maximum number of prediction steps was reached.
    MaxSteps,
    /// The configured scenario-evaluation budget was spent.
    MaxEvaluations,
    /// The configured wall-clock deadline passed.
    Deadline,
    /// The caller cancelled the session between steps.
    Cancelled,
}

impl fmt::Display for BudgetReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetReason::MaxSteps => write!(f, "max-steps"),
            BudgetReason::MaxEvaluations => write!(f, "max-evaluations"),
            BudgetReason::Deadline => write!(f, "deadline"),
            BudgetReason::Cancelled => write!(f, "cancelled"),
        }
    }
}

/// Everything that can go wrong when building or draining a run.
#[derive(Debug, Clone)]
pub enum ServiceError {
    /// The requested system name is not in the registry.
    UnknownSystem(String),
    /// The requested case/workload name resolves to nothing.
    UnknownCase(String),
    /// The request itself is malformed (zero replicates, non-positive
    /// scale, empty budget, …).
    BadSpec(String),
    /// A budget or cancellation stopped the run before the final step; the
    /// partial report covers the steps that did complete.
    BudgetExhausted {
        /// Which budget fired.
        reason: BudgetReason,
        /// The steps completed before exhaustion.
        partial: Box<RunReport>,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSystem(name) => write!(f, "unknown system '{name}'"),
            ServiceError::UnknownCase(name) => write!(f, "unknown case or workload '{name}'"),
            ServiceError::BadSpec(why) => write!(f, "bad run spec: {why}"),
            ServiceError::BudgetExhausted { reason, partial } => write!(
                f,
                "budget exhausted ({reason}) after {} of the run's steps",
                partial.steps.len()
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_one_line() {
        for e in [
            ServiceError::UnknownSystem("ESS-XX".into()),
            ServiceError::UnknownCase("no_such".into()),
            ServiceError::BadSpec("replicates must be positive".into()),
        ] {
            let line = e.to_string();
            assert!(!line.contains('\n'), "error must render as one line");
            assert!(!line.is_empty());
        }
    }
}
