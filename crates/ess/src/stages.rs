//! The Statistical Stage (`SS` in Figs. 1–3).
//!
//! "The first step is for the Master to aggregate the resulting maps into a
//! matrix in which each cell represents the probability of ignition of that
//! region" (§II-A). The resulting matrix is used twice: by the Calibration
//! Stage (on the just-observed interval) and by the Prediction Stage (on
//! the next interval).

use crate::fitness::StepContext;
use firelib::{Scenario, ScenarioSpace};
use landscape::ProbabilityMap;

/// Aggregates the simulated fire lines of a scenario result set over the
/// context's interval into an ignition-probability matrix.
///
/// Every scenario is re-simulated on `ctx`'s interval; with result sets of
/// tens of scenarios this is a negligible fraction of the Optimization
/// Stage's thousands of simulations, and it keeps the stage independent of
/// whatever the optimizer cached.
pub fn statistical_stage(ctx: &StepContext, scenarios: &[Scenario]) -> ProbabilityMap {
    let rows = ctx.from_line().rows();
    let cols = ctx.from_line().cols();
    let mut pm = ProbabilityMap::new(rows, cols);
    for s in scenarios {
        pm.accumulate(&ctx.simulate_line(s));
    }
    pm
}

/// Genome-level convenience: decodes then aggregates.
pub fn statistical_stage_genomes(ctx: &StepContext, genomes: &[Vec<f64>]) -> ProbabilityMap {
    let scenarios: Vec<Scenario> = genomes.iter().map(|g| ScenarioSpace.decode(g)).collect();
    statistical_stage(ctx, &scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firelib::sim::centre_ignition;
    use firelib::{FireSim, Terrain};
    use std::sync::Arc;

    fn ctx() -> StepContext {
        let sim = Arc::new(FireSim::new(Terrain::uniform(21, 21, 100.0)));
        let from = centre_ignition(21, 21);
        let truth = Scenario::reference();
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 30.0);
        StepContext::new(sim, from, target, 0.0, 30.0)
    }

    #[test]
    fn sample_count_matches_result_set() {
        let c = ctx();
        let scenarios = vec![Scenario::reference(); 5];
        let pm = statistical_stage(&c, &scenarios);
        assert_eq!(pm.samples(), 5);
    }

    #[test]
    fn identical_scenarios_give_binary_matrix() {
        let c = ctx();
        let pm = statistical_stage(&c, &vec![Scenario::reference(); 4]);
        for r in 0..21 {
            for col in 0..21 {
                let p = pm.probability(r, col);
                assert!(p == 0.0 || p == 1.0, "expected consensus matrix, got {p}");
            }
        }
    }

    #[test]
    fn ignition_cell_has_probability_one() {
        let c = ctx();
        let scenarios = vec![
            Scenario::reference(),
            Scenario {
                wind_dir_deg: 270.0,
                ..Scenario::reference()
            },
            Scenario {
                wind_speed_mph: 20.0,
                ..Scenario::reference()
            },
        ];
        let pm = statistical_stage(&c, &scenarios);
        // The initial burning cell burns in every simulation.
        assert_eq!(pm.probability(10, 10), 1.0);
    }

    #[test]
    fn divergent_scenarios_create_fractional_cells() {
        let c = ctx();
        let scenarios = vec![
            Scenario {
                wind_speed_mph: 25.0,
                wind_dir_deg: 0.0,
                ..Scenario::reference()
            },
            Scenario {
                wind_speed_mph: 25.0,
                wind_dir_deg: 180.0,
                ..Scenario::reference()
            },
        ];
        let pm = statistical_stage(&c, &scenarios);
        let grid = pm.to_grid();
        let fractional = grid
            .as_slice()
            .iter()
            .filter(|&&p| p > 0.0 && p < 1.0)
            .count();
        assert!(fractional > 0, "opposed winds must disagree somewhere");
    }

    #[test]
    fn genome_variant_agrees_with_scenario_variant() {
        let c = ctx();
        let scenarios = vec![
            Scenario::reference(),
            Scenario {
                model: 3,
                ..Scenario::reference()
            },
        ];
        let genomes: Vec<Vec<f64>> = scenarios
            .iter()
            .map(|s| ScenarioSpace.encode(s).to_vec())
            .collect();
        assert_eq!(
            statistical_stage(&c, &scenarios),
            statistical_stage_genomes(&c, &genomes)
        );
    }
}
