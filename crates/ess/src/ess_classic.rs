//! ESS — the original Evolutionary Statistical System baseline (paper
//! §II-A, Fig. 1).
//!
//! One Master drives a fitness-guided genetic algorithm; Workers evaluate
//! scenarios; the Optimization Stage's output is **the final evolved
//! population** ("the solutions of the last generated population are used
//! to select the set of solutions to be used in the prediction stages",
//! §II-B) — exactly the design whose convergence-induced loss of diversity
//! motivates ESS-NS.

use crate::fitness::ScenarioEvaluator;
use crate::pipeline::{OptimizeOutcome, StepOptimizer};
use evoalg::{GaConfig, GaEngine};
use firelib::GENE_COUNT;

/// Configuration of the ESS baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssConfig {
    /// Population size `N`.
    pub population_size: usize,
    /// Offspring per generation `m`.
    pub offspring: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Crossover probability.
    pub crossover_rate: f64,
    /// Maximum generations per prediction step.
    pub max_generations: u32,
    /// Early-stop fitness threshold.
    pub fitness_threshold: f64,
}

impl Default for EssConfig {
    fn default() -> Self {
        Self {
            population_size: 32,
            offspring: 32,
            mutation_rate: 0.1,
            crossover_rate: 0.9,
            max_generations: 12,
            fitness_threshold: 0.95,
        }
    }
}

/// The ESS baseline optimizer.
#[derive(Debug, Clone)]
pub struct EssClassic {
    config: EssConfig,
}

impl EssClassic {
    /// Builds the baseline with `config`.
    pub fn new(config: EssConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EssConfig {
        &self.config
    }
}

impl Default for EssClassic {
    fn default() -> Self {
        Self::new(EssConfig::default())
    }
}

impl StepOptimizer for EssClassic {
    fn name(&self) -> &'static str {
        "ESS"
    }

    fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, seed: u64) -> OptimizeOutcome {
        let cfg = GaConfig {
            population_size: self.config.population_size,
            offspring: self.config.offspring,
            mutation_rate: self.config.mutation_rate,
            crossover_rate: self.config.crossover_rate,
            seed,
        };
        let mut engine = GaEngine::new(GENE_COUNT, cfg);
        let mut stats = engine.evaluate_initial(evaluator);
        // Both stopping conditions of the family: generation budget and
        // fitness threshold.
        while engine.generation() < self.config.max_generations
            && stats.best_fitness < self.config.fitness_threshold
        {
            stats = engine.step(evaluator);
        }
        OptimizeOutcome {
            result_set: engine.population().genomes(),
            best_fitness: stats.best_fitness,
            generations: engine.generation(),
            evaluations: engine.evaluations(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::tiny_test_case;
    use crate::fitness::{EvalBackend, StepContext};
    use std::sync::Arc;

    fn step_evaluator() -> ScenarioEvaluator {
        let case = tiny_test_case();
        let ctx = Arc::new(StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[0].clone(),
            case.fire_lines[1].clone(),
            case.times[0],
            case.times[1],
        ));
        ScenarioEvaluator::new(ctx, EvalBackend::Serial)
    }

    #[test]
    fn finds_a_reasonable_scenario() {
        // The landscape is sparse (a wrong fuel model scores ≈ 0), so give
        // the GA a real budget and require it to clearly beat the random
        // baseline (~0.1 at this budget on this case).
        let mut ess = EssClassic::new(EssConfig {
            population_size: 32,
            offspring: 32,
            max_generations: 15,
            ..EssConfig::default()
        });
        let mut eval = step_evaluator();
        let out = ess.optimize(&mut eval, 5);
        assert!(
            out.best_fitness > 0.25,
            "GA should find some signal, got {}",
            out.best_fitness
        );
        assert_eq!(out.result_set.len(), 32);
        assert!(out.evaluations >= 32);
    }

    #[test]
    fn early_stops_at_threshold() {
        let mut ess = EssClassic::new(EssConfig {
            population_size: 16,
            offspring: 16,
            max_generations: 50,
            fitness_threshold: 0.05, // trivially reachable
            ..EssConfig::default()
        });
        let mut eval = step_evaluator();
        let out = ess.optimize(&mut eval, 6);
        assert!(
            out.generations < 50,
            "threshold stop never fired ({} generations)",
            out.generations
        );
    }

    #[test]
    fn respects_generation_budget() {
        let mut ess = EssClassic::new(EssConfig {
            population_size: 8,
            offspring: 8,
            max_generations: 3,
            fitness_threshold: 2.0, // unreachable
            ..EssConfig::default()
        });
        let mut eval = step_evaluator();
        let out = ess.optimize(&mut eval, 7);
        assert_eq!(out.generations, 3);
        // initial N + 3 × m
        assert_eq!(out.evaluations, 8 + 3 * 8);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut ess = EssClassic::default();
            let mut eval = step_evaluator();
            ess.optimize(&mut eval, seed).result_set
        };
        assert_eq!(run(9), run(9));
    }
}
