//! The prediction-step driver shared by every system (the outer loop of
//! Figs. 1 and 3).
//!
//! For each prediction step `i ≥ 1` the pipeline:
//!
//! 1. runs the **Optimization Stage** on the just-observed interval
//!    `[t_{i-1}, t_i]` (pluggable [`StepOptimizer`]);
//! 2. runs the **Statistical Stage** twice over the optimizer's result
//!    set: on the observed interval (for calibration) and on the upcoming
//!    interval `[t_i, t_{i+1}]` (for prediction);
//! 3. runs the **Calibration Stage** (`SKign`) on the observed interval,
//!    producing `Kign_i`;
//! 4. runs the **Prediction Stage** for instant `t_{i+1}` using the
//!    *previous* step's `Kign_{i-1}` ("the new value Kign is used within
//!    the PS of the next prediction step; therefore, the prediction cannot
//!    start at the first time instant", §II-A).
//!
//! The first observed interval (step 1) only calibrates; predictions are
//! emitted from instant `t_2` onwards.

use crate::calibration::{skign_search, PredictionStage};
use crate::cases::BurnCase;
use crate::fitness::{EvalBackend, ScenarioEvaluator, SharedScenarioPool, StepContext};
use crate::stages::statistical_stage_genomes;
use evoalg::diversity::{self, DiversityReport};
use firelib::Kernel;
use parworker::Stopwatch;
use std::sync::Arc;

/// What an Optimization Stage hands back to the pipeline.
#[derive(Debug, Clone)]
pub struct OptimizeOutcome {
    /// The scenario set fed to the Statistical Stage — the final population
    /// for the baselines, `bestSet` for ESS-NS.
    pub result_set: Vec<Vec<f64>>,
    /// Best fitness seen during the search.
    pub best_fitness: f64,
    /// Generations executed.
    pub generations: u32,
    /// Scenario evaluations (simulations) performed.
    pub evaluations: u64,
}

/// A pluggable Optimization Stage. Implementations own their metaheuristic
/// configuration; the pipeline provides the per-step evaluation context.
/// `Send` so a scheduler can drive concurrent sessions' steps on worker
/// threads (the fused evaluation round).
pub trait StepOptimizer: Send {
    /// System name (report key, e.g. `"ESS-NS"`).
    fn name(&self) -> &'static str;

    /// Runs the search for one prediction step. `seed` varies per step and
    /// per replicate so repeated runs are independent but reproducible.
    fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, seed: u64) -> OptimizeOutcome;
}

/// Per-step record: everything the E-series experiments report.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// Step index `i` (the step observed `[t_{i-1}, t_i]`).
    pub step: usize,
    /// Prediction quality (Eq. (3)) of `PFL_{t_{i+1}}` against
    /// `RFL_{t_{i+1}}`, `None` for the first step (no `Kign` yet) and the
    /// final step (nothing left to predict).
    pub quality: Option<f64>,
    /// Calibration outcome of this step.
    pub kign: f64,
    /// Fitness at the calibrated threshold.
    pub calibration_fitness: f64,
    /// Best fitness the optimizer found on the observed interval.
    pub os_best_fitness: f64,
    /// Diversity of the result set handed to the Statistical Stage (E2).
    pub diversity: DiversityReport,
    /// Scenario evaluations spent in this step.
    pub evaluations: u64,
    /// Generations the optimizer ran.
    pub generations: u32,
    /// Wall-clock milliseconds of the whole step.
    pub wall_ms: f64,
}

/// A full prediction run over a burn case.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// System name.
    pub system: &'static str,
    /// Case name.
    pub case: &'static str,
    /// Per-step records.
    pub steps: Vec<StepReport>,
    /// Total wall-clock milliseconds.
    pub total_ms: f64,
}

impl RunReport {
    /// Mean prediction quality over the steps that produced predictions.
    pub fn mean_quality(&self) -> f64 {
        let qs: Vec<f64> = self.steps.iter().filter_map(|s| s.quality).collect();
        if qs.is_empty() {
            0.0
        } else {
            qs.iter().sum::<f64>() / qs.len() as f64
        }
    }

    /// The quality series as `(predicted instant index, quality)` pairs.
    pub fn quality_series(&self) -> Vec<(usize, f64)> {
        self.steps
            .iter()
            .filter_map(|s| s.quality.map(|q| (s.step + 1, q)))
            .collect()
    }

    /// Total scenario evaluations across steps.
    pub fn total_evaluations(&self) -> u64 {
        self.steps.iter().map(|s| s.evaluations).sum()
    }

    /// Mean result-set diversity (mean pairwise genotypic distance).
    pub fn mean_diversity(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.steps
            .iter()
            .map(|s| s.diversity.mean_pairwise)
            .sum::<f64>()
            / self.steps.len() as f64
    }
}

/// How a [`StepDriver`] obtains the scenario evaluator for each step:
/// either by building a fresh backend from a spec per step (the classic
/// batch behaviour — each run owns its workers), or by borrowing a
/// [`SharedScenarioPool`] that many concurrent sessions multiplex over
/// (the serving deployment — one worker pool for the whole process).
///
/// Both strategies run the identical pure work function, so for a given
/// seed the produced reports are bit-identical; only thread ownership and
/// wall time differ.
#[derive(Clone)]
pub enum EvalStrategy {
    /// Build a private backend from this spec for every step.
    PerStep(EvalBackend),
    /// Evaluate on a process-wide shared pool.
    Shared(Arc<SharedScenarioPool>),
}

impl EvalStrategy {
    /// Builds the evaluator for one step's context.
    fn evaluator(&self, ctx: Arc<StepContext>) -> ScenarioEvaluator {
        match self {
            EvalStrategy::PerStep(spec) => ScenarioEvaluator::new(ctx, *spec),
            EvalStrategy::Shared(pool) => ScenarioEvaluator::shared(ctx, Arc::clone(pool)),
        }
    }

    /// Report name of the underlying backend.
    pub fn backend_name(&self) -> String {
        match self {
            EvalStrategy::PerStep(spec) => spec.name(),
            EvalStrategy::Shared(pool) => format!("shared:{}", pool.name()),
        }
    }
}

/// Derives the per-step RNG seed (SplitMix64 over the packed indices, so
/// neighbouring steps get uncorrelated streams).
fn step_seed(base_seed: u64, step: usize) -> u64 {
    let mut z = base_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(step as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The resumable step engine under every run: owns the burn case, the
/// carried `Kign` and the step index, and executes exactly one prediction
/// step per [`StepDriver::step`] call. [`PredictionPipeline::run`] is a
/// loop over this driver; the `service` crate's `PredictionSession` drives
/// the same struct incrementally — one implementation, so the batch and
/// session paths are bit-identical by construction.
pub struct StepDriver {
    case: BurnCase,
    strategy: EvalStrategy,
    base_seed: u64,
    carried_kign: Option<f64>,
    /// Propagation kernel every simulation in this run uses. Purely a
    /// performance choice: all kernels produce bit-identical rasters.
    kernel: Kernel,
    /// Next interval index to observe (the loop variable `i`; starts at 1).
    next: usize,
}

impl StepDriver {
    /// Builds a driver positioned before the first prediction step.
    pub fn new(case: BurnCase, strategy: EvalStrategy, base_seed: u64) -> Self {
        Self {
            case,
            strategy,
            base_seed,
            carried_kign: None,
            kernel: Kernel::Bucket,
            next: 1,
        }
    }

    /// Selects the propagation kernel every simulation in this run uses
    /// (default [`Kernel::Bucket`]). Rasters are bit-identical across
    /// kernels, so this never changes a prediction — only its wall time.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.set_kernel(kernel);
        self
    }

    /// In-place form of [`StepDriver::with_kernel`], for callers holding
    /// the driver behind a mutable borrow (e.g. inside a session).
    pub fn set_kernel(&mut self, kernel: Kernel) {
        self.kernel = kernel;
    }

    /// The propagation kernel this driver's simulations use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Rebuilds a driver positioned *after* `completed` prediction steps,
    /// carrying `carried_kign` from the last completed step — the
    /// checkpoint/resume hook. Per-step seeds are a pure function of
    /// `base_seed` and the step index ([`step_seed`]) and every optimizer
    /// builds a fresh engine per step, so a restored driver replays the
    /// exact seed stream the uninterrupted run would have used: the
    /// remaining steps are bit-identical by construction.
    ///
    /// # Panics
    /// Panics when `completed` exceeds the case's step count, or when
    /// `carried_kign` presence disagrees with `completed` (steps ≥ 1 have
    /// always calibrated a `Kign`; step 0 never has).
    pub fn restore(
        case: BurnCase,
        strategy: EvalStrategy,
        base_seed: u64,
        completed: usize,
        carried_kign: Option<f64>,
    ) -> Self {
        let total = case.intervals().saturating_sub(1);
        assert!(
            completed <= total,
            "cannot restore {completed} completed steps on a {total}-step case"
        );
        assert_eq!(
            carried_kign.is_some(),
            completed >= 1,
            "carried Kign must be present exactly when steps have completed"
        );
        Self {
            case,
            strategy,
            base_seed,
            carried_kign,
            kernel: Kernel::Bucket,
            next: completed + 1,
        }
    }

    /// The `Kign` calibrated by the last completed step (`None` before the
    /// first step) — the only cross-step optimizer-independent state, so a
    /// checkpoint is `(base_seed, completed, carried_kign)`.
    pub fn carried_kign(&self) -> Option<f64> {
        self.carried_kign
    }

    /// The burn case being predicted.
    pub fn case(&self) -> &BurnCase {
        &self.case
    }

    /// How the driver evaluates scenario batches.
    pub fn strategy(&self) -> &EvalStrategy {
        &self.strategy
    }

    /// Total prediction steps a full run executes (`intervals − 1`).
    pub fn total_steps(&self) -> usize {
        self.case.intervals().saturating_sub(1)
    }

    /// Steps already executed.
    pub fn completed(&self) -> usize {
        self.next - 1
    }

    /// True once every step has run.
    pub fn is_finished(&self) -> bool {
        self.next >= self.case.intervals()
    }

    /// Executes the next prediction step with `optimizer`, or returns
    /// `None` when the run is complete.
    ///
    /// The last interval's observation exists (we know RFL at every
    /// instant), but predicting *beyond* the final instant would have no
    /// ground truth; so step `i` ranges over intervals `1..n`, and the
    /// prediction for `t_{i+1}` is only scored while `i+1` is still an
    /// observed interval.
    pub fn step(&mut self, optimizer: &mut dyn StepOptimizer) -> Option<StepReport> {
        let strategy = self.strategy.clone();
        self.step_with(optimizer, |ctx| strategy.evaluator(ctx))
    }

    /// [`StepDriver::step`] with the evaluator supplied by the caller —
    /// the fused-round entry point, where the scheduler hands each
    /// session an evaluator whose backend parks batches with the round's
    /// fusion coordinator instead of dispatching them itself. Everything
    /// else (seeding, stages, reporting) is the `step` body, so a fused
    /// step is bit-identical to an unfused one whenever the supplied
    /// evaluator scores batches identically.
    pub fn step_with(
        &mut self,
        optimizer: &mut dyn StepOptimizer,
        make_evaluator: impl FnOnce(Arc<StepContext>) -> ScenarioEvaluator,
    ) -> Option<StepReport> {
        if self.is_finished() {
            return None;
        }
        let i = self.next;
        let case = &self.case;
        let sw = Stopwatch::start();
        // --- Optimization Stage on [t_{i-1}, t_i] ------------------------
        let observed_ctx = Arc::new(
            StepContext::new(
                Arc::clone(&case.sim),
                case.fire_lines[i - 1].clone(),
                case.fire_lines[i].clone(),
                case.times[i - 1],
                case.times[i],
            )
            .with_kernel(self.kernel),
        );
        let mut evaluator = make_evaluator(Arc::clone(&observed_ctx));
        let outcome = optimizer.optimize(&mut evaluator, step_seed(self.base_seed, i));

        // --- Statistical Stage (calibration matrix) ----------------------
        let cal_matrix = statistical_stage_genomes(&observed_ctx, &outcome.result_set);

        // --- Calibration Stage: SKign on the observed interval -----------
        let cal = skign_search(
            &cal_matrix,
            &case.fire_lines[i],
            Some(&case.fire_lines[i - 1]),
        );

        // --- Statistical + Prediction Stage for t_{i+1} ------------------
        let quality = match self.carried_kign {
            Some(kign) => {
                let next_ctx = StepContext::new(
                    Arc::clone(&case.sim),
                    case.fire_lines[i].clone(),
                    case.fire_lines[i + 1].clone(),
                    case.times[i],
                    case.times[i + 1],
                )
                .with_kernel(self.kernel);
                let pred_matrix = statistical_stage_genomes(&next_ctx, &outcome.result_set);
                let ps = PredictionStage::new(kign);
                Some(ps.quality(
                    &pred_matrix,
                    &case.fire_lines[i + 1],
                    Some(&case.fire_lines[i]),
                ))
            }
            None => None,
        };

        self.carried_kign = Some(cal.kign);
        self.next = i + 1;
        Some(StepReport {
            step: i,
            quality,
            kign: cal.kign,
            calibration_fitness: cal.fitness,
            os_best_fitness: outcome.best_fitness,
            diversity: diversity::report(&outcome.result_set),
            evaluations: outcome.evaluations,
            generations: outcome.generations,
            wall_ms: sw.elapsed_ms(),
        })
    }
}

/// The prediction pipeline: drives a [`StepOptimizer`] across every
/// interval of a burn case.
pub struct PredictionPipeline {
    backend: EvalBackend,
    /// Base seed; step `i` of replicate `r` uses `base ⊕ hash(i, r)`.
    base_seed: u64,
    /// Propagation kernel for every simulation (a pure perf knob).
    kernel: Kernel,
}

impl PredictionPipeline {
    /// Builds a pipeline running scenario evaluation on `backend`.
    pub fn new(backend: EvalBackend, base_seed: u64) -> Self {
        Self {
            backend,
            base_seed,
            kernel: Kernel::Bucket,
        }
    }

    /// Selects the propagation kernel (default [`Kernel::Bucket`]); rasters
    /// are kernel-independent, so this only changes wall time.
    #[must_use]
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// A resumable [`StepDriver`] over `case` with this pipeline's backend
    /// and seed — the incremental counterpart of [`PredictionPipeline::run`].
    pub fn driver(&self, case: BurnCase) -> StepDriver {
        StepDriver::new(case, EvalStrategy::PerStep(self.backend), self.base_seed)
            .with_kernel(self.kernel)
    }

    /// Runs the full predictive process of one system over one case — a
    /// drained [`StepDriver`].
    pub fn run(&self, case: &BurnCase, optimizer: &mut dyn StepOptimizer) -> RunReport {
        let total = Stopwatch::start();
        let mut driver = self.driver(case.clone());
        let mut steps = Vec::with_capacity(driver.total_steps());
        while let Some(step) = driver.step(optimizer) {
            steps.push(step);
        }
        RunReport {
            system: optimizer.name(),
            case: case.name,
            steps,
            total_ms: total.elapsed_ms(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::tiny_test_case;
    use firelib::ScenarioSpace;

    /// An oracle optimizer that returns the hidden truth — the pipeline's
    /// upper bound. Used to validate the stage plumbing end to end.
    struct Oracle {
        truth_genes: Vec<f64>,
    }

    impl StepOptimizer for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }

        fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, _seed: u64) -> OptimizeOutcome {
            let fit = evaluator.context().fitness_of_genome(&self.truth_genes);
            OptimizeOutcome {
                result_set: vec![self.truth_genes.clone()],
                best_fitness: fit,
                generations: 0,
                evaluations: 1,
            }
        }
    }

    /// A random-search optimizer: the floor every real method must beat.
    struct RandomSearch {
        budget: usize,
    }

    impl StepOptimizer for RandomSearch {
        fn name(&self) -> &'static str {
            "random"
        }

        fn optimize(&mut self, evaluator: &mut ScenarioEvaluator, seed: u64) -> OptimizeOutcome {
            use evoalg::BatchEvaluator;
            use rand::{rngs::StdRng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let genomes: Vec<Vec<f64>> = (0..self.budget)
                .map(|_| ScenarioSpace.sample_genes(&mut rng).to_vec())
                .collect();
            let fitness = evaluator.evaluate(&genomes);
            let mut scored: Vec<(f64, Vec<f64>)> = fitness.into_iter().zip(genomes).collect();
            scored.sort_by(|a, b| b.0.total_cmp(&a.0));
            let best_fitness = scored[0].0;
            OptimizeOutcome {
                result_set: scored.into_iter().take(8).map(|(_, g)| g).collect(),
                best_fitness,
                generations: 1,
                evaluations: self.budget as u64,
            }
        }
    }

    #[test]
    fn oracle_achieves_high_quality_on_static_case() {
        let case = tiny_test_case();
        // Static truth: every interval shares the same scenario.
        let genes = ScenarioSpace.encode(&case.truth[0]).to_vec();
        let mut oracle = Oracle { truth_genes: genes };
        let report = PredictionPipeline::new(EvalBackend::Serial, 1).run(&case, &mut oracle);
        // Steps: intervals 1..n-1; first one has no quality.
        assert_eq!(report.steps.len(), case.intervals() - 1);
        assert!(report.steps[0].quality.is_none());
        for s in &report.steps[1..] {
            let q = s.quality.expect("prediction expected after first step");
            assert!(
                q > 0.99,
                "oracle prediction should be near-perfect, got {q}"
            );
        }
        assert!((report.steps[0].os_best_fitness - 1.0).abs() < 1e-9);
        assert!((report.steps[0].calibration_fitness - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_search_beats_nothing_but_runs() {
        let case = tiny_test_case();
        let mut rs = RandomSearch { budget: 30 };
        let report = PredictionPipeline::new(EvalBackend::Serial, 2).run(&case, &mut rs);
        assert_eq!(report.system, "random");
        assert!(report.total_evaluations() >= 60);
        for s in &report.steps {
            assert!((0.0..=1.0).contains(&s.kign));
            assert!(s.os_best_fitness >= 0.0);
        }
    }

    #[test]
    fn oracle_beats_random_on_mean_quality() {
        let case = tiny_test_case();
        let genes = ScenarioSpace.encode(&case.truth[0]).to_vec();
        let oracle_q = PredictionPipeline::new(EvalBackend::Serial, 3)
            .run(&case, &mut Oracle { truth_genes: genes })
            .mean_quality();
        let random_q = PredictionPipeline::new(EvalBackend::Serial, 3)
            .run(&case, &mut RandomSearch { budget: 10 })
            .mean_quality();
        assert!(
            oracle_q >= random_q,
            "oracle ({oracle_q}) must dominate random search ({random_q})"
        );
    }

    #[test]
    fn pipeline_is_deterministic_given_seed() {
        let case = tiny_test_case();
        let run = |seed| {
            let mut rs = RandomSearch { budget: 20 };
            let r = PredictionPipeline::new(EvalBackend::Serial, seed).run(&case, &mut rs);
            r.steps
                .iter()
                .map(|s| (s.quality, s.kign))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn driver_steps_match_batch_run_bit_for_bit() {
        let case = tiny_test_case();
        let pipeline = PredictionPipeline::new(EvalBackend::Serial, 5);
        let batch = pipeline.run(&case, &mut RandomSearch { budget: 15 });

        let mut driver = pipeline.driver(case.clone());
        assert_eq!(driver.total_steps(), case.intervals() - 1);
        assert!(!driver.is_finished());
        let mut opt = RandomSearch { budget: 15 };
        let mut steps = Vec::new();
        while let Some(s) = driver.step(&mut opt) {
            assert_eq!(driver.completed(), steps.len() + 1);
            steps.push(s);
        }
        assert!(driver.is_finished());
        assert!(driver.step(&mut opt).is_none(), "finished driver must idle");

        assert_eq!(steps.len(), batch.steps.len());
        for (a, b) in steps.iter().zip(&batch.steps) {
            assert_eq!(a.step, b.step);
            assert_eq!(a.quality, b.quality);
            assert_eq!(a.kign, b.kign);
            assert_eq!(a.calibration_fitness, b.calibration_fitness);
            assert_eq!(a.os_best_fitness, b.os_best_fitness);
            assert_eq!(a.evaluations, b.evaluations);
            assert_eq!(a.generations, b.generations);
        }
    }

    #[test]
    fn shared_strategy_matches_per_step_strategy() {
        use crate::fitness::SharedScenarioPool;
        let case = tiny_test_case();
        let run_with = |strategy: EvalStrategy| {
            let mut driver = StepDriver::new(case.clone(), strategy, 9);
            let mut opt = RandomSearch { budget: 12 };
            let mut out = Vec::new();
            while let Some(s) = driver.step(&mut opt) {
                out.push((s.quality, s.kign, s.os_best_fitness));
            }
            out
        };
        let private = run_with(EvalStrategy::PerStep(EvalBackend::Serial));
        let pool = Arc::new(SharedScenarioPool::new(EvalBackend::WorkerPool(2)));
        let shared = run_with(EvalStrategy::Shared(pool));
        assert_eq!(private, shared, "shared pool diverged from private");
    }

    #[test]
    fn restored_driver_replays_the_remaining_steps_bit_for_bit() {
        let case = tiny_test_case();
        let full = |seed| {
            let mut driver = StepDriver::new(
                case.clone(),
                EvalStrategy::PerStep(EvalBackend::Serial),
                seed,
            );
            let mut opt = RandomSearch { budget: 15 };
            let mut out = Vec::new();
            while let Some(s) = driver.step(&mut opt) {
                out.push((s.quality, s.kign, s.os_best_fitness, s.evaluations));
            }
            out
        };
        let reference = full(11);
        for checkpoint in 0..reference.len() {
            let mut driver =
                StepDriver::new(case.clone(), EvalStrategy::PerStep(EvalBackend::Serial), 11);
            let mut opt = RandomSearch { budget: 15 };
            for _ in 0..checkpoint {
                driver.step(&mut opt).expect("prefix step");
            }
            // Restore a *fresh* driver (and a fresh optimizer) from the
            // checkpoint coordinates alone.
            let mut resumed = StepDriver::restore(
                case.clone(),
                EvalStrategy::PerStep(EvalBackend::Serial),
                11,
                driver.completed(),
                driver.carried_kign(),
            );
            assert_eq!(resumed.completed(), checkpoint);
            let mut opt = RandomSearch { budget: 15 };
            let mut tail = Vec::new();
            while let Some(s) = resumed.step(&mut opt) {
                tail.push((s.quality, s.kign, s.os_best_fitness, s.evaluations));
            }
            assert_eq!(
                tail,
                reference[checkpoint..],
                "resume at step {checkpoint} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot restore")]
    fn restore_rejects_too_many_completed_steps() {
        let case = tiny_test_case();
        let total = case.intervals() - 1;
        let _ = StepDriver::restore(
            case.clone(),
            EvalStrategy::PerStep(EvalBackend::Serial),
            1,
            total + 1,
            Some(0.5),
        );
    }

    #[test]
    fn step_seeds_differ_per_step() {
        let seeds: Vec<u64> = (0..10).map(|i| step_seed(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }
}
