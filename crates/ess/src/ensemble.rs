//! Ensemble burn-probability forecasts over workloads.
//!
//! The ROADMAP's ensemble direction starts here: instead of one truth
//! trajectory, run `N` *perturbed-seed replicates* of a workload — each
//! replicate jitters the per-interval truth scenarios with a deterministic,
//! seed-derived perturbation (wind gusting, direction veer, fuel-moisture
//! measurement error) — and fold the final fire lines into a
//! [`ProbabilityMap`]: each cell's value is the fraction of replicates that
//! burned it, i.e. an ignition-probability surface under input uncertainty.
//! The fold reuses the Statistical Stage's aggregation structure verbatim,
//! so thresholding with a Key Ignition Value yields an ensemble fire-line
//! forecast exactly like the per-step predictions do.
//!
//! Everything is a pure function of `(spec, replicates, seed)`: same
//! inputs, bit-identical probability map, on any machine.

use firelib::scenario::PARAM_DEFS;
use firelib::workload::WorkloadSpec;
use firelib::Scenario;
use landscape::{FireLine, ProbabilityMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum wind-speed perturbation per replicate (mph, either sign).
const WIND_SPEED_JITTER_MPH: f64 = 1.5;
/// Maximum wind-direction perturbation per replicate (degrees, either sign).
const WIND_DIR_JITTER_DEG: f64 = 15.0;
/// Maximum 1-hour dead-moisture perturbation per replicate (percent).
const M1_JITTER_PCT: f64 = 1.0;

/// One ensemble forecast: the folded probability surface plus the replicate
/// artifacts it was folded from (exposed so callers — and the pin tests —
/// can audit exactly which trajectories produced the surface).
#[derive(Debug, Clone)]
pub struct EnsembleForecast {
    /// Per-cell burn probability over the replicates.
    pub probability: ProbabilityMap,
    /// The perturbed truth of each replicate, one scenario per interval.
    pub truths: Vec<Vec<Scenario>>,
    /// The final fire line of each replicate (the lines that were folded).
    pub final_lines: Vec<FireLine>,
}

/// The perturbed truth trajectory of one replicate: every interval's
/// scenario gets seed-derived jitter on wind speed, wind direction and
/// 1-hour dead moisture, clamped to the Table I parameter ranges so each
/// replicate stays a valid scenario. Deterministic in
/// `(truth, replicate, seed)`.
pub fn perturbed_truth(truth: &[Scenario], replicate: u32, seed: u64) -> Vec<Scenario> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (replicate as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut centred = |spread: f64| (rng.random::<f64>() * 2.0 - 1.0) * spread;
    truth
        .iter()
        .map(|s| Scenario {
            wind_speed_mph: (s.wind_speed_mph + centred(WIND_SPEED_JITTER_MPH))
                .clamp(PARAM_DEFS[1].lo, PARAM_DEFS[1].hi),
            wind_dir_deg: landscape::geometry::normalize_azimuth(
                s.wind_dir_deg + centred(WIND_DIR_JITTER_DEG),
            ),
            m1_pct: (s.m1_pct + centred(M1_JITTER_PCT)).clamp(PARAM_DEFS[3].lo, PARAM_DEFS[3].hi),
            ..*s
        })
        .collect()
}

/// Runs `replicates` perturbed-truth replicates of `spec` and folds their
/// final fire lines into a burn-probability map.
///
/// # Panics
/// Panics when `replicates` is zero (an empty ensemble has no surface).
pub fn ensemble_probability(spec: &WorkloadSpec, replicates: usize, seed: u64) -> EnsembleForecast {
    ensemble_probability_par(spec, replicates, seed, 1)
}

/// [`ensemble_probability`] with the replicate trajectories simulated on
/// `workers` threads. Each replicate is an independent pure function of
/// `(spec, k, seed)`, so they parallelize embarrassingly; the probability
/// fold then runs **sequentially in replicate order** over the collected
/// final lines, so the surface is bit-identical to the serial fold (the
/// fold is a commutative integer count, but keeping the order fixed makes
/// the guarantee unconditional). `workers == 0` uses all available cores.
///
/// # Panics
/// Panics when `replicates` is zero (an empty ensemble has no surface).
pub fn ensemble_probability_par(
    spec: &WorkloadSpec,
    replicates: usize,
    seed: u64,
    workers: usize,
) -> EnsembleForecast {
    assert!(replicates > 0, "an ensemble needs at least one replicate");
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let w = spec.build();
    let sim = w.sim();
    // Parallel phase: each replicate simulates its own trajectory and
    // returns (truth, final line). `scoped_chunk_map` preserves index
    // order, so replicate k lands at index k regardless of which worker
    // ran it.
    let runs = parworker::scoped_chunk_map(workers, replicates, 1, |k| {
        let truth = perturbed_truth(&w.truth, k as u32, seed);
        let lines = w.lines_for(&sim, &truth);
        let last = lines.last().expect("lines_for is non-empty").clone();
        (truth, last)
    });
    // Sequential fold in replicate order — bit-identical to the serial loop.
    let mut probability = ProbabilityMap::new(w.terrain.rows(), w.terrain.cols());
    let mut truths = Vec::with_capacity(replicates);
    let mut final_lines = Vec::with_capacity(replicates);
    for (truth, last) in runs {
        probability.accumulate(&last);
        truths.push(truth);
        final_lines.push(last);
    }
    EnsembleForecast {
        probability,
        truths,
        final_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> WorkloadSpec {
        firelib::workload::meadow_small().shrunk(24)
    }

    #[test]
    fn three_replicate_fold_matches_hand_computation() {
        // Pin the fold: recompute the three replicate trajectories by hand
        // (same primitives, called explicitly) and count, cell by cell, how
        // many replicates burned each cell. The ensemble's probability must
        // be exactly count/3 everywhere.
        let spec = small_spec();
        let fc = ensemble_probability(&spec, 3, 42);
        assert_eq!(fc.probability.samples(), 3);
        assert_eq!(fc.final_lines.len(), 3);

        let w = spec.build();
        let sim = w.sim();
        let mut hand_lines = Vec::new();
        for k in 0..3u32 {
            let truth = perturbed_truth(&w.truth, k, 42);
            assert_eq!(truth, fc.truths[k as usize], "replicate {k} truth");
            let lines = w.lines_for(&sim, &truth);
            hand_lines.push(lines.last().unwrap().clone());
        }
        let rows = w.terrain.rows();
        let cols = w.terrain.cols();
        for r in 0..rows {
            for c in 0..cols {
                let count = hand_lines.iter().filter(|l| l.is_burned(r, c)).count();
                let expected = count as f64 / 3.0;
                assert!(
                    (fc.probability.probability(r, c) - expected).abs() < 1e-15,
                    "cell ({r},{c}): expected {expected}, got {}",
                    fc.probability.probability(r, c)
                );
            }
        }
        // The ignition cell burns in every replicate (probability exactly 1),
        // and an untouched far corner in none (probability exactly 0).
        let (ir, ic) = {
            let mut it = None;
            for r in 0..rows {
                for c in 0..cols {
                    if w.ignition.is_burned(r, c) {
                        it = Some((r, c));
                    }
                }
            }
            it.expect("workload has an ignition")
        };
        assert_eq!(fc.probability.probability(ir, ic), 1.0);
        let spread: Vec<f64> = fc.probability.distinct_levels();
        assert!(spread.iter().all(|p| {
            let scaled = p * 3.0;
            (scaled - scaled.round()).abs() < 1e-12
        }));
    }

    #[test]
    fn ensemble_is_deterministic_per_seed() {
        let spec = small_spec();
        let a = ensemble_probability(&spec, 3, 7);
        let b = ensemble_probability(&spec, 3, 7);
        let c = ensemble_probability(&spec, 3, 8);
        assert_eq!(a.probability, b.probability);
        assert_eq!(a.truths, b.truths);
        assert_ne!(
            a.truths, c.truths,
            "different seeds must perturb differently"
        );
    }

    #[test]
    fn replicates_stay_valid_scenarios() {
        let spec = small_spec();
        let fc = ensemble_probability(&spec, 5, 123);
        for (k, truth) in fc.truths.iter().enumerate() {
            for (i, s) in truth.iter().enumerate() {
                assert!(s.is_valid(), "replicate {k} interval {i} out of range");
            }
        }
    }

    #[test]
    fn thresholding_the_ensemble_yields_a_forecast_line() {
        let spec = small_spec();
        let fc = ensemble_probability(&spec, 4, 9);
        let consensus = fc.probability.threshold(1.0);
        let any = fc.probability.threshold(1e-9);
        assert!(consensus.is_subset_of(&any), "consensus ⊆ union");
        assert!(consensus.burned_area() >= 1, "ignition burns everywhere");
        for line in &fc.final_lines {
            assert!(consensus.is_subset_of(line), "consensus ⊆ every replicate");
            assert!(line.is_subset_of(&any), "every replicate ⊆ union");
        }
    }

    #[test]
    #[should_panic(expected = "at least one replicate")]
    fn zero_replicates_rejected() {
        let _ = ensemble_probability(&small_spec(), 0, 1);
    }

    #[test]
    fn parallel_ensemble_is_bit_identical_to_serial() {
        // The whole point of the ordered fold: any worker count yields the
        // exact same forecast, field by field, as the serial path.
        let spec = small_spec();
        let serial = ensemble_probability(&spec, 7, 99);
        for workers in [2, 4, 8, 0] {
            let par = ensemble_probability_par(&spec, 7, 99, workers);
            assert_eq!(serial.probability, par.probability, "workers={workers}");
            assert_eq!(serial.truths, par.truths, "workers={workers}");
            assert_eq!(serial.final_lines, par.final_lines, "workers={workers}");
        }
    }
}
