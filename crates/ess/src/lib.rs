//! `ess` — the Evolutionary Statistical System framework and the baseline
//! prediction systems the paper compares against.
//!
//! The ESS family (paper §II) are Data-Driven Methods with Multiple
//! Overlapping Solutions (DDM-MOS): at every prediction step they search
//! the scenario space with a metaheuristic, aggregate the burned maps of a
//! *set* of scenarios into an ignition-probability matrix, calibrate a Key
//! Ignition Value threshold on the known past step, and emit the
//! thresholded matrix as the next step's prediction. This crate implements
//! that machinery once, with the metaheuristic pluggable, so that ESS,
//! ESSIM-EA, ESSIM-DE and ESS-NS (in the `ess-ns` crate) are all
//! instantiations of the same [`pipeline::PredictionPipeline`]:
//!
//! * [`fitness`] — the per-step evaluation context (simulate a scenario
//!   over the last known interval, score with Eq. (3)) and the
//!   [`fitness::ScenarioEvaluator`], which runs batches on any
//!   [`parworker::Backend`] (Serial / WorkerPool / Rayon, selected at
//!   runtime by [`parworker::EvalBackend`]);
//! * [`fusion`] — cross-session batch fusion: per-session lanes park
//!   their evaluation batches with a round coordinator, which fuses them
//!   into one mega-batch on the shared pool and scatters results back;
//! * [`stages`] — the Statistical Stage (probability-matrix aggregation,
//!   Figs. 1–2 `SS`);
//! * [`calibration`] — the Calibration Stage's `SKign` search (Fig. 1) and
//!   the Prediction Stage threshold application (Fig. 2);
//! * [`pipeline`] — the prediction-step driver shared by every system
//!   (the resumable [`pipeline::StepDriver`] plus the batch
//!   [`pipeline::PredictionPipeline`] wrapper over it), producing per-step
//!   quality/diversity/timing reports;
//! * [`error`] — the [`ServiceError`] taxonomy every name-resolving or
//!   budget-enforcing entry point reports through;
//! * [`ess_classic`] — ESS: fitness-driven GA, result = final population;
//! * [`essim_ea`] — ESSIM-EA: island-model GA with migration and a Monitor
//!   that selects the best island;
//! * [`essim_de`] — ESSIM-DE: island-model Differential Evolution with the
//!   diversity-injection result set and the published tuning operators
//!   (population restart \[21\], IQR-based dynamic tuning \[22\]);
//! * [`cases`] — synthetic controlled burn cases with a *hidden* true
//!   scenario (optionally drifting over time), standing in for the field
//!   burn maps of the original evaluations (see DESIGN.md §1);
//! * [`ensemble`] — ensemble burn-probability forecasts: N perturbed-seed
//!   replicates of a workload folded into a [`landscape::ProbabilityMap`];
//! * [`report`] — aligned text tables and CSV writers for the experiment
//!   harness.

pub mod calibration;
pub mod cases;
pub mod ensemble;
pub mod error;
pub mod ess_classic;
pub mod essim_de;
pub mod essim_ea;
pub mod fitness;
pub mod fusion;
pub mod pipeline;
pub mod report;
pub mod stages;

pub use calibration::{CalibrationOutcome, PredictionStage};
pub use cases::BurnCase;
pub use ensemble::{
    ensemble_probability, ensemble_probability_par, perturbed_truth, EnsembleForecast,
};
pub use error::{BudgetReason, ServiceError};
pub use ess_classic::EssClassic;
pub use essim_de::{EssimDe, TuningConfig};
pub use essim_ea::EssimEa;
pub use fitness::{
    EvalBackend, ScenarioEvaluator, SharedScenarioPool, StepContext, DEFAULT_INLINE_THRESHOLD,
};
pub use fusion::{run_coordinator, FusionLane, LaneGuard, LaneMsg};
pub use pipeline::{
    EvalStrategy, OptimizeOutcome, PredictionPipeline, RunReport, StepDriver, StepOptimizer,
    StepReport,
};
