//! Synthetic controlled burn cases.
//!
//! The original ESS evaluations replay maps from instrumented field burns.
//! Those maps are not publicly available, so each case here generates its
//! real fire lines `RFL_0..RFL_T` by simulating a **hidden true scenario**
//! (optionally drifting between steps — wind shifts, fuel drying) on a
//! terrain. The prediction systems only ever see the fire lines, exactly
//! like the originals; the hidden truth additionally lets tests verify
//! that a perfect optimizer could reach fitness 1 (see DESIGN.md §1 for
//! the substitution argument).

use firelib::sim::centre_ignition;
use firelib::workload::WorkloadSpec;
use firelib::{FireSim, Scenario, Terrain};
use landscape::{FireLine, Grid};
use std::sync::Arc;

/// A controlled burn: terrain plus the observed fire-line sequence.
#[derive(Debug, Clone)]
pub struct BurnCase {
    /// Case identifier (report keys).
    pub name: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The shared simulator over the case terrain.
    pub sim: Arc<FireSim>,
    /// Observation instants `t_0 < t_1 < …` (minutes).
    pub times: Vec<f64>,
    /// Real fire lines, one per instant (`fire_lines[i]` at `times[i]`).
    /// Shared, because the lines are the heavy part of a case (one raster
    /// per instant): cloning a case — which every session owns — is then
    /// reference bumps, not raster copies.
    pub fire_lines: Arc<Vec<FireLine>>,
    /// The hidden truth per interval: `truth[i]` generated
    /// `fire_lines[i+1]` from `fire_lines[i]`. Hidden from optimizers;
    /// exposed for validation and oracle experiments.
    pub truth: Vec<Scenario>,
}

impl BurnCase {
    /// Number of prediction intervals (`times.len() − 1`).
    pub fn intervals(&self) -> usize {
        self.times.len() - 1
    }

    /// Generates a case by simulating `truth[i]` over each interval.
    ///
    /// # Panics
    /// Panics when fewer than 3 instants are given (prediction needs one
    /// calibration step plus one predicted step) or the truth list does not
    /// match the interval count.
    pub fn generate(
        name: &'static str,
        description: &'static str,
        terrain: Terrain,
        ignition: FireLine,
        times: Vec<f64>,
        truth: Vec<Scenario>,
    ) -> Self {
        assert!(
            times.len() >= 3,
            "a burn case needs at least 3 instants (got {})",
            times.len()
        );
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "observation instants must be strictly increasing"
        );
        assert_eq!(
            truth.len(),
            times.len() - 1,
            "one true scenario per interval"
        );
        let sim = Arc::new(FireSim::new(terrain));
        let mut fire_lines = vec![ignition];
        for (i, scenario) in truth.iter().enumerate() {
            let from = fire_lines.last().expect("non-empty");
            let map = sim.simulate(scenario, from, times[i], times[i + 1] - times[i]);
            // The fire state accumulates: everything burned before stays
            // burned (the map only covers this interval's growth).
            let grown = map.fire_line_at(times[i + 1]);
            fire_lines.push(from.union(&grown));
        }
        Self {
            name,
            description,
            sim,
            times,
            fire_lines: Arc::new(fire_lines),
            truth,
        }
    }

    /// Total burned area at the final instant.
    pub fn final_area(&self) -> usize {
        self.fire_lines.last().expect("non-empty").burned_area()
    }
}

/// Standard case dimensions: 64×64 cells of 100 ft.
const N: usize = 64;
const CELL_FT: f64 = 100.0;

fn steps(count: usize, dt: f64) -> Vec<f64> {
    (0..=count).map(|i| i as f64 * dt).collect()
}

/// Easy sanity case: flat short grass, static mild truth.
pub fn grass_uniform() -> BurnCase {
    let truth = Scenario {
        model: 1,
        wind_speed_mph: 6.0,
        wind_dir_deg: 90.0,
        m1_pct: 5.0,
        m10_pct: 7.0,
        m100_pct: 9.0,
        mherb_pct: 100.0,
        slope_deg: 0.0,
        aspect_deg: 0.0,
    };
    BurnCase::generate(
        "grass_uniform",
        "64x64 flat short grass (NFFL 1), static 6 mph easterly truth",
        Terrain::uniform(N, N, CELL_FT),
        centre_ignition(N, N),
        steps(6, 20.0),
        vec![truth; 6],
    )
}

/// Anisotropic case: chaparral on a uniform slope with strong wind.
pub fn chaparral_slope() -> BurnCase {
    let truth = Scenario {
        model: 4,
        wind_speed_mph: 12.0,
        wind_dir_deg: 30.0,
        m1_pct: 4.0,
        m10_pct: 5.0,
        m100_pct: 7.0,
        mherb_pct: 80.0,
        slope_deg: 25.0,
        aspect_deg: 200.0,
    };
    BurnCase::generate(
        "chaparral_slope",
        "64x64 chaparral (NFFL 4) on a 25-degree slope, 12 mph wind",
        Terrain::uniform(N, N, CELL_FT),
        FireLine::from_cells(N, N, &[(N - 8, 8)]),
        steps(5, 8.0),
        vec![truth; 5],
    )
}

/// The paper's §IV motivating stress: the truth drifts, so a scenario that
/// described one step well degrades on the next ("rapidly changing
/// conditions may entail that a scenario that was a good descriptor at one
/// time step can become worse at the next step").
pub fn shifting_wind() -> BurnCase {
    let base = Scenario {
        model: 1,
        wind_speed_mph: 5.0,
        wind_dir_deg: 0.0,
        m1_pct: 6.0,
        m10_pct: 8.0,
        m100_pct: 10.0,
        mherb_pct: 110.0,
        slope_deg: 0.0,
        aspect_deg: 0.0,
    };
    let truth: Vec<Scenario> = (0..6)
        .map(|i| Scenario {
            wind_dir_deg: 15.0 * i as f64 * 1.5,  // 0° → 112.5° over the burn
            wind_speed_mph: 5.0 + 1.5 * i as f64, // 5 → 12.5 mph ramp
            ..base
        })
        .collect();
    BurnCase::generate(
        "shifting_wind",
        "64x64 grass; the true wind veers ~112 degrees and strengthens during the burn",
        Terrain::uniform(N, N, CELL_FT),
        centre_ignition(N, N),
        steps(6, 20.0),
        truth,
    )
}

/// Weak-gradient case: timber litter drying out step by step.
pub fn moisture_front() -> BurnCase {
    let base = Scenario {
        model: 10,
        wind_speed_mph: 7.0,
        wind_dir_deg: 135.0,
        m1_pct: 14.0,
        m10_pct: 15.0,
        m100_pct: 17.0,
        mherb_pct: 120.0,
        slope_deg: 5.0,
        aspect_deg: 270.0,
    };
    let truth: Vec<Scenario> = (0..5)
        .map(|i| Scenario {
            m1_pct: (14.0 - 2.0 * i as f64).max(4.0), // drying: 14 % → 6 %
            m10_pct: (15.0 - 1.5 * i as f64).max(5.0),
            ..base
        })
        .collect();
    BurnCase::generate(
        "moisture_front",
        "64x64 timber litter (NFFL 10); dead fuel dries out over the burn",
        Terrain::uniform(N, N, CELL_FT),
        centre_ignition(N, N),
        steps(5, 45.0),
        truth,
    )
}

/// Heterogeneous-terrain case: two ridges with opposite aspects split the
/// map, making the fitness landscape multimodal in slope/aspect.
pub fn two_ridge() -> BurnCase {
    let n = 96usize;
    let mut slope = Grid::filled(n, n, 0.0f64);
    let mut aspect = Grid::filled(n, n, 0.0f64);
    for r in 0..n {
        for c in 0..n {
            // Two parallel ridges along columns n/3 and 2n/3.
            let d1 = (c as f64 - n as f64 / 3.0).abs();
            let d2 = (c as f64 - 2.0 * n as f64 / 3.0).abs();
            let (d, facing_east) = if d1 <= d2 {
                (d1, c < n / 3)
            } else {
                (d2, c < 2 * n / 3)
            };
            let s = (20.0 - d).max(0.0);
            slope.set(r, c, s);
            aspect.set(r, c, if facing_east { 90.0 } else { 270.0 });
        }
    }
    let truth = Scenario {
        model: 2,
        wind_speed_mph: 8.0,
        wind_dir_deg: 90.0,
        m1_pct: 6.0,
        m10_pct: 8.0,
        m100_pct: 10.0,
        mherb_pct: 90.0,
        slope_deg: 0.0,  // overridden per cell
        aspect_deg: 0.0, // overridden per cell
    };
    BurnCase::generate(
        "two_ridge",
        "96x96 timber-grass (NFFL 2) with two opposite-aspect ridges",
        Terrain::uniform(n, n, CELL_FT)
            .with_slope(slope)
            .with_aspect(aspect),
        FireLine::from_cells(n, n, &[(n / 2, 6)]),
        steps(5, 25.0),
        vec![truth; 5],
    )
}

/// Derives a case whose *observed* fire lines carry sensor noise: cells on
/// the advancing front flip state with probability `flip_prob` (burned
/// front cells may read unburned, unburned cells touching the front may
/// read burned). This models the paper's core motivation — "their
/// measurement may be imprecise, erroneous, or impossible to perform in
/// real time" (§Abstract) — while keeping the hidden truth untouched.
///
/// Physical consistency is preserved: each noisy line is unioned with its
/// noisy predecessor so observations never "unburn" over time, and the
/// initial ignition (line 0) is left exact.
///
/// # Panics
/// Panics when `flip_prob` is not a probability.
pub fn with_observation_noise(case: &BurnCase, flip_prob: f64, seed: u64) -> BurnCase {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(
        (0.0..=1.0).contains(&flip_prob),
        "flip probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6A09E667F3BCC909);
    let mut noisy: Vec<FireLine> = Vec::with_capacity(case.fire_lines.len());
    noisy.push(case.fire_lines[0].clone());
    for line in &case.fire_lines[1..] {
        let mut observed = line.clone();
        let front = landscape::perimeter_cells(line);
        for &(r, c) in &front {
            // Burned front cell misread as unburned.
            if rng.random::<f64>() < flip_prob {
                observed.set_burned(r, c, false);
            }
            // Unburned neighbours of the front misread as burned.
            let neighbours: Vec<(usize, usize)> = line
                .mask()
                .neighbours8(r, c)
                .map(|(nr, nc, _)| (nr, nc))
                .collect();
            for (nr, nc) in neighbours {
                if !line.is_burned(nr, nc) && rng.random::<f64>() < flip_prob {
                    observed.set_burned(nr, nc, true);
                }
            }
        }
        // Observations never regress behind the previous observation.
        let merged = observed.union(noisy.last().expect("non-empty"));
        noisy.push(merged);
    }
    BurnCase {
        name: case.name,
        description: case.description,
        sim: Arc::clone(&case.sim),
        times: case.times.clone(),
        fire_lines: Arc::new(noisy),
        truth: case.truth.clone(),
    }
}

/// Builds a [`BurnCase`] from a corpus [`WorkloadSpec`]: the spec expands
/// to terrain + ignition + schedule, the hidden truth is simulated into the
/// synthetic "real fire" reference lines, and the result plugs into every
/// pipeline exactly like the hand-built cases. The terrain is shared (one
/// `Arc` from workload to simulator to every worker).
pub fn workload_case(spec: &WorkloadSpec) -> BurnCase {
    let w = spec.build();
    let sim = Arc::new(w.sim());
    let fire_lines = w.reference_lines(&sim);
    BurnCase {
        name: w.name,
        description: w.description,
        sim,
        times: w.times,
        fire_lines: Arc::new(fire_lines),
        truth: w.truth,
    }
}

/// The hand-built library, as one `(name, builder)` table — the single
/// source [`standard_cases`], [`case_names`] and [`by_name`] all derive
/// from, so a new case registered here is automatically listed and
/// resolvable everywhere.
type CaseBuilder = fn() -> BurnCase;

const LIBRARY: &[(&str, CaseBuilder)] = &[
    ("grass_uniform", grass_uniform),
    ("chaparral_slope", chaparral_slope),
    ("shifting_wind", shifting_wind),
    ("moisture_front", moisture_front),
    ("two_ridge", two_ridge),
];

/// The full standard case library.
pub fn standard_cases() -> Vec<BurnCase> {
    LIBRARY.iter().map(|(_, build)| build()).collect()
}

/// Every case name resolvable through [`by_name`]: the hand-built library
/// plus the generated workload corpus (standard tier and the XL landscape
/// tier — the latter expand to megacell rasters, so resolving one builds a
/// case measured in seconds, not milliseconds).
pub fn case_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = LIBRARY.iter().map(|&(name, _)| name).collect();
    names.extend(firelib::workload::names());
    names.extend(firelib::workload::xl_names());
    names
}

/// Fetches one case by name — a hand-built library case or any named
/// workload of the corpus (`ess::cases` is the single resolution point the
/// harness, configs and examples go through).
pub fn by_name(name: &str) -> Option<BurnCase> {
    match LIBRARY.iter().find(|&&(n, _)| n == name) {
        Some((_, build)) => Some(build()),
        None => firelib::workload::by_name(name).as_ref().map(workload_case),
    }
}

/// A tiny *drifting-truth* case for fast tests of the §IV drift argument:
/// the wind veers 90° and strengthens over four short intervals on a small
/// grid.
pub fn tiny_drift_case() -> BurnCase {
    let base = Scenario {
        model: 1,
        wind_speed_mph: 6.0,
        wind_dir_deg: 0.0,
        m1_pct: 5.0,
        m10_pct: 7.0,
        m100_pct: 9.0,
        mherb_pct: 100.0,
        slope_deg: 0.0,
        aspect_deg: 0.0,
    };
    let truth: Vec<Scenario> = (0..5)
        .map(|i| Scenario {
            wind_dir_deg: 22.5 * i as f64,
            wind_speed_mph: 6.0 + 1.2 * i as f64,
            ..base
        })
        .collect();
    BurnCase::generate(
        "tiny_drift_case",
        "25x25 grass micro-case with veering, strengthening wind",
        Terrain::uniform(25, 25, CELL_FT),
        centre_ignition(25, 25),
        steps(5, 12.0),
        truth,
    )
}

/// A deliberately tiny case for fast unit/integration tests.
pub fn tiny_test_case() -> BurnCase {
    let truth = Scenario {
        model: 1,
        wind_speed_mph: 8.0,
        wind_dir_deg: 90.0,
        m1_pct: 5.0,
        m10_pct: 7.0,
        m100_pct: 9.0,
        mherb_pct: 100.0,
        slope_deg: 0.0,
        aspect_deg: 0.0,
    };
    BurnCase::generate(
        "tiny_test_case",
        "21x21 grass micro-case for tests",
        Terrain::uniform(21, 21, CELL_FT),
        centre_ignition(21, 21),
        steps(4, 10.0),
        vec![truth; 4],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_lines_are_nested_and_growing() {
        for case in [grass_uniform(), shifting_wind(), tiny_test_case()] {
            for w in case.fire_lines.windows(2) {
                assert!(
                    w[0].is_subset_of(&w[1]),
                    "{}: fire must only grow over time",
                    case.name
                );
            }
            assert!(
                case.final_area() > case.fire_lines[0].burned_area(),
                "{}: nothing burned",
                case.name
            );
        }
    }

    #[test]
    fn case_names_are_unique_across_library_and_corpus() {
        // `by_name` checks LIBRARY first, so a corpus workload sharing a
        // library name would be silently shadowed — a collision must fail
        // here, at registration time, not at resolution time.
        let names = case_names();
        let mut seen = std::collections::BTreeSet::new();
        for name in &names {
            assert!(
                seen.insert(name),
                "case name '{name}' is registered in both the library and \
                 the workload corpus; by_name would shadow the workload"
            );
        }
    }

    #[test]
    fn every_interval_shows_growth() {
        // A case where some step has zero growth would make that step's
        // fitness degenerate (empty-vs-empty): the library cases avoid it.
        for case in standard_cases() {
            for (i, w) in case.fire_lines.windows(2).enumerate() {
                assert!(
                    w[1].burned_area() > w[0].burned_area(),
                    "{} interval {i}: no growth ({} cells)",
                    case.name,
                    w[0].burned_area()
                );
            }
        }
    }

    #[test]
    fn truth_is_a_perfect_descriptor_of_its_own_interval() {
        use crate::fitness::StepContext;
        let case = tiny_test_case();
        for i in 0..case.intervals() {
            let ctx = StepContext::new(
                Arc::clone(&case.sim),
                case.fire_lines[i].clone(),
                case.fire_lines[i + 1].clone(),
                case.times[i],
                case.times[i + 1],
            );
            let f = ctx.fitness_of(&case.truth[i]);
            assert!(
                (f - 1.0).abs() < 1e-9,
                "truth must score 1 on its own interval, got {f} at step {i}"
            );
        }
    }

    #[test]
    fn shifting_wind_truth_actually_drifts() {
        let case = shifting_wind();
        let dirs: Vec<f64> = case.truth.iter().map(|s| s.wind_dir_deg).collect();
        assert!(dirs.windows(2).all(|w| w[1] > w[0]));
        assert!(dirs.last().unwrap() - dirs.first().unwrap() > 90.0);
    }

    #[test]
    fn stale_truth_degrades_on_shifting_wind() {
        // The §IV motivation, quantified: step 0's perfect scenario loses
        // fitness on a later interval.
        use crate::fitness::StepContext;
        let case = shifting_wind();
        let last = case.intervals() - 1;
        let ctx = StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[last].clone(),
            case.fire_lines[last + 1].clone(),
            case.times[last],
            case.times[last + 1],
        );
        let fresh = ctx.fitness_of(&case.truth[last]);
        let stale = ctx.fitness_of(&case.truth[0]);
        assert!((fresh - 1.0).abs() < 1e-9);
        assert!(stale < 0.95, "stale truth should degrade, got {stale}");
    }

    #[test]
    fn observation_noise_perturbs_but_preserves_structure() {
        let clean = tiny_test_case();
        let noisy = with_observation_noise(&clean, 0.3, 9);
        // Line 0 (the known ignition) is exact.
        assert_eq!(noisy.fire_lines[0], clean.fire_lines[0]);
        // Later lines differ somewhere.
        let changed = clean
            .fire_lines
            .iter()
            .zip(noisy.fire_lines.iter())
            .skip(1)
            .any(|(a, b)| a != b);
        assert!(changed, "30% front noise must perturb the observations");
        // Observations still only grow.
        for w in noisy.fire_lines.windows(2) {
            assert!(w[0].is_subset_of(&w[1]), "noisy observations regressed");
        }
        // Truth and geometry untouched.
        assert_eq!(noisy.truth.len(), clean.truth.len());
        assert_eq!(noisy.times, clean.times);
    }

    #[test]
    fn zero_noise_is_identity() {
        let clean = tiny_test_case();
        let same = with_observation_noise(&clean, 0.0, 1);
        for (a, b) in clean.fire_lines.iter().zip(same.fire_lines.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let clean = tiny_test_case();
        let a = with_observation_noise(&clean, 0.2, 5);
        let b = with_observation_noise(&clean, 0.2, 5);
        let c = with_observation_noise(&clean, 0.2, 6);
        assert_eq!(a.fire_lines, b.fire_lines);
        assert_ne!(a.fire_lines, c.fire_lines);
    }

    #[test]
    fn library_lookup_by_name() {
        for case in standard_cases() {
            assert_eq!(by_name(case.name).unwrap().name, case.name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn library_names_and_cases_stay_in_lockstep() {
        // The library table is the single source: standard_cases and
        // case_names must agree name-for-name, and every library name must
        // resolve to a case carrying that name.
        let built: Vec<&str> = standard_cases().iter().map(|c| c.name).collect();
        let listed: Vec<&str> = case_names()
            .into_iter()
            .filter(|n| firelib::workload::by_name(n).is_none())
            .collect();
        assert_eq!(built, listed);
        for name in built {
            assert_eq!(by_name(name).expect("library name resolves").name, name);
        }
    }

    #[test]
    fn workload_names_resolve_to_cases() {
        // The smallest corpus workload resolves end-to-end; resolution for
        // the rest is covered by the (slower) integration tests.
        let case = by_name("meadow_small").expect("corpus name must resolve");
        assert_eq!(case.name, "meadow_small");
        assert!(case.intervals() >= 2);
        assert!(case.final_area() > case.fire_lines[0].burned_area());
        assert!(case_names().contains(&"meadow_small"));
        assert!(case_names().contains(&"grass_uniform"));
    }

    #[test]
    fn workload_case_is_pipeline_consistent() {
        // Reference lines must be nested/growing and the truth a perfect
        // descriptor of its own interval — same invariants as the hand
        // built library, now guaranteed by the workload generator.
        use crate::fitness::StepContext;
        let case = workload_case(&firelib::workload::meadow_small());
        for w in case.fire_lines.windows(2) {
            assert!(w[0].is_subset_of(&w[1]), "workload fire must only grow");
        }
        let ctx = StepContext::new(
            Arc::clone(&case.sim),
            case.fire_lines[0].clone(),
            case.fire_lines[1].clone(),
            case.times[0],
            case.times[1],
        );
        let f = ctx.fitness_of(&case.truth[0]);
        assert!((f - 1.0).abs() < 1e-9, "truth must score 1, got {f}");
    }

    #[test]
    #[should_panic(expected = "at least 3 instants")]
    fn too_few_instants_rejected() {
        let _ = BurnCase::generate(
            "bad",
            "",
            Terrain::uniform(5, 5, 100.0),
            centre_ignition(5, 5),
            vec![0.0, 10.0],
            vec![Scenario::reference()],
        );
    }
}
