//! The Calibration Stage (`CS-Master`, `SKign`) and the Prediction Stage
//! (`PS` / `FP`).
//!
//! "A probability map is computed to obtain a threshold value called Key
//! Ignition Value, or Kign, which best represents the fire behavior pattern
//! for the given simulation step. This value is obtained by searching for a
//! threshold value that, when applied to the probability matrix, produces
//! the best prediction in terms of the fitness function for the current
//! time step" (§II-A). The found `Kign_n` is then used by the Prediction
//! Stage of the *next* step (Fig. 2).

use landscape::{jaccard, FireLine, ProbabilityMap};

/// The result of one `SKign` search.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// The Key Ignition Value that maximised fitness on the observed step.
    pub kign: f64,
    /// The fitness achieved at `kign`.
    pub fitness: f64,
    /// The full search curve as `(threshold, fitness)` pairs, ascending by
    /// threshold — the series behind Fig. 2 / harness `fig2-kign`.
    pub curve: Vec<(f64, f64)>,
}

/// Exhaustive `SKign` search over the distinct probability levels of the
/// matrix.
///
/// Thresholding is a step function of the threshold with steps exactly at
/// the matrix's distinct levels, so evaluating those levels (every other
/// threshold is equivalent to one of them) makes the search *exact*, not a
/// discretisation — with `n` aggregated maps there are at most `n + 1`
/// levels.
///
/// Ties favour the **highest** threshold: of two equally-fit predictions
/// the more conservative (smaller) burned area is preferred, matching the
/// behaviour of the reference implementations.
pub fn skign_search(
    matrix: &ProbabilityMap,
    observed: &FireLine,
    preburn: Option<&FireLine>,
) -> CalibrationOutcome {
    let mut best_kign = 1.0;
    let mut best_fitness = f64::NEG_INFINITY;
    let mut curve = Vec::new();
    for level in matrix.distinct_levels() {
        // Skip the all-cells threshold at exactly 0 (it predicts the whole
        // map burned); the smallest positive level already covers "every
        // cell any scenario burned".
        if level <= 0.0 {
            continue;
        }
        let predicted = matrix.threshold(level);
        let f = jaccard(observed, &predicted, preburn);
        curve.push((level, f));
        if f > best_fitness || (f == best_fitness && level > best_kign) {
            best_fitness = f;
            best_kign = level;
        }
    }
    if curve.is_empty() {
        // Degenerate matrix (no samples or nothing burned anywhere): fall
        // back to the most conservative threshold.
        let predicted = matrix.threshold(1.0);
        let f = jaccard(observed, &predicted, preburn);
        return CalibrationOutcome {
            kign: 1.0,
            fitness: f,
            curve: vec![(1.0, f)],
        };
    }
    CalibrationOutcome {
        kign: best_kign,
        fitness: best_fitness,
        curve,
    }
}

/// The Prediction Stage: applies the previous step's Key Ignition Value to
/// the aggregated matrix of the upcoming interval, yielding the predicted
/// fire line (`PFL`, Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionStage {
    /// The Key Ignition Value carried over from the Calibration Stage of
    /// the previous prediction step.
    pub kign: f64,
}

impl PredictionStage {
    /// Builds the stage from a calibrated `Kign`.
    pub fn new(kign: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&kign),
            "Kign is a probability threshold"
        );
        Self { kign }
    }

    /// Produces the predicted fire line from the next interval's matrix.
    pub fn predict(&self, matrix: &ProbabilityMap) -> FireLine {
        matrix.threshold(self.kign)
    }

    /// Scores a prediction against the later-observed reality.
    pub fn quality(
        &self,
        matrix: &ProbabilityMap,
        observed: &FireLine,
        preburn: Option<&FireLine>,
    ) -> f64 {
        jaccard(observed, &self.predict(matrix), preburn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use landscape::FireLine;

    fn fl(cells: &[(usize, usize)]) -> FireLine {
        FireLine::from_cells(4, 4, cells)
    }

    /// Three maps: cell A burns in all, B in two, C in one.
    fn matrix() -> ProbabilityMap {
        let mut pm = ProbabilityMap::new(4, 4);
        pm.accumulate(&fl(&[(0, 0), (0, 1), (0, 2)]));
        pm.accumulate(&fl(&[(0, 0), (0, 1)]));
        pm.accumulate(&fl(&[(0, 0)]));
        pm
    }

    #[test]
    fn skign_recovers_exact_reality() {
        let pm = matrix();
        // Reality = {A, B}: the 2/3 threshold reproduces it exactly.
        let observed = fl(&[(0, 0), (0, 1)]);
        let out = skign_search(&pm, &observed, None);
        assert!((out.kign - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.fitness, 1.0);
    }

    #[test]
    fn skign_tie_prefers_conservative_threshold() {
        // Reality exactly {A}: thresholds 1.0 predicts {A} (J=1);
        // 2/3 predicts {A,B} (J=0.5). Must pick 1.0.
        let pm = matrix();
        let out = skign_search(&pm, &fl(&[(0, 0)]), None);
        assert_eq!(out.kign, 1.0);
        assert_eq!(out.fitness, 1.0);
    }

    #[test]
    fn curve_covers_positive_levels_ascending() {
        let pm = matrix();
        let out = skign_search(&pm, &fl(&[(0, 0)]), None);
        let levels: Vec<f64> = out.curve.iter().map(|&(k, _)| k).collect();
        assert_eq!(levels.len(), 3); // 1/3, 2/3, 1 — zero excluded
        assert!(levels.windows(2).all(|w| w[0] < w[1]));
        assert!(levels.iter().all(|&l| l > 0.0));
    }

    #[test]
    fn empty_matrix_degenerates_gracefully() {
        let pm = ProbabilityMap::new(4, 4);
        let out = skign_search(&pm, &fl(&[]), None);
        assert_eq!(out.kign, 1.0);
        assert_eq!(out.fitness, 1.0); // empty prediction vs empty reality
    }

    #[test]
    fn preburn_exclusion_flows_through() {
        let pm = matrix();
        let observed = fl(&[(0, 0), (0, 1)]);
        let pre = fl(&[(0, 0)]);
        let out = skign_search(&pm, &observed, Some(&pre));
        // Excluding A, reality = {B}: the 2/3 threshold gives {B} exactly.
        assert!((out.kign - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(out.fitness, 1.0);
    }

    #[test]
    fn prediction_stage_applies_threshold() {
        let pm = matrix();
        let ps = PredictionStage::new(0.5);
        let predicted = ps.predict(&pm);
        assert!(predicted.is_burned(0, 0));
        assert!(predicted.is_burned(0, 1)); // p = 2/3 ≥ 0.5
        assert!(!predicted.is_burned(0, 2)); // p = 1/3 < 0.5
    }

    #[test]
    fn quality_is_jaccard_of_prediction() {
        let pm = matrix();
        let ps = PredictionStage::new(0.9);
        // Threshold 0.9 predicts {A}; reality {A, B} → J = 1/2.
        let q = ps.quality(&pm, &fl(&[(0, 0), (0, 1)]), None);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability threshold")]
    fn invalid_kign_rejected() {
        let _ = PredictionStage::new(1.5);
    }
}
