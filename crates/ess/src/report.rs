//! Aligned text tables and CSV writers for the experiment harness.
//!
//! Hand-rolled on purpose: the workspace's dependency policy (DESIGN.md §1)
//! keeps serialisation crates out, and the harness only needs fixed-width
//! tables and comma-separated files.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned text table with a CSV serialisation.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(row);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        write_row(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Serialises as CSV (quoting cells that contain commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with 4 decimal places (the precision the reports use).
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an optional quality value (`-` when absent).
pub fn opt_f4(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), f4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(["name", "q"]);
        t.row(["a", "0.5"]);
        t.row(["longer", "0.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width for the first column.
        assert!(lines[0].starts_with("name  "));
        assert!(lines[2].starts_with("a     "));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("essns_report_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = TextTable::new(["h"]);
        t.row(["v"]);
        t.write_csv(&path).unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "h\nv\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f2(4.67159), "4.67");
        assert_eq!(opt_f4(None), "-");
        assert_eq!(opt_f4(Some(1.0)), "1.0000");
    }
}
