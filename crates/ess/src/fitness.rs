//! The per-step evaluation context and the parallel scenario evaluators.
//!
//! At prediction step `i` the Optimization Stage scores a scenario by
//! simulating fire growth from the last known real fire line `RFL_{i-1}`
//! over the step interval and comparing the simulated map against `RFL_i`
//! with the Jaccard fitness of Eq. (3), excluding the cells already burned
//! at the start ("previously burned cells are not considered", §III-B).
//! This is the `PEA F` block of Figs. 1 and 3 — the work the Workers do.

use evoalg::{BatchEvaluator, GenomeMatrix};
use firelib::{FireSim, Kernel, Scenario, ScenarioSpace, SimArena};
use landscape::{jaccard_at_time, FireLine, IgnitionMap};
use parworker::Backend;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

pub use parworker::EvalBackend;

/// Everything needed to score scenarios on one prediction interval.
#[derive(Debug, Clone)]
pub struct StepContext {
    sim: Arc<FireSim>,
    /// Fire state at the start of the interval (`RFL_{i-1}`), which is also
    /// the pre-burn exclusion mask of Eq. (3).
    from: FireLine,
    /// Observed fire state at the end of the interval (`RFL_i`).
    target: FireLine,
    /// Start instant (minutes).
    t0: f64,
    /// End instant (minutes).
    t1: f64,
    /// Propagation kernel every evaluation on this interval runs — all
    /// kernels are bit-identical, so this is purely a performance choice
    /// (e.g. [`Kernel::Tiled`] to put several cores on one XL simulation).
    kernel: Kernel,
}

impl StepContext {
    /// Builds a context for the interval `[t0, t1]`.
    ///
    /// # Panics
    /// Panics when shapes mismatch or `t1 <= t0`.
    pub fn new(sim: Arc<FireSim>, from: FireLine, target: FireLine, t0: f64, t1: f64) -> Self {
        assert!(t1 > t0, "step interval must have positive duration");
        assert_eq!(
            (from.rows(), from.cols()),
            (sim.terrain().rows(), sim.terrain().cols()),
            "fire line shape must match terrain"
        );
        assert!(
            from.mask().same_shape(target.mask()),
            "interval endpoints shape mismatch"
        );
        Self {
            sim,
            from,
            target,
            t0,
            t1,
            kernel: Kernel::Bucket,
        }
    }

    /// Same context, evaluating through `kernel` instead of the default
    /// [`Kernel::Bucket`]. Kernels are bit-identical, so swapping one in
    /// changes wall-clock only, never a fitness value.
    pub fn with_kernel(mut self, kernel: Kernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// The propagation kernel evaluations on this interval run.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The simulator.
    pub fn sim(&self) -> &Arc<FireSim> {
        &self.sim
    }

    /// Start fire line (`RFL_{i-1}`).
    pub fn from_line(&self) -> &FireLine {
        &self.from
    }

    /// Target fire line (`RFL_i`).
    pub fn target_line(&self) -> &FireLine {
        &self.target
    }

    /// Interval start (minutes).
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Interval end (minutes).
    pub fn t1(&self) -> f64 {
        self.t1
    }

    /// Interval duration (minutes).
    pub fn duration(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Simulates one scenario into the worker's private [`SimArena`] and
    /// returns its Eq. (3) fitness — the Workers' hot path. The arena is
    /// reused across evaluations and the Jaccard score streams directly off
    /// the arrival raster, so a steady-state evaluation allocates nothing.
    pub fn fitness_with(&self, scenario: &Scenario, arena: &mut SimArena) -> f64 {
        let map = self.sim.simulate_arena_kernel(
            scenario,
            &self.from,
            self.t0,
            self.duration(),
            arena,
            self.kernel,
        );
        jaccard_at_time(&self.target, map, self.t1, Some(&self.from))
    }

    /// Output-map-reusing variant (kept for callers that hold a bare
    /// [`IgnitionMap`]; spread/heap scratch is allocated per call —
    /// [`StepContext::fitness_with`] is the allocation-free path).
    pub fn fitness_into(&self, scenario: &Scenario, scratch: &mut IgnitionMap) -> f64 {
        self.sim
            .simulate_into(scenario, &self.from, self.t0, self.duration(), scratch);
        jaccard_at_time(&self.target, scratch, self.t1, Some(&self.from))
    }

    /// Fitness of one scenario (allocating convenience).
    pub fn fitness_of(&self, scenario: &Scenario) -> f64 {
        let mut arena = self.sim.arena();
        self.fitness_with(scenario, &mut arena)
    }

    /// Fitness of an encoded genome.
    pub fn fitness_of_genome(&self, genes: &[f64]) -> f64 {
        self.fitness_of(&ScenarioSpace.decode(genes))
    }

    /// The simulated fire line a scenario produces over this interval
    /// (used by the Statistical Stage).
    pub fn simulate_line(&self, scenario: &Scenario) -> FireLine {
        self.sim
            .simulate_fire_line(scenario, &self.from, self.t0, self.duration())
    }
}

/// The boxed backend a [`ScenarioEvaluator`] runs on by default (built
/// from an [`EvalBackend`] spec at runtime).
pub type DynBackend = Box<dyn Backend<Vec<f64>, f64>>;

/// Batch scenario evaluator: decodes genomes, runs the fire simulations on
/// the configured [`parworker::Backend`], and returns Eq. (3) fitness
/// values. Implements [`evoalg::BatchEvaluator`], so it plugs into every
/// engine; generic over the backend (defaulting to the runtime-selected
/// boxed form the pipeline uses).
///
/// Every backend runs the same pure work function — decode the genome,
/// simulate into the worker's private [`SimArena`] via
/// [`StepContext::fitness_with`] (zero steady-state allocations: spread
/// cache, heap and arrival raster all live in the arena), score with
/// Eq. (3) — so Serial, WorkerPool and Rayon produce bit-identical fitness
/// vectors for the same genome batch.
pub struct ScenarioEvaluator<B: Backend<Vec<f64>, f64> = DynBackend> {
    ctx: Arc<StepContext>,
    backend: B,
    evaluations: u64,
}

/// One scenario evaluation on a shared pool: the step context and the flat
/// genome batch ride along with a row index, so one pool serves every step
/// of every concurrent session regardless of which case (and grid size)
/// each is predicting — and every task in a batch shares the batch's
/// single [`GenomeMatrix`] allocation instead of owning a genome `Vec`.
pub type SharedTask = (Arc<StepContext>, Arc<GenomeMatrix>, usize);

/// Per-worker arena store for the shared pool: one [`SimArena`] per grid
/// shape seen by this worker. Arenas are pure per-call scratch (every
/// `simulate_arena` refills them), so keying by shape is sound even when
/// tasks from different simulators interleave on one worker.
#[derive(Default)]
struct ArenaCache {
    arenas: Vec<((usize, usize), SimArena)>,
}

impl ArenaCache {
    fn for_shape(&mut self, rows: usize, cols: usize) -> &mut SimArena {
        match self
            .arenas
            .iter()
            .position(|((r, c), _)| (*r, *c) == (rows, cols))
        {
            Some(i) => &mut self.arenas[i].1,
            None => {
                self.arenas.push(((rows, cols), SimArena::new(rows, cols)));
                // audit: allow(panic) — last_mut() on the vec the previous line pushed into
                &mut self.arenas.last_mut().expect("just pushed").1
            }
        }
    }
}

/// The pure per-genome work function every shared-pool path runs: decode
/// the genome, simulate into the cached arena for the context's grid
/// shape, score with Eq. (3). Worker dispatch, inline fallback and fused
/// mega-batches all funnel through this one function, which is what makes
/// their results bit-identical.
fn score(cache: &mut ArenaCache, ctx: &StepContext, genes: &[f64]) -> f64 {
    let terrain = ctx.sim().terrain();
    let arena = cache.for_shape(terrain.rows(), terrain.cols());
    ctx.fitness_with(&ScenarioSpace.decode(genes), arena)
}

/// Default small-batch threshold of the shared pool: batches at or below
/// this many genomes run inline on the calling thread. Pool dispatch
/// (task fan-out, worker wake-ups, result collection) costs more than it
/// buys at the typical per-step batch size of ~12 genomes, where the
/// worker pool measured *slower* than serial (0.875× on
/// `archipelago_large`) before this fallback existed.
pub const DEFAULT_INLINE_THRESHOLD: usize = 16;

/// A scenario-evaluation worker pool shared by many concurrent runs — the
/// serving substrate. Where a per-run [`ScenarioEvaluator::new`] backend
/// captures one step's context at build time (and therefore spawns fresh
/// workers every step), the shared pool's task type carries the context,
/// so one set of worker threads serves every step of every session for
/// the lifetime of the process.
///
/// The work function is the same pure decode → [`StepContext::fitness_with`]
/// → Eq. (3) path as the per-run backends, so shared and private execution
/// produce bit-identical fitness vectors. Batches are serialised through a
/// mutex ([`parworker::Backend::map`] needs `&mut self`); fairness between
/// sessions is the scheduler's job — one *batch* is the unit of
/// interleaving.
pub struct SharedScenarioPool {
    inner: Mutex<DynSharedBackend>,
    /// Arena cache for the inline small-batch path. Never held together
    /// with `inner` — the two paths are disjoint — so no lock nesting.
    fallback: Mutex<ArenaCache>,
    /// Batches at or below this size skip pool dispatch (see
    /// [`DEFAULT_INLINE_THRESHOLD`]); `usize::MAX` on a serial spec,
    /// where dispatch can never win.
    inline_threshold: AtomicUsize,
    spec: EvalBackend,
}

type DynSharedBackend = Box<dyn Backend<SharedTask, f64>>;

const POOL_POISONED: &str = "shared scenario pool poisoned";

impl SharedScenarioPool {
    /// Builds the pool from a backend spec. The workers own an
    /// `ArenaCache` each, so mixed-grid traffic reuses scratch per shape.
    pub fn new(spec: EvalBackend) -> Self {
        let backend = spec.build(
            |_wid| ArenaCache::default(),
            |cache: &mut ArenaCache, (ctx, batch, row): SharedTask| {
                score(cache, &ctx, batch.row(row))
            },
        );
        let inline = if spec.workers() <= 1 {
            usize::MAX
        } else {
            DEFAULT_INLINE_THRESHOLD
        };
        Self {
            inner: Mutex::new(backend),
            fallback: Mutex::new(ArenaCache::default()),
            inline_threshold: AtomicUsize::new(inline),
            spec,
        }
    }

    /// The spec the pool was built from.
    pub fn spec(&self) -> EvalBackend {
        self.spec
    }

    /// Report name of the underlying backend (e.g. `"worker-pool(4)"`).
    pub fn name(&self) -> String {
        self.spec.name()
    }

    /// Degree of parallelism.
    pub fn workers(&self) -> usize {
        self.spec.workers()
    }

    /// The current inline small-batch threshold.
    pub fn inline_threshold(&self) -> usize {
        self.inline_threshold.load(Ordering::Relaxed)
    }

    /// Overrides the inline small-batch threshold (`0` forces every batch
    /// through pool dispatch — used by the regression benches to compare
    /// the two paths).
    pub fn set_inline_threshold(&self, threshold: usize) {
        self.inline_threshold.store(threshold, Ordering::Relaxed);
    }

    /// Evaluates one flat batch of genomes against `ctx`, in row order —
    /// the preferred entry point.
    ///
    /// Batches at or below [`SharedScenarioPool::inline_threshold`] run
    /// serially on the calling thread instead of paying pool dispatch,
    /// which loses to inline execution at typical per-step batch sizes.
    /// Both paths run the same pure work function in the same order, so
    /// results are bit-identical.
    // audit: allow(panic) — pool-lock poisoning only follows a worker panic; amplifying it is the designed failure mode
    pub fn evaluate_matrix(&self, ctx: &Arc<StepContext>, genomes: &GenomeMatrix) -> Vec<f64> {
        if genomes.len() <= self.inline_threshold() {
            let mut cache = self.fallback.lock().expect(POOL_POISONED);
            return genomes.rows().map(|g| score(&mut cache, ctx, g)).collect();
        }
        let batch = Arc::new(genomes.clone());
        let tasks: Vec<SharedTask> = (0..batch.len())
            .map(|row| (Arc::clone(ctx), Arc::clone(&batch), row))
            .collect();
        self.inner.lock().expect(POOL_POISONED).map(tasks)
    }

    /// Evaluates many sessions' pending batches as **one fused mega-batch**
    /// — the scheduler-round entry point. All rows are copied into a
    /// single contiguous [`GenomeMatrix`] (one allocation regardless of
    /// how many sessions fused) and submitted to the backend as one
    /// batch, so parallelism amortises over the round's total row count
    /// rather than any single session's batch size. Results are scattered
    /// back per input batch: `out[i]` is bit-identical to what
    /// `evaluate_matrix(&batches[i].0, batches[i].1)` would return, and
    /// an empty input batch yields an empty output.
    ///
    /// # Panics
    /// Panics when the batches disagree on genome dimension.
    // audit: allow(panic) — pool-lock poisoning only follows a worker panic; amplifying it is the designed failure mode
    pub fn evaluate_fused(&self, batches: &[(Arc<StepContext>, &GenomeMatrix)]) -> Vec<Vec<f64>> {
        let total: usize = batches.iter().map(|(_, g)| g.len()).sum();
        let flat: Vec<f64> = if total <= self.inline_threshold() {
            let mut cache = self.fallback.lock().expect(POOL_POISONED);
            let mut flat = Vec::with_capacity(total);
            for (ctx, g) in batches {
                for genes in g.rows() {
                    flat.push(score(&mut cache, ctx, genes));
                }
            }
            flat
        } else {
            let mut mega = match batches.iter().find(|(_, g)| !g.is_empty()) {
                Some((_, g)) => GenomeMatrix::with_dim(g.dim()),
                None => GenomeMatrix::new(),
            };
            mega.reserve_rows(total);
            for (_, g) in batches {
                mega.extend_from(g);
            }
            let mega = Arc::new(mega);
            let mut tasks: Vec<SharedTask> = Vec::with_capacity(total);
            let mut row = 0;
            for (ctx, g) in batches {
                for _ in 0..g.len() {
                    tasks.push((Arc::clone(ctx), Arc::clone(&mega), row));
                    row += 1;
                }
            }
            self.inner.lock().expect(POOL_POISONED).map(tasks)
        };
        let mut out = Vec::with_capacity(batches.len());
        let mut offset = 0;
        for (_, g) in batches {
            out.push(flat[offset..offset + g.len()].to_vec());
            offset += g.len();
        }
        out
    }
}

/// Adapter that lets a [`ScenarioEvaluator`] run its batches on a
/// [`SharedScenarioPool`]: implements the plain genome backend contract by
/// pairing every genome with the evaluator's step context.
struct SharedPoolBackend {
    ctx: Arc<StepContext>,
    pool: Arc<SharedScenarioPool>,
}

impl Backend<Vec<f64>, f64> for SharedPoolBackend {
    fn map(&mut self, tasks: Vec<Vec<f64>>) -> Vec<f64> {
        // Flatten once: the whole batch becomes one allocation, and the
        // pool's tasks borrow rows from it instead of owning genome Vecs.
        self.pool
            .evaluate_matrix(&self.ctx, &GenomeMatrix::from_rows(&tasks))
    }

    fn name(&self) -> String {
        format!("shared:{}", self.pool.name())
    }

    fn workers(&self) -> usize {
        self.pool.workers()
    }
}

impl ScenarioEvaluator {
    /// Builds an evaluator over `ctx` on the backend `spec` selects.
    pub fn new(ctx: Arc<StepContext>, spec: EvalBackend) -> Self {
        let arena_ctx = Arc::clone(&ctx);
        let worker_ctx = Arc::clone(&ctx);
        // Each worker owns a private SimArena: the per-worker state of the
        // farm (the `FS` instance of OS-Worker x). The terrain itself is
        // never copied — every arena shares it through the simulator `Arc`.
        let backend = spec.build(
            move |_wid| arena_ctx.sim().arena(),
            move |arena: &mut SimArena, genes: Vec<f64>| {
                worker_ctx.fitness_with(&ScenarioSpace.decode(&genes), arena)
            },
        );
        Self::with_backend(ctx, backend)
    }

    /// Builds an evaluator over `ctx` that runs its batches on a shared
    /// [`SharedScenarioPool`] instead of spawning its own workers — the
    /// serving configuration, where many sessions multiplex one pool.
    pub fn shared(ctx: Arc<StepContext>, pool: Arc<SharedScenarioPool>) -> Self {
        let backend: DynBackend = Box::new(SharedPoolBackend {
            ctx: Arc::clone(&ctx),
            pool,
        });
        Self::with_backend(ctx, backend)
    }
}

impl<B: Backend<Vec<f64>, f64>> ScenarioEvaluator<B> {
    /// Wraps an already-built backend (static dispatch; `new` is the
    /// config-driven entry point).
    pub fn with_backend(ctx: Arc<StepContext>, backend: B) -> Self {
        Self {
            ctx,
            backend,
            evaluations: 0,
        }
    }

    /// The evaluation context.
    pub fn context(&self) -> &Arc<StepContext> {
        &self.ctx
    }

    /// Number of scenario evaluations performed.
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations
    }

    /// The backend's report name (e.g. `"worker-pool(4)"`).
    pub fn backend_name(&self) -> String {
        self.backend.name()
    }
}

impl<B: Backend<Vec<f64>, f64>> BatchEvaluator for ScenarioEvaluator<B> {
    fn evaluate(&mut self, genomes: &[Vec<f64>]) -> Vec<f64> {
        self.evaluations += genomes.len() as u64;
        self.backend.map(genomes.to_vec())
    }

    fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firelib::sim::centre_ignition;
    use firelib::Terrain;

    /// A small context whose target was produced by a known scenario, so
    /// that scenario scores exactly 1.
    fn known_context() -> (Arc<StepContext>, Scenario) {
        let truth = Scenario {
            wind_speed_mph: 6.0,
            wind_dir_deg: 45.0,
            ..Scenario::reference()
        };
        let sim = Arc::new(FireSim::new(Terrain::uniform(25, 25, 100.0)));
        let from = centre_ignition(25, 25);
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 40.0);
        (
            Arc::new(StepContext::new(sim, from, target, 0.0, 40.0)),
            truth,
        )
    }

    #[test]
    fn true_scenario_scores_one() {
        let (ctx, truth) = known_context();
        assert!((ctx.fitness_of(&truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wrong_scenario_scores_less() {
        let (ctx, truth) = known_context();
        let wrong = Scenario {
            wind_dir_deg: 225.0,
            wind_speed_mph: 25.0,
            ..truth
        };
        assert!(ctx.fitness_of(&wrong) < 0.9);
    }

    #[test]
    fn arena_map_and_allocating_paths_agree_exactly() {
        // Heterogeneous terrain → the per-cell spread path, where the three
        // fitness entry points could plausibly diverge if the arena refactor
        // broke bit-identity.
        let truth = Scenario {
            wind_speed_mph: 7.0,
            ..Scenario::reference()
        };
        let slope = landscape::Grid::from_fn(19, 19, |r, c| ((r * 3 + c) % 25) as f64);
        let sim = Arc::new(FireSim::new(
            Terrain::uniform(19, 19, 100.0).with_slope(slope),
        ));
        let from = centre_ignition(19, 19);
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 60.0);
        let ctx = StepContext::new(sim.clone(), from, target, 0.0, 60.0);
        let mut arena = sim.arena();
        let mut map = IgnitionMap::unignited(19, 19);
        for wind in [0.0, 4.0, 11.0] {
            let s = Scenario {
                wind_speed_mph: wind,
                ..truth
            };
            let a = ctx.fitness_with(&s, &mut arena);
            let b = ctx.fitness_into(&s, &mut map);
            let c = ctx.fitness_of(&s);
            assert_eq!(a, b, "wind {wind}: arena vs into");
            assert_eq!(a, c, "wind {wind}: arena vs of");
        }
    }

    #[test]
    fn genome_fitness_matches_decoded() {
        let (ctx, truth) = known_context();
        let genes = ScenarioSpace.encode(&truth);
        assert!((ctx.fitness_of_genome(&genes) - ctx.fitness_of(&truth)).abs() < 1e-12);
    }

    #[test]
    fn backends_agree_exactly() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (ctx, _) = known_context();
        let mut rng = StdRng::seed_from_u64(0);
        let genomes: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                (0..firelib::GENE_COUNT)
                    .map(|_| rng.random::<f64>())
                    .collect()
            })
            .collect();
        let mut serial = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::Serial);
        let mut pool = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::WorkerPool(2));
        let mut ray = ScenarioEvaluator::new(Arc::clone(&ctx), EvalBackend::Rayon(2));
        let fs = serial.evaluate(&genomes);
        let fp = pool.evaluate(&genomes);
        let fr = ray.evaluate(&genomes);
        assert_eq!(fs, fp, "worker-pool backend diverged from serial");
        assert_eq!(fs, fr, "rayon backend diverged from serial");
        assert_eq!(serial.evaluation_count(), 12);
    }

    #[test]
    fn shared_pool_matches_private_backends_across_mixed_grids() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // Two contexts on different grid shapes multiplexed over one pool:
        // the per-worker arena cache must keep them apart, and fitness must
        // stay bit-identical to a private serial evaluator.
        let (small_ctx, _) = known_context();
        let truth = Scenario {
            wind_speed_mph: 9.0,
            ..Scenario::reference()
        };
        let sim = Arc::new(FireSim::new(Terrain::uniform(33, 33, 100.0)));
        let from = centre_ignition(33, 33);
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 50.0);
        let big_ctx = Arc::new(StepContext::new(sim, from, target, 0.0, 50.0));

        let mut rng = StdRng::seed_from_u64(3);
        let genomes: Vec<Vec<f64>> = (0..10)
            .map(|_| {
                (0..firelib::GENE_COUNT)
                    .map(|_| rng.random::<f64>())
                    .collect()
            })
            .collect();

        let pool = Arc::new(SharedScenarioPool::new(EvalBackend::WorkerPool(2)));
        for ctx in [&small_ctx, &big_ctx] {
            let mut private = ScenarioEvaluator::new(Arc::clone(ctx), EvalBackend::Serial);
            let mut on_pool = ScenarioEvaluator::shared(Arc::clone(ctx), Arc::clone(&pool));
            // Interleave rounds so worker arena caches see both shapes.
            for _ in 0..2 {
                assert_eq!(
                    private.evaluate(&genomes),
                    on_pool.evaluate(&genomes),
                    "shared pool diverged from serial"
                );
            }
            assert!(on_pool.backend_name().starts_with("shared:"));
        }
        assert_eq!(pool.workers(), 2);
        assert_eq!(pool.name(), "worker-pool(2)");
    }

    #[test]
    fn small_batches_run_inline_and_match_dispatch() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (ctx, _) = known_context();
        let mut rng = StdRng::seed_from_u64(11);
        let batch = GenomeMatrix::from_rows(
            &(0..10)
                .map(|_| {
                    (0..firelib::GENE_COUNT)
                        .map(|_| rng.random::<f64>())
                        .collect::<Vec<f64>>()
                })
                .collect::<Vec<_>>(),
        );
        let pool = SharedScenarioPool::new(EvalBackend::WorkerPool(2));
        assert_eq!(pool.inline_threshold(), DEFAULT_INLINE_THRESHOLD);
        // 10 ≤ 16: the default threshold routes this batch inline.
        let inline = pool.evaluate_matrix(&ctx, &batch);
        // Threshold 0 forces the same batch through pool dispatch.
        pool.set_inline_threshold(0);
        let dispatched = pool.evaluate_matrix(&ctx, &batch);
        assert_eq!(inline, dispatched, "inline fallback diverged from dispatch");
        // A serial pool always stays inline.
        assert_eq!(
            SharedScenarioPool::new(EvalBackend::Serial).inline_threshold(),
            usize::MAX
        );
    }

    #[test]
    fn fused_batches_match_per_session_evaluation() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (small_ctx, _) = known_context();
        let truth = Scenario {
            wind_speed_mph: 9.0,
            ..Scenario::reference()
        };
        let sim = Arc::new(FireSim::new(Terrain::uniform(33, 33, 100.0)));
        let from = centre_ignition(33, 33);
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 50.0);
        let big_ctx = Arc::new(StepContext::new(sim, from, target, 0.0, 50.0));

        let mut rng = StdRng::seed_from_u64(5);
        let mut gen_batch = |n: usize| {
            GenomeMatrix::from_rows(
                &(0..n)
                    .map(|_| {
                        (0..firelib::GENE_COUNT)
                            .map(|_| rng.random::<f64>())
                            .collect::<Vec<f64>>()
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let (a, b) = (gen_batch(5), gen_batch(20));
        let empty = GenomeMatrix::new();

        let pool = SharedScenarioPool::new(EvalBackend::WorkerPool(2));
        // Total 25 > 16: the fused call takes the dispatch path while the
        // per-session references below stay inline — the identity must
        // hold across that asymmetry.
        let fused = pool.evaluate_fused(&[
            (Arc::clone(&small_ctx), &a),
            (Arc::clone(&big_ctx), &b),
            (Arc::clone(&small_ctx), &empty),
        ]);
        assert_eq!(fused.len(), 3);
        assert_eq!(fused[0], pool.evaluate_matrix(&small_ctx, &a));
        assert_eq!(fused[1], pool.evaluate_matrix(&big_ctx, &b));
        assert!(fused[2].is_empty());
    }

    #[test]
    fn fitness_in_unit_interval() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let (ctx, _) = known_context();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let genes: Vec<f64> = (0..firelib::GENE_COUNT)
                .map(|_| rng.random::<f64>())
                .collect();
            let f = ctx.fitness_of_genome(&genes);
            assert!((0.0..=1.0).contains(&f), "fitness {f} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "positive duration")]
    fn inverted_interval_rejected() {
        let sim = Arc::new(FireSim::new(Terrain::uniform(5, 5, 100.0)));
        let fl = centre_ignition(5, 5);
        let _ = StepContext::new(sim, fl.clone(), fl, 10.0, 10.0);
    }
}
