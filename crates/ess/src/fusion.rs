//! Cross-session batch fusion — the plumbing that lets one scheduler
//! round evaluate *every* planned session's pending genomes as a single
//! mega-batch on the [`SharedScenarioPool`].
//!
//! The paper's Master/Worker design amortises parallelism over large
//! scenario batches. At service scale the opposite happens: each session
//! step dispatches its own ~population-sized batch, too small for the
//! worker pool to beat serial execution. Fusion restores the large batch
//! by running the planned sessions' steps on *lanes* (one thread each)
//! whose evaluators block on a shared coordinator instead of the pool;
//! the coordinator waits until every live lane has parked a batch, fuses
//! them through [`SharedScenarioPool::evaluate_fused`] (one contiguous
//! [`GenomeMatrix`], one backend submission), and scatters the fitness
//! vectors back. Each lane therefore sees exactly the submission-order
//! semantics of a private evaluator, so a fused round is bit-identical
//! to stepping the sessions one at a time.
//!
//! Liveness invariant: a lane blocked on a reply cannot send
//! [`LaneMsg::Done`], and every lane thread owns a [`LaneGuard`] whose
//! `Drop` sends `Done` when the thread exits — normally or by panic, and
//! even when the step never constructed its evaluator. The coordinator
//! flushes whenever all still-live lanes have parked a batch and exits
//! when no lane is live — no state where both sides wait on each other.

use crate::fitness::{SharedScenarioPool, StepContext};
use evoalg::GenomeMatrix;
use parworker::Backend;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;

/// What a lane can tell the coordinator.
pub enum LaneMsg {
    /// A parked evaluation batch: score `genomes` against `ctx` and send
    /// the fitness vector (row order) back through `reply`.
    Batch {
        /// Step context the batch is scored against.
        ctx: Arc<StepContext>,
        /// The lane's pending genomes, already flat.
        genomes: GenomeMatrix,
        /// Where the lane blocks for its fitness vector.
        reply: Sender<Vec<f64>>,
    },
    /// The lane is finished for this round (sent by [`LaneGuard`]'s
    /// `Drop`, so it also fires when a lane's step panics).
    Done,
}

/// Sends [`LaneMsg::Done`] when dropped. Create one at the top of each
/// lane thread: however the thread exits — step complete, step panicked,
/// evaluator never even built — the coordinator learns the lane is done.
/// Without this, a lane dying silently leaves the coordinator waiting for
/// a batch that never comes while the surviving lanes block on a flush.
pub struct LaneGuard {
    lane: Sender<LaneMsg>,
}

impl LaneGuard {
    /// Arms a guard on `lane`.
    pub fn new(lane: Sender<LaneMsg>) -> Self {
        Self { lane }
    }
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        // The coordinator having already exited is fine: nothing to tell.
        let _ = self.lane.send(LaneMsg::Done);
    }
}

/// The per-lane evaluation backend: parks each batch with the round's
/// coordinator and blocks until the fused results come back. Plugs into
/// `ScenarioEvaluator::with_backend`, so the whole `StepDriver` machinery
/// runs unchanged on a fused round; the step context rides along with
/// every batch.
pub struct FusionLane {
    ctx: Arc<StepContext>,
    lane: Sender<LaneMsg>,
}

impl FusionLane {
    /// A lane backend scoring everything against `ctx`.
    pub fn new(ctx: Arc<StepContext>, lane: Sender<LaneMsg>) -> Self {
        Self { ctx, lane }
    }
}

impl Backend<Vec<f64>, f64> for FusionLane {
    fn map(&mut self, tasks: Vec<Vec<f64>>) -> Vec<f64> {
        let genomes = GenomeMatrix::from_rows(&tasks);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        self.lane
            .send(LaneMsg::Batch {
                ctx: Arc::clone(&self.ctx),
                genomes,
                reply: reply_tx,
            })
            // audit: allow(panic) — the coordinator outlives every lane by scope construction; a hangup means a coordinator panic, which must propagate
            .expect("fusion coordinator hung up before the round finished");
        reply_rx
            .recv()
            // audit: allow(panic) — the coordinator replies to every parked batch or panics; dropping a reply must propagate, not deadlock
            .expect("fusion coordinator dropped a pending reply")
    }

    fn name(&self) -> String {
        "fused".into()
    }

    fn workers(&self) -> usize {
        1
    }
}

/// Runs the fusion coordinator for one round: `lanes` lanes share the
/// sending side of `rx`. Blocks until every lane has sent
/// [`LaneMsg::Done`] — call it on the scheduler thread inside the scope
/// that spawned the lane threads.
///
/// Every flush calls [`SharedScenarioPool::evaluate_fused`] with the
/// parked batches in lane-arrival order; per-lane result order is what a
/// private evaluator would produce, so fusion is invisible to the lanes.
pub fn run_coordinator(pool: &SharedScenarioPool, rx: &Receiver<LaneMsg>, lanes: usize) {
    let mut live = lanes;
    let mut pending: Vec<ParkedBatch> = Vec::new();
    while live > 0 {
        match rx.recv() {
            Ok(LaneMsg::Batch {
                ctx,
                genomes,
                reply,
            }) => pending.push((ctx, genomes, reply)),
            Ok(LaneMsg::Done) => live -= 1,
            // All senders dropped without Done — lanes panicked before
            // constructing their backends; nothing left to coordinate.
            Err(_) => break,
        }
        if live > 0 && !pending.is_empty() && pending.len() == live {
            flush(pool, &mut pending);
        }
    }
    // A batch-blocked lane cannot have sent Done, so this is empty on
    // every orderly exit; flush defensively rather than strand a lane.
    if !pending.is_empty() {
        flush(pool, &mut pending);
    }
}

/// A lane's batch parked at the coordinator until the round flushes.
type ParkedBatch = (Arc<StepContext>, GenomeMatrix, Sender<Vec<f64>>);

fn flush(pool: &SharedScenarioPool, pending: &mut Vec<ParkedBatch>) {
    let batches: Vec<(Arc<StepContext>, &GenomeMatrix)> = pending
        .iter()
        .map(|(ctx, genomes, _)| (Arc::clone(ctx), genomes))
        .collect();
    let results = pool.evaluate_fused(&batches);
    for ((_, _, reply), result) in pending.drain(..).zip(results) {
        // A lane whose thread died no longer listens; that is its problem.
        let _ = reply.send(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{EvalBackend, ScenarioEvaluator};
    use evoalg::BatchEvaluator;
    use firelib::sim::centre_ignition;
    use firelib::{FireSim, Scenario, Terrain};

    fn context(n: usize, wind: f64) -> Arc<StepContext> {
        let truth = Scenario {
            wind_speed_mph: wind,
            ..Scenario::reference()
        };
        let sim = Arc::new(FireSim::new(Terrain::uniform(n, n, 100.0)));
        let from = centre_ignition(n, n);
        let target = sim.simulate_fire_line(&truth, &from, 0.0, 40.0);
        Arc::new(StepContext::new(sim, from, target, 0.0, 40.0))
    }

    fn genomes(seed: u64, n: usize) -> Vec<Vec<f64>> {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..firelib::GENE_COUNT)
                    .map(|_| rng.random::<f64>())
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fused_lanes_match_private_evaluation() {
        let pool = SharedScenarioPool::new(EvalBackend::WorkerPool(2));
        let contexts = [context(21, 4.0), context(27, 8.0), context(21, 12.0)];
        let batches = [genomes(1, 6), genomes(2, 9), genomes(3, 4)];

        let (tx, rx) = std::sync::mpsc::channel();
        let mut fused: Vec<Option<Vec<f64>>> = vec![None; contexts.len()];
        std::thread::scope(|scope| {
            for ((ctx, batch), slot) in contexts.iter().zip(&batches).zip(fused.iter_mut()) {
                let lane = tx.clone();
                scope.spawn(move || {
                    let _done = LaneGuard::new(lane.clone());
                    let mut ev = ScenarioEvaluator::with_backend(
                        Arc::clone(ctx),
                        FusionLane::new(Arc::clone(ctx), lane),
                    );
                    // Two sequential waves per lane, like a GA's
                    // parents-then-offspring evaluations.
                    let first = ev.evaluate(batch);
                    let second = ev.evaluate(batch);
                    assert_eq!(first, second, "same batch, same fitness");
                    *slot = Some(first);
                });
            }
            run_coordinator(&pool, &rx, contexts.len());
        });

        for ((ctx, batch), got) in contexts.iter().zip(&batches).zip(fused) {
            let mut private = ScenarioEvaluator::new(Arc::clone(ctx), EvalBackend::Serial);
            assert_eq!(
                got.expect("lane completed"),
                private.evaluate(batch),
                "fused lane diverged from private evaluation"
            );
        }
    }

    #[test]
    fn coordinator_survives_lanes_with_unequal_wave_counts() {
        let pool = SharedScenarioPool::new(EvalBackend::Serial);
        let ctx = context(15, 5.0);
        let batch = genomes(9, 3);
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for waves in [0usize, 1, 3] {
                let lane = tx.clone();
                let ctx = Arc::clone(&ctx);
                let batch = batch.clone();
                scope.spawn(move || {
                    let _done = LaneGuard::new(lane.clone());
                    let mut ev = ScenarioEvaluator::with_backend(
                        Arc::clone(&ctx),
                        FusionLane::new(Arc::clone(&ctx), lane),
                    );
                    for _ in 0..waves {
                        let fits = ev.evaluate(&batch);
                        assert_eq!(fits.len(), batch.len());
                    }
                });
            }
            run_coordinator(&pool, &rx, 3);
        });
    }
}
