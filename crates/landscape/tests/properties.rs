//! Property-style tests for the raster substrate invariants the rest of
//! the workspace relies on, checked over deterministic seeded streams of
//! random rasters.

use landscape::{jaccard, FireLine, Grid, IgnitionMap, ProbabilityMap, UNIGNITED};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ROWS: usize = 6;
const COLS: usize = 7;
const CASES: u64 = 64;

fn mask(rng: &mut StdRng) -> FireLine {
    let v: Vec<bool> = (0..ROWS * COLS).map(|_| rng.random::<bool>()).collect();
    FireLine::from_mask(Grid::from_vec(ROWS, COLS, v))
}

fn ignition_map(rng: &mut StdRng) -> IgnitionMap {
    // 3:1 mix of finite times and unignited cells, like the former
    // proptest strategy.
    let v: Vec<f64> = (0..ROWS * COLS)
        .map(|_| {
            if rng.random_range(0..4u32) < 3 {
                rng.random::<f64>() * 100.0
            } else {
                UNIGNITED
            }
        })
        .collect();
    IgnitionMap::from_grid(Grid::from_vec(ROWS, COLS, v))
}

/// Eq. (3) is bounded in [0, 1] for any pair of maps and any preburn.
#[test]
fn jaccard_bounded() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b, pre) = (mask(&mut rng), mask(&mut rng), mask(&mut rng));
        let j = jaccard(&a, &b, Some(&pre));
        assert!((0.0..=1.0).contains(&j));
    }
}

/// Eq. (3) is symmetric: intersection and union are symmetric sets.
#[test]
fn jaccard_symmetric() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (mask(&mut rng), mask(&mut rng));
        assert_eq!(
            jaccard(&a, &b, None).to_bits(),
            jaccard(&b, &a, None).to_bits()
        );
    }
}

/// A map compared with itself is a perfect prediction.
#[test]
fn jaccard_reflexive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, pre) = (mask(&mut rng), mask(&mut rng));
        assert_eq!(jaccard(&a, &a, Some(&pre)), 1.0);
    }
}

/// Fire lines extracted at increasing instants are nested (the burned
/// region can only grow with time).
#[test]
fn fire_lines_nested_in_time() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = ignition_map(&mut rng);
        let t1 = rng.random::<f64>() * 100.0;
        let dt = rng.random::<f64>() * 100.0;
        let early = m.fire_line_at(t1);
        let late = m.fire_line_at(t1 + dt);
        assert!(early.is_subset_of(&late));
    }
}

/// Thresholding a probability map is antitone in Kign: a higher key
/// ignition value never enlarges the predicted burned area.
#[test]
fn threshold_antitone() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..8usize);
        let lines: Vec<FireLine> = (0..n).map(|_| mask(&mut rng)).collect();
        let pm = ProbabilityMap::from_lines(ROWS, COLS, lines.iter());
        let k1 = rng.random::<f64>();
        let k2 = rng.random::<f64>();
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        assert!(pm.threshold(hi).is_subset_of(&pm.threshold(lo)));
    }
}

/// Every aggregated fire line is a superset of the Kign=1 consensus and a
/// subset of the Kign→0⁺ union region.
#[test]
fn threshold_extremes_bracket_inputs() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..8usize);
        let lines: Vec<FireLine> = (0..n).map(|_| mask(&mut rng)).collect();
        let pm = ProbabilityMap::from_lines(ROWS, COLS, lines.iter());
        let consensus = pm.threshold(1.0);
        let eps = 1.0 / (lines.len() as f64 * 2.0);
        let union = pm.threshold(eps);
        for l in &lines {
            assert!(consensus.is_subset_of(l));
            assert!(l.is_subset_of(&union));
        }
    }
}

/// CSV round-trip preserves grids within formatting precision (the
/// written precision is 1e-6 absolute).
#[test]
fn csv_roundtrip() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let v: Vec<f64> = (0..ROWS * COLS)
            .map(|_| -1e6 + rng.random::<f64>() * 2e6)
            .collect();
        let g = Grid::from_vec(ROWS, COLS, v);
        let back = landscape::io::grid_from_csv(&landscape::io::grid_to_csv(&g)).unwrap();
        assert_eq!(back.shape(), (ROWS, COLS));
        for r in 0..ROWS {
            for c in 0..COLS {
                assert!((back.at(r, c) - g.at(r, c)).abs() < 1e-5);
            }
        }
    }
}

/// IQR is non-negative and zero for constant samples.
#[test]
fn iqr_nonnegative() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(0..40usize);
        let v: Vec<f64> = (0..n).map(|_| -1e3 + rng.random::<f64>() * 2e3).collect();
        assert!(landscape::metrics::iqr(&v) >= 0.0);
    }
    assert_eq!(landscape::metrics::iqr(&[2.5; 9]), 0.0);
}
