//! Property-based tests for the raster substrate invariants the rest of the
//! workspace relies on.

use landscape::{jaccard, FireLine, Grid, IgnitionMap, ProbabilityMap, UNIGNITED};
use proptest::prelude::*;

const ROWS: usize = 6;
const COLS: usize = 7;

fn arb_mask() -> impl Strategy<Value = FireLine> {
    proptest::collection::vec(any::<bool>(), ROWS * COLS)
        .prop_map(|v| FireLine::from_mask(Grid::from_vec(ROWS, COLS, v)))
}

fn arb_ignition_map() -> impl Strategy<Value = IgnitionMap> {
    proptest::collection::vec(
        prop_oneof![3 => 0.0f64..100.0, 1 => Just(UNIGNITED)],
        ROWS * COLS,
    )
    .prop_map(|v| IgnitionMap::from_grid(Grid::from_vec(ROWS, COLS, v)))
}

proptest! {
    /// Eq. (3) is bounded in [0, 1] for any pair of maps and any preburn.
    #[test]
    fn jaccard_bounded(a in arb_mask(), b in arb_mask(), pre in arb_mask()) {
        let j = jaccard(&a, &b, Some(&pre));
        prop_assert!((0.0..=1.0).contains(&j));
    }

    /// Eq. (3) is symmetric: intersection and union are symmetric sets.
    #[test]
    fn jaccard_symmetric(a in arb_mask(), b in arb_mask()) {
        prop_assert_eq!(jaccard(&a, &b, None).to_bits(), jaccard(&b, &a, None).to_bits());
    }

    /// A map compared with itself is a perfect prediction.
    #[test]
    fn jaccard_reflexive(a in arb_mask(), pre in arb_mask()) {
        prop_assert_eq!(jaccard(&a, &a, Some(&pre)), 1.0);
    }

    /// Fire lines extracted at increasing instants are nested (the burned
    /// region can only grow with time).
    #[test]
    fn fire_lines_nested_in_time(
        m in arb_ignition_map(),
        t1 in 0.0f64..100.0,
        dt in 0.0f64..100.0,
    ) {
        let early = m.fire_line_at(t1);
        let late = m.fire_line_at(t1 + dt);
        prop_assert!(early.is_subset_of(&late));
    }

    /// Thresholding a probability map is antitone in Kign: a higher key
    /// ignition value never enlarges the predicted burned area.
    #[test]
    fn threshold_antitone(
        lines in proptest::collection::vec(arb_mask(), 1..8),
        k1 in 0.0f64..=1.0,
        k2 in 0.0f64..=1.0,
    ) {
        let pm = ProbabilityMap::from_lines(ROWS, COLS, lines.iter());
        let (lo, hi) = if k1 <= k2 { (k1, k2) } else { (k2, k1) };
        prop_assert!(pm.threshold(hi).is_subset_of(&pm.threshold(lo)));
    }

    /// Every aggregated fire line is a superset of the Kign=1 consensus and
    /// a subset of the Kign→0⁺ union region.
    #[test]
    fn threshold_extremes_bracket_inputs(
        lines in proptest::collection::vec(arb_mask(), 1..8),
    ) {
        let pm = ProbabilityMap::from_lines(ROWS, COLS, lines.iter());
        let consensus = pm.threshold(1.0);
        let eps = 1.0 / (lines.len() as f64 * 2.0);
        let union = pm.threshold(eps);
        for l in &lines {
            prop_assert!(consensus.is_subset_of(l));
            prop_assert!(l.is_subset_of(&union));
        }
    }

    /// CSV round-trip preserves grids bit-for-bit within formatting
    /// precision (1e-6 absolute, the written precision).
    #[test]
    fn csv_roundtrip(v in proptest::collection::vec(-1e6f64..1e6, ROWS * COLS)) {
        let g = Grid::from_vec(ROWS, COLS, v);
        let back = landscape::io::grid_from_csv(&landscape::io::grid_to_csv(&g)).unwrap();
        prop_assert_eq!(back.shape(), (ROWS, COLS));
        for r in 0..ROWS {
            for c in 0..COLS {
                prop_assert!((back.at(r, c) - g.at(r, c)).abs() < 1e-5);
            }
        }
    }

    /// IQR is non-negative and zero for constant samples.
    #[test]
    fn iqr_nonnegative(v in proptest::collection::vec(-1e3f64..1e3, 0..40)) {
        prop_assert!(landscape::metrics::iqr(&v) >= 0.0);
    }
}
