//! Raster substrate for the ESS-NS wildfire prediction reproduction.
//!
//! The fire simulator, the statistical stage and every quality metric in the
//! ESS family of systems operate on *square-cell rasters* ("the map of the
//! field as a matrix of square cells", paper §III-B). This crate provides:
//!
//! * [`Grid`] — a generic row-major raster with 8-neighbour topology;
//! * [`IgnitionMap`] — per-cell ignition times, the output of one fire
//!   simulation ("a map indicating the time instant of ignition of each
//!   cell", paper §III-A);
//! * [`FireLine`] — the burned-cell set at a given instant (the `RFL`/`PFL`
//!   objects of Figs. 1–3);
//! * [`ProbabilityMap`] — the aggregated ignition-probability matrix built by
//!   the Statistical Stage and thresholded by the Key Ignition Value;
//! * [`metrics::jaccard`] — the fitness function of Eq. (3), excluding
//!   pre-burned cells;
//! * [`synth`] — seeded procedural raster generators (noise fields, fuel
//!   mosaics, DEM-style slope/aspect) behind the workload corpus;
//! * ASCII / CSV raster IO for the examples and the report harness.

pub mod firemap;
pub mod geometry;
pub mod grid;
pub mod io;
pub mod metrics;
pub mod perimeter;
pub mod probability;
pub mod synth;

pub use firemap::{FireLine, IgnitionMap, UNIGNITED};
pub use geometry::{CellId, Direction8, NEIGHBOUR_OFFSETS};
pub use grid::Grid;
pub use metrics::{jaccard, jaccard_at_time, JaccardBreakdown};
pub use perimeter::{perimeter_cells, shape_stats, ShapeStats};
pub use probability::ProbabilityMap;
