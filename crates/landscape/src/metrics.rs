//! Map-comparison metrics — the fitness function of the ESS family.

use crate::firemap::{FireLine, IgnitionMap};
use crate::grid::Grid;

/// Cell-level contingency counts behind a Jaccard evaluation.
///
/// Useful for the report harness: the ESS literature frequently discusses
/// over-prediction (cells predicted burned that did not burn) separately
/// from under-prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JaccardBreakdown {
    /// Burned in both maps (the intersection).
    pub hits: usize,
    /// Burned only in the prediction (over-prediction).
    pub false_alarms: usize,
    /// Burned only in the reference (under-prediction).
    pub misses: usize,
    /// Cells excluded because they were burned before the simulation started.
    pub excluded: usize,
}

impl JaccardBreakdown {
    /// The Jaccard index |A∩B| / |A∪B| implied by these counts.
    ///
    /// When both maps are empty after exclusion the union is empty; the
    /// prediction is trivially perfect, so this returns 1.0 (matching the
    /// ESS convention that a no-growth step predicted as no-growth scores 1).
    pub fn index(&self) -> f64 {
        let union = self.hits + self.false_alarms + self.misses;
        if union == 0 {
            1.0
        } else {
            self.hits as f64 / union as f64
        }
    }
}

/// Fitness function of the ESS systems — Eq. (3) of the paper:
///
/// ```text
/// fitness(A, B) = |A ∩ B| / |A ∪ B|
/// ```
///
/// where `A` is the real burned map and `B` the simulated/predicted map,
/// **both with the cells already burned before the simulation removed**
/// ("previously burned cells are not considered in order to avoid skewed
/// results", §III-B). `preburn` may be `None` when nothing was burned before
/// the step (e.g. the very first instant).
///
/// Returns a value in `[0, 1]`: 1 is a perfect prediction, 0 the worst.
///
/// # Panics
/// Panics when the maps (or mask) differ in shape.
pub fn jaccard(real: &FireLine, predicted: &FireLine, preburn: Option<&FireLine>) -> f64 {
    jaccard_breakdown(real, predicted, preburn).index()
}

/// Like [`jaccard`] but returns the full contingency counts.
pub fn jaccard_breakdown(
    real: &FireLine,
    predicted: &FireLine,
    preburn: Option<&FireLine>,
) -> JaccardBreakdown {
    assert!(
        real.mask().same_shape(predicted.mask()),
        "jaccard: real and predicted maps differ in shape"
    );
    if let Some(p) = preburn {
        assert!(
            real.mask().same_shape(p.mask()),
            "jaccard: preburn mask differs in shape"
        );
    }

    let mut counts = JaccardBreakdown {
        hits: 0,
        false_alarms: 0,
        misses: 0,
        excluded: 0,
    };
    let n = real.mask().len();
    let ra = real.mask().as_slice();
    let pa = predicted.mask().as_slice();
    for i in 0..n {
        if let Some(p) = preburn {
            if p.mask().as_slice()[i] {
                counts.excluded += 1;
                continue;
            }
        }
        match (ra[i], pa[i]) {
            (true, true) => counts.hits += 1,
            (false, true) => counts.false_alarms += 1,
            (true, false) => counts.misses += 1,
            (false, false) => {}
        }
    }
    counts
}

/// [`jaccard`] of `real` against the fire line `simulated` implies at
/// instant `t`, computed directly from the ignition-time raster.
///
/// Equivalent to `jaccard(real, &simulated.fire_line_at(t), preburn)` but
/// streaming — no burned-mask raster is materialised, which keeps the
/// per-evaluation hot path of the scenario evaluators allocation-free.
///
/// # Panics
/// Panics when the rasters differ in shape.
pub fn jaccard_at_time(
    real: &FireLine,
    simulated: &IgnitionMap,
    t: f64,
    preburn: Option<&FireLine>,
) -> f64 {
    assert!(
        real.mask().same_shape(simulated.grid()),
        "jaccard: real map and ignition raster differ in shape"
    );
    if let Some(p) = preburn {
        assert!(
            real.mask().same_shape(p.mask()),
            "jaccard: preburn mask differs in shape"
        );
    }
    let ra = real.mask().as_slice();
    let ts = simulated.grid().as_slice();
    let pre = preburn.map(|p| p.mask().as_slice());
    let mut hits = 0usize;
    let mut union = 0usize;
    let mut tally = |&was_real: &bool, &arrival: &f64, excluded: bool| {
        if excluded {
            return;
        }
        match (was_real, arrival <= t) {
            (true, true) => {
                hits += 1;
                union += 1;
            }
            (true, false) | (false, true) => union += 1,
            (false, false) => {}
        }
    };
    match pre {
        Some(pre) => {
            for ((r, a), &p) in ra.iter().zip(ts).zip(pre) {
                tally(r, a, p);
            }
        }
        None => {
            for (r, a) in ra.iter().zip(ts) {
                tally(r, a, false);
            }
        }
    }
    if union == 0 {
        1.0
    } else {
        hits as f64 / union as f64
    }
}

/// Mean and population standard deviation of a sample.
///
/// Shared by the diversity/quality reporting across crates; lives here so
/// every consumer agrees on the definition (population, not sample, σ).
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Interquartile range (Q3 − Q1) using the nearest-rank method.
///
/// This is the population-spread statistic used by ESSIM-DE's dynamic
/// tuning metric (\[22\] in the paper): a collapsing IQR of the population
/// fitness signals premature convergence.
pub fn iqr(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let q = |frac: f64| -> f64 {
        let pos = frac * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    };
    q(0.75) - q(0.25)
}

/// Sørensen–Dice coefficient, 2|A∩B| / (|A|+|B|) — reported alongside
/// Jaccard by some of the predecessor papers; kept for the harness.
pub fn dice(real: &FireLine, predicted: &FireLine, preburn: Option<&FireLine>) -> f64 {
    let b = jaccard_breakdown(real, predicted, preburn);
    let denom = 2 * b.hits + b.false_alarms + b.misses;
    if denom == 0 {
        1.0
    } else {
        2.0 * b.hits as f64 / denom as f64
    }
}

/// Builds a [`FireLine`] difference map: cells burned in exactly one input.
pub fn symmetric_difference(a: &FireLine, b: &FireLine) -> FireLine {
    assert!(
        a.mask().same_shape(b.mask()),
        "symmetric_difference: shape mismatch"
    );
    let rows = a.rows();
    let cols = a.cols();
    let mut g = Grid::filled(rows, cols, false);
    for r in 0..rows {
        for c in 0..cols {
            g.set(r, c, a.is_burned(r, c) != b.is_burned(r, c));
        }
    }
    FireLine::from_mask(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(rows: usize, cols: usize, cells: &[(usize, usize)]) -> FireLine {
        FireLine::from_cells(rows, cols, cells)
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let a = fl(3, 3, &[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(jaccard(&a, &a.clone(), None), 1.0);
    }

    #[test]
    fn disjoint_prediction_scores_zero() {
        let a = fl(2, 2, &[(0, 0)]);
        let b = fl(2, 2, &[(1, 1)]);
        assert_eq!(jaccard(&a, &b, None), 0.0);
    }

    #[test]
    fn half_overlap() {
        // A = {a,b}, B = {b,c}: |A∩B| = 1, |A∪B| = 3.
        let a = fl(2, 2, &[(0, 0), (0, 1)]);
        let b = fl(2, 2, &[(0, 1), (1, 0)]);
        assert!((jaccard(&a, &b, None) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn preburn_cells_are_excluded() {
        // Both maps burn the preburned cell; without exclusion J would be
        // 1/1 = 1. With exclusion the remaining maps are empty → 1.0 too,
        // so craft a case where exclusion changes the score:
        let real = fl(2, 2, &[(0, 0), (1, 1)]);
        let pred = fl(2, 2, &[(0, 0)]);
        let pre = fl(2, 2, &[(0, 0)]);
        // Excluding (0,0): real = {(1,1)}, pred = {} → J = 0.
        assert_eq!(jaccard(&real, &pred, Some(&pre)), 0.0);
        // Without exclusion J = 1/2.
        assert_eq!(jaccard(&real, &pred, None), 0.5);
    }

    #[test]
    fn empty_union_is_perfect() {
        let a = fl(2, 2, &[]);
        assert_eq!(jaccard(&a, &a.clone(), None), 1.0);
    }

    #[test]
    fn breakdown_counts() {
        let real = fl(2, 3, &[(0, 0), (0, 1), (1, 2)]);
        let pred = fl(2, 3, &[(0, 1), (1, 0), (1, 2)]);
        let b = jaccard_breakdown(&real, &pred, None);
        assert_eq!(b.hits, 2);
        assert_eq!(b.misses, 1);
        assert_eq!(b.false_alarms, 1);
        assert_eq!(b.excluded, 0);
        assert!((b.index() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_at_time_matches_materialised_fire_line() {
        use crate::firemap::UNIGNITED;
        let times = Grid::from_vec(2, 3, vec![0.0, 5.0, UNIGNITED, 2.0, 7.0, 9.0]);
        let map = IgnitionMap::from_grid(times);
        let real = fl(2, 3, &[(0, 0), (0, 1), (1, 2)]);
        let pre = fl(2, 3, &[(0, 0)]);
        for t in [0.0, 2.0, 5.0, 8.0, 100.0] {
            let line = map.fire_line_at(t);
            assert_eq!(
                jaccard_at_time(&real, &map, t, None),
                jaccard(&real, &line, None),
                "t = {t}"
            );
            assert_eq!(
                jaccard_at_time(&real, &map, t, Some(&pre)),
                jaccard(&real, &line, Some(&pre)),
                "t = {t} with preburn"
            );
        }
    }

    #[test]
    fn dice_relates_to_jaccard() {
        let real = fl(2, 3, &[(0, 0), (0, 1), (1, 2)]);
        let pred = fl(2, 3, &[(0, 1), (1, 0), (1, 2)]);
        let j = jaccard(&real, &pred, None);
        let d = dice(&real, &pred, None);
        // D = 2J / (1 + J)
        assert!((d - 2.0 * j / (1.0 + j)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_difference_is_xor() {
        let a = fl(2, 2, &[(0, 0), (0, 1)]);
        let b = fl(2, 2, &[(0, 1), (1, 1)]);
        let d = symmetric_difference(&a, &b);
        assert!(d.is_burned(0, 0));
        assert!(!d.is_burned(0, 1));
        assert!(d.is_burned(1, 1));
        assert_eq!(d.burned_area(), 2);
    }

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn iqr_linear_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0];
        // positions: q1 at 0.75 -> 1.75, q3 at 2.25 -> 3.25 → IQR 1.5
        assert!((iqr(&v) - 1.5).abs() < 1e-12);
        assert_eq!(iqr(&[1.0]), 0.0);
    }
}
