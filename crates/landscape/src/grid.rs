//! Generic row-major raster grid.

use crate::geometry::CellId;

/// A dense, row-major 2-D raster of `T` values.
///
/// Rows index latitude (north → south), columns index longitude
/// (west → east), matching the convention of fireLib's demo maps. The grid
/// is the common currency of the whole workspace: terrain layers, ignition
/// maps, probability matrices and burned masks are all `Grid`s.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid of `rows × cols` cells, every cell set to `fill`.
    ///
    /// # Panics
    /// Panics if either dimension is zero: a degenerate raster has no
    /// meaning anywhere in the pipeline and would only defer the error.
    pub fn filled(rows: usize, cols: usize, fill: T) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![fill; rows * cols],
        }
    }

    /// Builds a grid by evaluating `f(row, col)` for every cell.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        Self { rows, cols, data }
    }
}

impl<T> Grid<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the grid holds no cells (never true by construction, but
    /// kept for API completeness alongside [`Grid::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `(rows, cols)` pair, convenient for shape equality checks.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when `other` has the same shape.
    #[inline]
    pub fn same_shape<U>(&self, other: &Grid<U>) -> bool {
        self.rows == other.rows && self.cols == other.cols
    }

    /// Converts `(row, col)` to a flat [`CellId`].
    #[inline]
    pub fn id(&self, row: usize, col: usize) -> CellId {
        debug_assert!(row < self.rows && col < self.cols);
        CellId(row * self.cols + col)
    }

    /// Converts a flat [`CellId`] back to `(row, col)`.
    #[inline]
    pub fn coords(&self, id: CellId) -> (usize, usize) {
        (id.0 / self.cols, id.0 % self.cols)
    }

    /// `true` when `(row, col)` lies inside the raster.
    #[inline]
    pub fn in_bounds(&self, row: isize, col: isize) -> bool {
        row >= 0 && col >= 0 && (row as usize) < self.rows && (col as usize) < self.cols
    }

    /// Borrow the cell at `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> &T {
        &self.data[row * self.cols + col]
    }

    /// Mutably borrow the cell at `(row, col)`.
    #[inline]
    pub fn get_mut(&mut self, row: usize, col: usize) -> &mut T {
        &mut self.data[row * self.cols + col]
    }

    /// Overwrite the cell at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: T) {
        self.data[row * self.cols + col] = value;
    }

    /// Borrow the raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the raw row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate over `((row, col), &value)` in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = ((usize, usize), &T)> {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| ((i / cols, i % cols), v))
    }

    /// Applies `f` to every cell, producing a grid of the results.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Cells adjacent to `(row, col)` under the 8-neighbour topology, with
    /// the centre-to-centre distance factor (1 for orthogonal, √2 for
    /// diagonal neighbours) in units of the cell side length.
    pub fn neighbours8(
        &self,
        row: usize,
        col: usize,
    ) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        crate::geometry::NEIGHBOUR_OFFSETS
            .iter()
            .filter_map(move |&(dr, dc, dist)| {
                let (nr, nc) = (row as isize + dr, col as isize + dc);
                self.in_bounds(nr, nc)
                    .then_some((nr as usize, nc as usize, dist))
            })
    }
}

impl<T: Copy> Grid<T> {
    /// Copy of the cell at `(row, col)`.
    #[inline]
    pub fn at(&self, row: usize, col: usize) -> T {
        self.data[row * self.cols + col]
    }

    /// Resets every cell to `fill` without reallocating — used by the
    /// simulator scratch buffers so the hot loop never allocates.
    pub fn fill(&mut self, fill: T) {
        self.data.fill(fill);
    }
}

impl Grid<f64> {
    /// Minimum finite value, or `None` when every cell is non-finite.
    pub fn min_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| {
                Some(match acc {
                    Some(m) if m <= v => m,
                    _ => v,
                })
            })
    }

    /// Maximum finite value, or `None` when every cell is non-finite.
    pub fn max_finite(&self) -> Option<f64> {
        self.data
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| {
                Some(match acc {
                    Some(m) if m >= v => m,
                    _ => v,
                })
            })
    }
}

impl Grid<bool> {
    /// Number of `true` cells.
    pub fn count_true(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_sets_every_cell() {
        let g = Grid::filled(3, 4, 7u32);
        assert_eq!(g.shape(), (3, 4));
        assert_eq!(g.len(), 12);
        assert!(g.as_slice().iter().all(|&v| v == 7));
    }

    #[test]
    fn from_fn_row_major_order() {
        let g = Grid::from_fn(2, 3, |r, c| (r, c));
        assert_eq!(*g.get(0, 0), (0, 0));
        assert_eq!(*g.get(0, 2), (0, 2));
        assert_eq!(*g.get(1, 1), (1, 1));
        assert_eq!(g.as_slice()[3], (1, 0));
    }

    #[test]
    fn id_coords_roundtrip() {
        let g = Grid::filled(5, 7, 0u8);
        for r in 0..5 {
            for c in 0..7 {
                assert_eq!(g.coords(g.id(r, c)), (r, c));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_rejected() {
        let _ = Grid::filled(0, 3, 0u8);
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_vec_length_mismatch_rejected() {
        let _ = Grid::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn corner_has_three_neighbours() {
        let g = Grid::filled(4, 4, 0u8);
        assert_eq!(g.neighbours8(0, 0).count(), 3);
        assert_eq!(g.neighbours8(3, 3).count(), 3);
    }

    #[test]
    fn edge_has_five_neighbours_interior_eight() {
        let g = Grid::filled(4, 4, 0u8);
        assert_eq!(g.neighbours8(0, 2).count(), 5);
        assert_eq!(g.neighbours8(2, 2).count(), 8);
    }

    #[test]
    fn diagonal_neighbours_carry_sqrt2() {
        let g = Grid::filled(3, 3, 0u8);
        let diag: Vec<_> = g
            .neighbours8(1, 1)
            .filter(|&(r, c, _)| r != 1 && c != 1)
            .collect();
        assert_eq!(diag.len(), 4);
        for (_, _, d) in diag {
            assert!((d - std::f64::consts::SQRT_2).abs() < 1e-12);
        }
    }

    #[test]
    fn map_preserves_shape() {
        let g = Grid::from_fn(3, 2, |r, c| r + c);
        let doubled = g.map(|v| v * 2);
        assert_eq!(doubled.shape(), (3, 2));
        assert_eq!(*doubled.get(2, 1), 6);
    }

    #[test]
    fn min_max_finite_ignore_infinities() {
        let g = Grid::from_vec(1, 4, vec![f64::INFINITY, 3.0, -1.0, f64::NAN]);
        assert_eq!(g.min_finite(), Some(-1.0));
        assert_eq!(g.max_finite(), Some(3.0));
        let all_inf = Grid::filled(2, 2, f64::INFINITY);
        assert_eq!(all_inf.min_finite(), None);
    }

    #[test]
    fn fill_resets_in_place() {
        let mut g = Grid::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        g.fill(0.0);
        assert!(g.as_slice().iter().all(|&v| v == 0.0));
    }
}
