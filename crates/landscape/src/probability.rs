//! Ignition-probability matrices — the Statistical Stage's data structure.
//!
//! The SS block of Figs. 1–3 "aggregates the resulting maps into a matrix in
//! which each cell represents the probability of ignition of that region".
//! [`ProbabilityMap`] is that matrix; thresholding it at the Key Ignition
//! Value (`Kign`) yields the predicted fire line (Fig. 2).

use crate::firemap::FireLine;
use crate::grid::Grid;

/// Per-cell ignition frequency over a set of overlapping simulations.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilityMap {
    counts: Grid<u32>,
    samples: u32,
}

impl ProbabilityMap {
    /// An empty accumulator for maps of the given shape.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            counts: Grid::filled(rows, cols, 0),
            samples: 0,
        }
    }

    /// Number of aggregated fire lines.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.counts.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.counts.cols()
    }

    /// Accumulates one simulated fire line (one scenario's burned map).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate(&mut self, line: &FireLine) {
        assert!(
            self.counts.same_shape(line.mask()),
            "probability map: fire line shape mismatch"
        );
        self.samples += 1;
        for ((r, c), &burned) in line.mask().iter_cells() {
            if burned {
                *self.counts.get_mut(r, c) += 1;
            }
        }
    }

    /// Accumulates one fire line with an integer weight (used by variants
    /// that weight scenarios by fitness).
    pub fn accumulate_weighted(&mut self, line: &FireLine, weight: u32) {
        assert!(
            self.counts.same_shape(line.mask()),
            "probability map: fire line shape mismatch"
        );
        self.samples += weight;
        for ((r, c), &burned) in line.mask().iter_cells() {
            if burned {
                *self.counts.get_mut(r, c) += weight;
            }
        }
    }

    /// Aggregates a whole collection in one call.
    pub fn from_lines<'a>(
        rows: usize,
        cols: usize,
        lines: impl IntoIterator<Item = &'a FireLine>,
    ) -> Self {
        let mut pm = Self::new(rows, cols);
        for l in lines {
            pm.accumulate(l);
        }
        pm
    }

    /// Ignition probability of `(row, col)` ∈ `[0, 1]`; 0 when no samples
    /// have been accumulated yet.
    #[inline]
    pub fn probability(&self, row: usize, col: usize) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.counts.at(row, col) as f64 / self.samples as f64
        }
    }

    /// The full probability raster.
    pub fn to_grid(&self) -> Grid<f64> {
        let s = self.samples;
        self.counts
            .map(|&c| if s == 0 { 0.0 } else { c as f64 / s as f64 })
    }

    /// Applies the Key Ignition Value: a cell is predicted burned when its
    /// ignition probability is **greater than or equal to** `kign`.
    ///
    /// `kign` is clamped to `[0, 1]`. With `kign = 0` every cell burns (any
    /// probability ≥ 0); raising `kign` monotonically shrinks the predicted
    /// area, which the calibration stage exploits.
    pub fn threshold(&self, kign: f64) -> FireLine {
        let k = kign.clamp(0.0, 1.0);
        let s = self.samples;
        let mask = self.counts.map(|&c| {
            let p = if s == 0 { 0.0 } else { c as f64 / s as f64 };
            p >= k
        });
        FireLine::from_mask(mask)
    }

    /// The distinct probability levels present in the map, ascending.
    ///
    /// The calibration search only needs to test these values (plus 0):
    /// thresholding is a step function of `kign` with steps exactly at the
    /// observed levels.
    pub fn distinct_levels(&self) -> Vec<f64> {
        if self.samples == 0 {
            return vec![0.0];
        }
        let mut counts: Vec<u32> = self.counts.as_slice().to_vec();
        counts.sort_unstable();
        counts.dedup();
        counts
            .into_iter()
            .map(|c| c as f64 / self.samples as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fl(cells: &[(usize, usize)]) -> FireLine {
        FireLine::from_cells(2, 2, cells)
    }

    #[test]
    fn probabilities_are_frequencies() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&fl(&[(0, 0), (0, 1)]));
        pm.accumulate(&fl(&[(0, 0)]));
        pm.accumulate(&fl(&[(0, 0), (1, 1)]));
        assert_eq!(pm.samples(), 3);
        assert!((pm.probability(0, 0) - 1.0).abs() < 1e-12);
        assert!((pm.probability(0, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((pm.probability(1, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn threshold_zero_burns_everything() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&fl(&[(0, 0)]));
        assert_eq!(pm.threshold(0.0).burned_area(), 4);
    }

    #[test]
    fn threshold_is_monotone_decreasing_in_kign() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&fl(&[(0, 0), (0, 1)]));
        pm.accumulate(&fl(&[(0, 0)]));
        let a0 = pm.threshold(0.0).burned_area();
        let a1 = pm.threshold(0.4).burned_area();
        let a2 = pm.threshold(0.9).burned_area();
        let a3 = pm.threshold(1.0).burned_area();
        assert!(a0 >= a1 && a1 >= a2 && a2 >= a3);
        assert_eq!(a3, 1); // only (0,0) has p = 1
    }

    #[test]
    fn threshold_includes_equal_probability() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&fl(&[(0, 0)]));
        pm.accumulate(&fl(&[(0, 0), (0, 1)]));
        // p(0,1) = 0.5; threshold at exactly 0.5 keeps it.
        assert!(pm.threshold(0.5).is_burned(0, 1));
        assert!(!pm.threshold(0.51).is_burned(0, 1));
    }

    #[test]
    fn empty_map_thresholds_empty_above_zero() {
        let pm = ProbabilityMap::new(2, 2);
        assert_eq!(pm.threshold(0.1).burned_area(), 0);
        assert_eq!(pm.probability(1, 1), 0.0);
    }

    #[test]
    fn distinct_levels_sorted_and_deduped() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&fl(&[(0, 0), (0, 1)]));
        pm.accumulate(&fl(&[(0, 0)]));
        let levels = pm.distinct_levels();
        assert_eq!(levels, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn weighted_accumulation_matches_repeats() {
        let mut a = ProbabilityMap::new(2, 2);
        a.accumulate_weighted(&fl(&[(0, 0)]), 3);
        a.accumulate(&fl(&[(0, 1)]));
        let mut b = ProbabilityMap::new(2, 2);
        for _ in 0..3 {
            b.accumulate(&fl(&[(0, 0)]));
        }
        b.accumulate(&fl(&[(0, 1)]));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let mut pm = ProbabilityMap::new(2, 2);
        pm.accumulate(&FireLine::empty(3, 3));
    }
}
