//! Ignition-time maps and burned-cell fire lines.

use crate::grid::Grid;

/// Sentinel ignition time for a cell the fire never reaches.
///
/// fireLib reports such cells as `0` in its output map (paper §III-A: "the
/// moment when that cell is reached by the fire, or zero otherwise"); we use
/// `+∞` instead so that "earlier" comparisons need no special case, and
/// translate at the IO boundary.
pub const UNIGNITED: f64 = f64::INFINITY;

/// Per-cell ignition times (minutes since the start of the simulation).
///
/// This is the raw output of one fire-simulator run for one scenario: the
/// `FS` block of Figs. 1–3 produces exactly one of these per parameter
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub struct IgnitionMap {
    times: Grid<f64>,
}

impl IgnitionMap {
    /// A map where no cell has ignited yet.
    pub fn unignited(rows: usize, cols: usize) -> Self {
        Self {
            times: Grid::filled(rows, cols, UNIGNITED),
        }
    }

    /// Wraps a grid of ignition times.
    ///
    /// # Panics
    /// Panics if any time is negative or NaN — ignition times are physical
    /// instants and the propagation algorithms rely on their ordering.
    pub fn from_grid(times: Grid<f64>) -> Self {
        for (_, &t) in times.iter_cells() {
            assert!(
                !t.is_nan() && t >= 0.0,
                "ignition times must be non-negative, not NaN"
            );
        }
        Self { times }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.times.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.times.cols()
    }

    /// Ignition time of `(row, col)` ([`UNIGNITED`] when never reached).
    #[inline]
    pub fn time(&self, row: usize, col: usize) -> f64 {
        self.times.at(row, col)
    }

    /// Sets the ignition time of a cell.
    #[inline]
    pub fn set_time(&mut self, row: usize, col: usize, t: f64) {
        debug_assert!(!t.is_nan() && t >= 0.0);
        self.times.set(row, col, t);
    }

    /// Underlying grid of times.
    pub fn grid(&self) -> &Grid<f64> {
        &self.times
    }

    /// Mutable access for simulator scratch reuse.
    pub fn grid_mut(&mut self) -> &mut Grid<f64> {
        &mut self.times
    }

    /// Resets every cell to [`UNIGNITED`] in place (no reallocation).
    pub fn clear(&mut self) {
        self.times.fill(UNIGNITED);
    }

    /// The burned-cell set at instant `t`: every cell whose ignition time is
    /// `<= t`. This is how an `RFL`/`PFL` snapshot is extracted from a
    /// simulation.
    pub fn fire_line_at(&self, t: f64) -> FireLine {
        FireLine {
            burned: self.times.map(|&it| it <= t),
        }
    }

    /// Number of cells ignited at or before `t`.
    pub fn burned_count_at(&self, t: f64) -> usize {
        self.times.as_slice().iter().filter(|&&it| it <= t).count()
    }

    /// Latest finite ignition time, or `None` when nothing burned.
    pub fn last_ignition(&self) -> Option<f64> {
        self.times.max_finite()
    }
}

/// A burned-cell mask at a single time instant — the "fire line" objects
/// (`RFL_i`, `PFL_i`) exchanged between the stages of Figs. 1–3.
#[derive(Debug, Clone, PartialEq)]
pub struct FireLine {
    burned: Grid<bool>,
}

impl FireLine {
    /// An empty (nothing burned) fire line.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            burned: Grid::filled(rows, cols, false),
        }
    }

    /// Wraps a burned mask.
    pub fn from_mask(burned: Grid<bool>) -> Self {
        Self { burned }
    }

    /// Builds a fire line from a list of `(row, col)` burned cells.
    pub fn from_cells(rows: usize, cols: usize, cells: &[(usize, usize)]) -> Self {
        let mut burned = Grid::filled(rows, cols, false);
        for &(r, c) in cells {
            burned.set(r, c, true);
        }
        Self { burned }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.burned.rows()
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.burned.cols()
    }

    /// `true` when `(row, col)` is burned.
    #[inline]
    pub fn is_burned(&self, row: usize, col: usize) -> bool {
        self.burned.at(row, col)
    }

    /// Marks a cell burned/unburned.
    pub fn set_burned(&mut self, row: usize, col: usize, burned: bool) {
        self.burned.set(row, col, burned);
    }

    /// The underlying mask.
    pub fn mask(&self) -> &Grid<bool> {
        &self.burned
    }

    /// Number of burned cells.
    pub fn burned_area(&self) -> usize {
        self.burned.count_true()
    }

    /// Burned cells as `(row, col)` pairs, row-major.
    pub fn burned_cells(&self) -> Vec<(usize, usize)> {
        self.burned
            .iter_cells()
            .filter_map(|((r, c), &b)| b.then_some((r, c)))
            .collect()
    }

    /// Cell-wise union with `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn union(&self, other: &FireLine) -> FireLine {
        assert!(
            self.burned.same_shape(&other.burned),
            "fire line shape mismatch"
        );
        let mut out = self.burned.clone();
        for ((r, c), &b) in other.burned.iter_cells() {
            if b {
                out.set(r, c, true);
            }
        }
        FireLine { burned: out }
    }

    /// `true` when every burned cell of `self` is burned in `other`.
    pub fn is_subset_of(&self, other: &FireLine) -> bool {
        assert!(
            self.burned.same_shape(&other.burned),
            "fire line shape mismatch"
        );
        self.burned
            .as_slice()
            .iter()
            .zip(other.burned.as_slice())
            .all(|(&a, &b)| !a || b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_map() -> IgnitionMap {
        // Times:
        // 0   5   inf
        // 2   7   9
        let g = Grid::from_vec(2, 3, vec![0.0, 5.0, UNIGNITED, 2.0, 7.0, 9.0]);
        IgnitionMap::from_grid(g)
    }

    #[test]
    fn fire_line_threshold_includes_equal_times() {
        let m = sample_map();
        let fl = m.fire_line_at(5.0);
        assert!(fl.is_burned(0, 0));
        assert!(fl.is_burned(0, 1)); // exactly at t
        assert!(fl.is_burned(1, 0));
        assert!(!fl.is_burned(1, 1));
        assert!(!fl.is_burned(0, 2));
        assert_eq!(fl.burned_area(), 3);
    }

    #[test]
    fn fire_lines_grow_monotonically_with_time() {
        let m = sample_map();
        let early = m.fire_line_at(2.0);
        let late = m.fire_line_at(9.0);
        assert!(early.is_subset_of(&late));
        assert!(!late.is_subset_of(&early));
    }

    #[test]
    fn unignited_cells_never_burn() {
        let m = sample_map();
        let fl = m.fire_line_at(1e12);
        assert!(!fl.is_burned(0, 2));
        assert_eq!(m.burned_count_at(1e12), 5);
    }

    #[test]
    fn last_ignition_is_max_finite() {
        assert_eq!(sample_map().last_ignition(), Some(9.0));
        assert_eq!(IgnitionMap::unignited(2, 2).last_ignition(), None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = IgnitionMap::from_grid(Grid::from_vec(1, 2, vec![0.0, -1.0]));
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = sample_map();
        m.clear();
        assert_eq!(m.burned_count_at(f64::MAX), 0);
    }

    #[test]
    fn from_cells_and_burned_cells_roundtrip() {
        let cells = [(0usize, 1usize), (2, 2), (1, 0)];
        let fl = FireLine::from_cells(3, 3, &cells);
        let mut got = fl.burned_cells();
        got.sort_unstable();
        let mut want = cells.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn union_covers_both() {
        let a = FireLine::from_cells(2, 2, &[(0, 0)]);
        let b = FireLine::from_cells(2, 2, &[(1, 1)]);
        let u = a.union(&b);
        assert_eq!(u.burned_area(), 2);
        assert!(a.is_subset_of(&u) && b.is_subset_of(&u));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn union_shape_mismatch_panics() {
        let a = FireLine::empty(2, 2);
        let b = FireLine::empty(2, 3);
        let _ = a.union(&b);
    }
}
