//! Cell identifiers, compass directions and the 8-neighbour stencil.

/// Flat index of a cell inside a [`crate::Grid`] (row-major).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// The eight compass neighbours of a raster cell.
///
/// Azimuths follow the paper's convention for `WindDir`/`Aspect`:
/// degrees clockwise from North, with grid north being decreasing row index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction8 {
    North,
    NorthEast,
    East,
    SouthEast,
    South,
    SouthWest,
    West,
    NorthWest,
}

impl Direction8 {
    /// All eight directions, clockwise starting at North.
    pub const ALL: [Direction8; 8] = [
        Direction8::North,
        Direction8::NorthEast,
        Direction8::East,
        Direction8::SouthEast,
        Direction8::South,
        Direction8::SouthWest,
        Direction8::West,
        Direction8::NorthWest,
    ];

    /// Azimuth of this direction in degrees clockwise from North.
    pub fn azimuth_deg(self) -> f64 {
        match self {
            Direction8::North => 0.0,
            Direction8::NorthEast => 45.0,
            Direction8::East => 90.0,
            Direction8::SouthEast => 135.0,
            Direction8::South => 180.0,
            Direction8::SouthWest => 225.0,
            Direction8::West => 270.0,
            Direction8::NorthWest => 315.0,
        }
    }

    /// `(d_row, d_col)` offset of the neighbouring cell in this direction.
    pub fn offset(self) -> (isize, isize) {
        match self {
            Direction8::North => (-1, 0),
            Direction8::NorthEast => (-1, 1),
            Direction8::East => (0, 1),
            Direction8::SouthEast => (1, 1),
            Direction8::South => (1, 0),
            Direction8::SouthWest => (1, -1),
            Direction8::West => (0, -1),
            Direction8::NorthWest => (-1, -1),
        }
    }

    /// Distance factor to the neighbour in this direction, in units of the
    /// cell side (1 for the four orthogonal moves, √2 for diagonals).
    pub fn distance_factor(self) -> f64 {
        match self {
            Direction8::North | Direction8::East | Direction8::South | Direction8::West => 1.0,
            _ => std::f64::consts::SQRT_2,
        }
    }
}

/// `(d_row, d_col, distance_factor)` for the 8-neighbour stencil, in the
/// clockwise order of [`Direction8::ALL`]. Kept as a flat table so the fire
/// simulator's inner loop is a simple array walk.
pub const NEIGHBOUR_OFFSETS: [(isize, isize, f64); 8] = [
    (-1, 0, 1.0),
    (-1, 1, std::f64::consts::SQRT_2),
    (0, 1, 1.0),
    (1, 1, std::f64::consts::SQRT_2),
    (1, 0, 1.0),
    (1, -1, std::f64::consts::SQRT_2),
    (0, -1, 1.0),
    (-1, -1, std::f64::consts::SQRT_2),
];

/// Normalises an azimuth in degrees to `[0, 360)`.
pub fn normalize_azimuth(deg: f64) -> f64 {
    let r = deg % 360.0;
    if r < 0.0 {
        r + 360.0
    } else {
        r
    }
}

/// Smallest absolute angle between two azimuths, in degrees (`[0, 180]`).
pub fn azimuth_separation(a: f64, b: f64) -> f64 {
    let d = (normalize_azimuth(a) - normalize_azimuth(b)).abs();
    if d > 180.0 {
        360.0 - d
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_table_matches_direction_enum() {
        for (i, dir) in Direction8::ALL.iter().enumerate() {
            let (dr, dc) = dir.offset();
            let (tr, tc, td) = NEIGHBOUR_OFFSETS[i];
            assert_eq!((dr, dc), (tr, tc), "offset mismatch for {dir:?}");
            assert!((dir.distance_factor() - td).abs() < 1e-12);
        }
    }

    #[test]
    fn azimuths_are_clockwise_from_north() {
        let az: Vec<f64> = Direction8::ALL.iter().map(|d| d.azimuth_deg()).collect();
        for w in az.windows(2) {
            assert!((w[1] - w[0] - 45.0).abs() < 1e-12);
        }
        assert_eq!(az[0], 0.0);
    }

    #[test]
    fn north_decreases_row() {
        // Grid north = up = decreasing row index.
        assert_eq!(Direction8::North.offset(), (-1, 0));
        assert_eq!(Direction8::East.offset(), (0, 1));
    }

    #[test]
    fn normalize_handles_negatives_and_wraps() {
        assert_eq!(normalize_azimuth(-90.0), 270.0);
        assert_eq!(normalize_azimuth(725.0), 5.0);
        assert_eq!(normalize_azimuth(360.0), 0.0);
    }

    #[test]
    fn separation_is_symmetric_and_bounded() {
        assert_eq!(azimuth_separation(10.0, 350.0), 20.0);
        assert_eq!(azimuth_separation(350.0, 10.0), 20.0);
        assert_eq!(azimuth_separation(0.0, 180.0), 180.0);
        assert_eq!(azimuth_separation(90.0, 90.0), 0.0);
    }
}
