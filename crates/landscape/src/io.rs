//! Plain-text raster IO: ASCII art for terminals, CSV for the harness.

use crate::firemap::{FireLine, IgnitionMap, UNIGNITED};
use crate::grid::Grid;
use crate::probability::ProbabilityMap;

/// Renders a fire line as ASCII art: `#` burned, `.` unburned, `o` preburn.
pub fn render_fire_line(line: &FireLine, preburn: Option<&FireLine>) -> String {
    let mut out = String::with_capacity((line.cols() + 1) * line.rows());
    for r in 0..line.rows() {
        for c in 0..line.cols() {
            let ch = if preburn.is_some_and(|p| p.is_burned(r, c)) {
                'o'
            } else if line.is_burned(r, c) {
                '#'
            } else {
                '.'
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Renders two fire lines side by side for visual comparison in examples.
pub fn render_comparison(real: &FireLine, predicted: &FireLine) -> String {
    assert!(
        real.mask().same_shape(predicted.mask()),
        "render: shape mismatch"
    );
    let mut out = String::new();
    for r in 0..real.rows() {
        for c in 0..real.cols() {
            out.push(match (real.is_burned(r, c), predicted.is_burned(r, c)) {
                (true, true) => '#',  // hit
                (true, false) => '-', // miss (under-prediction)
                (false, true) => '+', // false alarm (over-prediction)
                (false, false) => '.',
            });
        }
        out.push('\n');
    }
    out
}

/// Renders an ignition-probability map with a 0–9 digit ramp (`.` for zero).
pub fn render_probability(pm: &ProbabilityMap) -> String {
    let mut out = String::new();
    for r in 0..pm.rows() {
        for c in 0..pm.cols() {
            let p = pm.probability(r, c);
            if p <= 0.0 {
                out.push('.');
            } else {
                // 0 < p <= 1 → digit 1..=9 rounding down, saturate at 9.
                let d = ((p * 10.0).floor() as u8).min(9);
                out.push((b'0' + d) as char);
            }
        }
        out.push('\n');
    }
    out
}

/// Serialises a `Grid<f64>` as CSV (one row per line, `,` separator).
/// Non-finite values are written as `inf`.
pub fn grid_to_csv(grid: &Grid<f64>) -> String {
    let mut out = String::new();
    for r in 0..grid.rows() {
        for c in 0..grid.cols() {
            if c > 0 {
                out.push(',');
            }
            let v = grid.at(r, c);
            if v.is_finite() {
                out.push_str(&format!("{v:.6}"));
            } else {
                out.push_str("inf");
            }
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV produced by [`grid_to_csv`].
///
/// # Errors
/// Returns a description of the first malformed cell or a row-length
/// mismatch.
pub fn grid_from_csv(text: &str) -> Result<Grid<f64>, String> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for (col, field) in line.split(',').enumerate() {
            let f = field.trim();
            let v = if f.eq_ignore_ascii_case("inf") {
                f64::INFINITY
            } else {
                f.parse::<f64>()
                    .map_err(|e| format!("line {}, column {}: {e}", lineno + 1, col + 1))?
            };
            row.push(v);
        }
        if let Some(first) = rows.first() {
            if first.len() != row.len() {
                return Err(format!(
                    "line {}: expected {} columns, found {}",
                    lineno + 1,
                    first.len(),
                    row.len()
                ));
            }
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("empty CSV".to_string());
    }
    let cols = rows[0].len();
    let data: Vec<f64> = rows.into_iter().flatten().collect();
    let r = data.len() / cols;
    Ok(Grid::from_vec(r, cols, data))
}

/// Serialises an ignition map as CSV with fireLib's convention: cells the
/// fire never reaches are written as `0`, everything else as the ignition
/// time (paper §III-A). Ambiguity with a genuine t=0 ignition is resolved on
/// read by treating `0` as unignited, matching fireLib's output format.
pub fn ignition_map_to_firelib_csv(map: &IgnitionMap) -> String {
    let translated = map.grid().map(|&t| if t == UNIGNITED { 0.0 } else { t });
    grid_to_csv(&translated)
}

/// Parses a fireLib-convention CSV back to an [`IgnitionMap`].
///
/// # Errors
/// Propagates CSV parse failures.
pub fn ignition_map_from_firelib_csv(text: &str) -> Result<IgnitionMap, String> {
    let grid = grid_from_csv(text)?;
    Ok(IgnitionMap::from_grid(grid.map(|&t| {
        if t == 0.0 {
            UNIGNITED
        } else {
            t
        }
    })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_burned_and_preburn() {
        let fl = FireLine::from_cells(2, 3, &[(0, 0), (1, 2)]);
        let pre = FireLine::from_cells(2, 3, &[(0, 1)]);
        let s = render_fire_line(&fl, Some(&pre));
        assert_eq!(s, "#o.\n..#\n");
    }

    #[test]
    fn render_comparison_classifies_cells() {
        let real = FireLine::from_cells(1, 4, &[(0, 0), (0, 1)]);
        let pred = FireLine::from_cells(1, 4, &[(0, 1), (0, 2)]);
        assert_eq!(render_comparison(&real, &pred), "-#+.\n");
    }

    #[test]
    fn probability_ramp() {
        let mut pm = ProbabilityMap::new(1, 3);
        pm.accumulate(&FireLine::from_cells(1, 3, &[(0, 0), (0, 1)]));
        pm.accumulate(&FireLine::from_cells(1, 3, &[(0, 0)]));
        // p = 1.0, 0.5, 0.0 → '9', '5', '.'
        assert_eq!(render_probability(&pm), "95.\n");
    }

    #[test]
    fn grid_csv_roundtrip() {
        let g = Grid::from_vec(2, 2, vec![1.5, 0.0, f64::INFINITY, -2.25]);
        let csv = grid_to_csv(&g);
        let back = grid_from_csv(&csv).unwrap();
        assert_eq!(back.shape(), (2, 2));
        assert_eq!(back.at(0, 0), 1.5);
        assert_eq!(back.at(1, 0), f64::INFINITY);
        assert_eq!(back.at(1, 1), -2.25);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        assert!(grid_from_csv("1,2\n3\n").is_err());
        assert!(grid_from_csv("").is_err());
        assert!(grid_from_csv("1,abc\n").is_err());
    }

    #[test]
    fn firelib_csv_unignited_as_zero() {
        let mut m = IgnitionMap::unignited(1, 2);
        m.set_time(0, 0, 4.25);
        let csv = ignition_map_to_firelib_csv(&m);
        let back = ignition_map_from_firelib_csv(&csv).unwrap();
        assert_eq!(back.time(0, 0), 4.25);
        assert_eq!(back.time(0, 1), UNIGNITED);
    }
}
