//! Procedural raster synthesis — the landscape generators behind the
//! workload corpus.
//!
//! Real burn campaigns run over heterogeneous landscapes: fuel mosaics,
//! rolling relief, terrain-channelled wind. The corresponding GIS layers are
//! not shippable with a reproduction, so this module generates them
//! *procedurally*: every generator is a pure function of its parameters and
//! a `u64` seed, so a named workload reproduces bit-identically on every
//! machine. No RNG dependency is used — determinism comes from an explicit
//! SplitMix64-style hash over `(seed, cell)`.
//!
//! Three families of generators cover the layers `firelib::Terrain` accepts:
//!
//! * [`noise_field`] — smooth fractal value noise in `[0, 1]`, the substrate
//!   for wind-speed modulation and relief;
//! * [`voronoi_mosaic`] — seeded nearest-site patches, the substrate for
//!   categorical fuel mosaics;
//! * [`slope_aspect_from_elevation`] — central-difference slope/aspect
//!   layers derived from an elevation raster, so relief enters the spread
//!   model the same way a DEM would.

use crate::geometry::normalize_azimuth;
use crate::grid::Grid;

/// SplitMix64 finaliser: one well-mixed 64-bit value per input. Public so
/// every seeded generator in the stack derives from the same hash.
#[inline]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Deterministic uniform sample in `[0, 1)` for a `(seed, x, y)` lattice
/// point — the corner value of the value-noise lattice.
#[inline]
fn lattice(seed: u64, x: i64, y: i64) -> f64 {
    let h =
        mix(seed ^ mix(x as u64).wrapping_add(mix((y as u64).wrapping_mul(0x5851F42D4C957F2D))));
    // 53 mantissa bits → exact dyadic rational in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Quintic smoothstep (Perlin's fade curve): C² continuous interpolation.
#[inline]
fn fade(t: f64) -> f64 {
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

/// One octave of bilinear value noise at lattice `scale` (cells per lattice
/// step).
fn value_noise_at(seed: u64, row: f64, col: f64, scale: f64) -> f64 {
    let x = col / scale;
    let y = row / scale;
    let (x0, y0) = (x.floor(), y.floor());
    let (fx, fy) = (fade(x - x0), fade(y - y0));
    let (xi, yi) = (x0 as i64, y0 as i64);
    let v00 = lattice(seed, xi, yi);
    let v10 = lattice(seed, xi + 1, yi);
    let v01 = lattice(seed, xi, yi + 1);
    let v11 = lattice(seed, xi + 1, yi + 1);
    let top = v00 + (v10 - v00) * fx;
    let bot = v01 + (v11 - v01) * fx;
    top + (bot - top) * fy
}

/// A smooth fractal (fBm) noise field in `[0, 1]`.
///
/// `scale` is the feature size of the base octave in cells; each further
/// octave halves the feature size and the amplitude. The field is
/// renormalised to `[0, 1]` after summation.
///
/// # Panics
/// Panics when `scale` is not positive or `octaves` is zero.
pub fn noise_field(rows: usize, cols: usize, scale: f64, octaves: u32, seed: u64) -> Grid<f64> {
    assert!(scale > 0.0, "noise scale must be positive");
    assert!(octaves > 0, "need at least one octave");
    let mut norm = 0.0;
    let mut amp = 1.0;
    for _ in 0..octaves {
        norm += amp;
        amp *= 0.5;
    }
    Grid::from_fn(rows, cols, |r, c| {
        let mut v = 0.0;
        let mut amp = 1.0;
        let mut s = scale;
        for o in 0..octaves {
            v += amp * value_noise_at(seed.wrapping_add(o as u64), r as f64, c as f64, s);
            amp *= 0.5;
            s = (s * 0.5).max(1.0);
        }
        v / norm
    })
}

/// A categorical Voronoi mosaic: `sites` random cells are scattered over
/// the raster and every cell takes the code of its nearest site, cycling
/// through `codes`. Produces the blobby fuel patchworks of real vegetation
/// maps.
///
/// # Panics
/// Panics when `codes` is empty or `sites` is zero.
pub fn voronoi_mosaic(rows: usize, cols: usize, sites: usize, codes: &[u8], seed: u64) -> Grid<u8> {
    assert!(!codes.is_empty(), "mosaic needs at least one code");
    assert!(sites > 0, "mosaic needs at least one site");
    let site_list: Vec<(f64, f64, u8)> = (0..sites)
        .map(|i| {
            let r = lattice(seed ^ 0xA076_1D64_78BD_642F, i as i64, 0) * rows as f64;
            let c = lattice(seed ^ 0xE703_7ED1_A0B4_28DB, i as i64, 1) * cols as f64;
            (r, c, codes[i % codes.len()])
        })
        .collect();
    Grid::from_fn(rows, cols, |r, c| {
        let mut best = f64::INFINITY;
        let mut code = site_list[0].2;
        for &(sr, sc, sk) in &site_list {
            let d = (r as f64 - sr) * (r as f64 - sr) + (c as f64 - sc) * (c as f64 - sc);
            if d < best {
                best = d;
                code = sk;
            }
        }
        code
    })
}

/// Slope (degrees) and aspect (degrees clockwise from north, the downslope
/// direction) derived from an elevation raster by central differences — the
/// standard DEM → slope/aspect transform.
///
/// `cell_size` must be in the same length unit as the elevation values.
/// Slope is clamped below 90°; flat cells get aspect 0 (any value works:
/// with zero slope the aspect never influences spread).
///
/// # Panics
/// Panics when `cell_size` is not positive.
pub fn slope_aspect_from_elevation(
    elevation: &Grid<f64>,
    cell_size: f64,
) -> (Grid<f64>, Grid<f64>) {
    assert!(cell_size > 0.0, "cell size must be positive");
    let (rows, cols) = elevation.shape();
    let at = |r: isize, c: isize| -> f64 {
        let r = r.clamp(0, rows as isize - 1) as usize;
        let c = c.clamp(0, cols as isize - 1) as usize;
        elevation.at(r, c)
    };
    let mut slope = Grid::filled(rows, cols, 0.0f64);
    let mut aspect = Grid::filled(rows, cols, 0.0f64);
    for r in 0..rows {
        for c in 0..cols {
            let (ri, ci) = (r as isize, c as isize);
            // dz/dx: west → east; dz/dy: north → south (rows grow southward).
            let dzdx = (at(ri, ci + 1) - at(ri, ci - 1)) / (2.0 * cell_size);
            let dzdy = (at(ri + 1, ci) - at(ri - 1, ci)) / (2.0 * cell_size);
            let grad = (dzdx * dzdx + dzdy * dzdy).sqrt();
            let deg = grad.atan().to_degrees().min(89.9);
            slope.set(r, c, deg);
            if grad > 1e-12 {
                // Downslope direction: negative gradient. atan2(east, north).
                let az = (-dzdx).atan2(dzdy).to_degrees();
                aspect.set(r, c, normalize_azimuth(az));
            }
        }
    }
    (slope, aspect)
}

/// Rescales a `[0, 1]` field linearly onto `[lo, hi]`.
pub fn rescale(field: &Grid<f64>, lo: f64, hi: f64) -> Grid<f64> {
    field.map(|&v| lo + v * (hi - lo))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_per_seed() {
        let a = noise_field(16, 24, 6.0, 3, 42);
        let b = noise_field(16, 24, 6.0, 3, 42);
        let c = noise_field(16, 24, 6.0, 3, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_values_in_unit_interval() {
        let g = noise_field(32, 32, 8.0, 4, 7);
        assert!(g.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn noise_is_smooth() {
        // Neighbouring cells of a single 16-cell octave differ by far less
        // than the full range.
        let g = noise_field(32, 32, 16.0, 1, 3);
        for r in 0..32 {
            for c in 1..32 {
                assert!(
                    (g.at(r, c) - g.at(r, c - 1)).abs() < 0.25,
                    "jump at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn mosaic_uses_only_given_codes_and_all_of_them() {
        let codes = [1u8, 4, 10];
        let g = voronoi_mosaic(48, 48, 24, &codes, 5);
        let mut seen = std::collections::BTreeSet::new();
        for &v in g.as_slice() {
            assert!(codes.contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), codes.len(), "every code should appear");
    }

    #[test]
    fn mosaic_deterministic_per_seed() {
        let a = voronoi_mosaic(20, 20, 9, &[1, 2], 11);
        let b = voronoi_mosaic(20, 20, 9, &[1, 2], 11);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_elevation_gives_zero_slope() {
        let elev = Grid::filled(8, 8, 100.0);
        let (slope, _) = slope_aspect_from_elevation(&elev, 50.0);
        assert!(slope.as_slice().iter().all(|&s| s == 0.0));
    }

    #[test]
    fn east_dipping_plane_faces_east() {
        // Elevation falls towards the east: downslope (aspect) is 90°.
        let elev = Grid::from_fn(8, 8, |_, c| -(c as f64) * 10.0);
        let (slope, aspect) = slope_aspect_from_elevation(&elev, 10.0);
        let s = slope.at(4, 4);
        assert!((s - 45.0).abs() < 1e-9, "slope {s}");
        assert!((aspect.at(4, 4) - 90.0).abs() < 1e-9);
    }

    #[test]
    fn south_dipping_plane_faces_south() {
        // Elevation falls with increasing row (southward): aspect 180°.
        let elev = Grid::from_fn(8, 8, |r, _| -(r as f64) * 5.0);
        let (_, aspect) = slope_aspect_from_elevation(&elev, 10.0);
        assert!((aspect.at(4, 4) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn slope_below_ninety() {
        let elev = Grid::from_fn(8, 8, |_, c| (c as f64) * 1e6);
        let (slope, _) = slope_aspect_from_elevation(&elev, 1.0);
        assert!(slope.as_slice().iter().all(|&s| s < 90.0));
    }

    #[test]
    fn rescale_maps_bounds() {
        let g = Grid::from_vec(1, 3, vec![0.0, 0.5, 1.0]);
        let r = rescale(&g, 2.0, 4.0);
        assert_eq!(r.as_slice(), &[2.0, 3.0, 4.0]);
    }
}
