//! Fire-front geometry: perimeter extraction and shape statistics.
//!
//! The "fire line" the ESS literature talks about is the *front* of the
//! burned region. The pipeline compares burned areas cell-wise (Eq. 3),
//! but the examples and reports also describe fronts geometrically: where
//! the perimeter runs, how long it is, how elongated the burn is — the
//! quantities a fire analyst reads off a prediction map.

use crate::firemap::FireLine;

/// Shape statistics of a burned region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapeStats {
    /// Burned cell count.
    pub area_cells: usize,
    /// Number of perimeter cells (burned with ≥ 1 unburned 4-neighbour or
    /// on the map edge).
    pub perimeter_cells: usize,
    /// Burned-region centroid `(row, col)` (cell coordinates).
    pub centroid: (f64, f64),
    /// Bounding box `(min_row, min_col, max_row, max_col)`.
    pub bbox: (usize, usize, usize, usize),
    /// Isoperimetric compactness `4π·A / P²` computed on cell counts:
    /// ≈ 1 for discs, → 0 for filaments. 0 when nothing burned.
    pub compactness: f64,
    /// Bounding-box elongation: long side / short side (≥ 1).
    pub elongation: f64,
}

/// Extracts the perimeter cells of a fire line: burned cells with at least
/// one unburned 4-neighbour, or touching the map edge (the front may run
/// off-map).
pub fn perimeter_cells(line: &FireLine) -> Vec<(usize, usize)> {
    let rows = line.rows();
    let cols = line.cols();
    let mut out = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if !line.is_burned(r, c) {
                continue;
            }
            let on_edge = r == 0 || c == 0 || r == rows - 1 || c == cols - 1;
            let has_unburned_side =
                [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)]
                    .iter()
                    .any(|&(dr, dc)| {
                        let (nr, nc) = (r as isize + dr, c as isize + dc);
                        nr >= 0
                            && nc >= 0
                            && (nr as usize) < rows
                            && (nc as usize) < cols
                            && !line.is_burned(nr as usize, nc as usize)
                    });
            if on_edge || has_unburned_side {
                out.push((r, c));
            }
        }
    }
    out
}

/// Computes the shape statistics of a burned region.
pub fn shape_stats(line: &FireLine) -> ShapeStats {
    let burned = line.burned_cells();
    if burned.is_empty() {
        return ShapeStats {
            area_cells: 0,
            perimeter_cells: 0,
            centroid: (0.0, 0.0),
            bbox: (0, 0, 0, 0),
            compactness: 0.0,
            elongation: 1.0,
        };
    }
    let perimeter = perimeter_cells(line).len();
    let n = burned.len() as f64;
    let centroid = (
        burned.iter().map(|&(r, _)| r as f64).sum::<f64>() / n,
        burned.iter().map(|&(_, c)| c as f64).sum::<f64>() / n,
    );
    let min_r = burned.iter().map(|&(r, _)| r).min().expect("non-empty");
    let max_r = burned.iter().map(|&(r, _)| r).max().expect("non-empty");
    let min_c = burned.iter().map(|&(_, c)| c).min().expect("non-empty");
    let max_c = burned.iter().map(|&(_, c)| c).max().expect("non-empty");
    let compactness = if perimeter == 0 {
        0.0
    } else {
        (4.0 * std::f64::consts::PI * n / (perimeter as f64 * perimeter as f64)).min(1.5)
    };
    let h = (max_r - min_r + 1) as f64;
    let w = (max_c - min_c + 1) as f64;
    let elongation = if h >= w { h / w } else { w / h };
    ShapeStats {
        area_cells: burned.len(),
        perimeter_cells: perimeter,
        centroid,
        bbox: (min_r, min_c, max_r, max_c),
        compactness,
        elongation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square(n: usize, r0: usize, c0: usize, side: usize) -> FireLine {
        let cells: Vec<(usize, usize)> = (r0..r0 + side)
            .flat_map(|r| (c0..c0 + side).map(move |c| (r, c)))
            .collect();
        FireLine::from_cells(n, n, &cells)
    }

    #[test]
    fn solid_square_perimeter_is_ring() {
        let fl = square(10, 3, 3, 4);
        let peri = perimeter_cells(&fl);
        // 4×4 block: 16 cells, interior 2×2 = 4 → perimeter 12.
        assert_eq!(peri.len(), 12);
        assert!(!peri.contains(&(4, 4)));
        assert!(peri.contains(&(3, 3)));
    }

    #[test]
    fn single_cell_is_its_own_perimeter() {
        let fl = FireLine::from_cells(5, 5, &[(2, 2)]);
        assert_eq!(perimeter_cells(&fl), vec![(2, 2)]);
    }

    #[test]
    fn map_edge_counts_as_front() {
        // A burned column hugging the left edge: all its cells border the
        // edge, so all are perimeter even where vertically surrounded.
        let cells: Vec<(usize, usize)> = (0..5).map(|r| (r, 0)).collect();
        let fl = FireLine::from_cells(5, 5, &cells);
        assert_eq!(perimeter_cells(&fl).len(), 5);
    }

    #[test]
    fn stats_of_square() {
        let fl = square(12, 2, 4, 4);
        let s = shape_stats(&fl);
        assert_eq!(s.area_cells, 16);
        assert_eq!(s.perimeter_cells, 12);
        assert_eq!(s.bbox, (2, 4, 5, 7));
        assert!((s.centroid.0 - 3.5).abs() < 1e-12);
        assert!((s.centroid.1 - 5.5).abs() < 1e-12);
        assert!((s.elongation - 1.0).abs() < 1e-12);
    }

    #[test]
    fn filament_less_compact_than_block() {
        let block = square(20, 5, 5, 6);
        let cells: Vec<(usize, usize)> = (0..18).map(|c| (10, c)).collect();
        let filament = FireLine::from_cells(20, 20, &cells);
        let sb = shape_stats(&block);
        let sf = shape_stats(&filament);
        assert!(sb.compactness > sf.compactness);
        assert!(sf.elongation > 10.0);
    }

    #[test]
    fn empty_region_degenerates() {
        let s = shape_stats(&FireLine::empty(5, 5));
        assert_eq!(s.area_cells, 0);
        assert_eq!(s.perimeter_cells, 0);
        assert_eq!(s.compactness, 0.0);
    }

    #[test]
    fn perimeter_no_larger_than_area() {
        let fl = square(9, 1, 1, 7);
        let s = shape_stats(&fl);
        assert!(s.perimeter_cells <= s.area_cells);
    }
}
