//! The workspace lint pass: repo-specific determinism and hot-path rules.
//!
//! These are not style lints — each rule guards a property the system's
//! reproducibility contract depends on:
//!
//! | rule | guards |
//! |---|---|
//! | `partial-cmp-unwrap` | float comparisons must be total (`total_cmp`), or a NaN panics a worker mid-round |
//! | `hash-container` | `HashMap`/`HashSet` iteration order is seeded per-process; deterministic crates must use `BTreeMap` or indexed storage |
//! | `wall-clock` | `Instant::now`/`SystemTime` in simulation or search code makes results time-dependent |
//! | `thread-spawn` | all parallelism flows through `parworker` so schedules stay controllable |
//! | `no-alloc` | functions fenced with `// lint: no_alloc` are steady-state hot paths; allocation there breaks the arena contract |
//!
//! Escape hatch: `// lint: allow(<rule>) — <reason>` on the finding's line
//! or the line above suppresses it. The reason is mandatory; a reasonless
//! or unmatched allow is itself a finding (`invalid-allow` /
//! `unused-allow`), so annotations cannot rot silently.

use crate::lex::{lex, Tok, Token};
use ess_service::jsonio::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Deny `partial_cmp(..).unwrap()` / `.expect(..)` — use `total_cmp`.
pub const PARTIAL_CMP_UNWRAP: &str = "partial-cmp-unwrap";
/// Deny `HashMap`/`HashSet` in deterministic crates.
pub const HASH_CONTAINER: &str = "hash-container";
/// Deny `Instant::now` / `SystemTime` outside bench/harness timing code.
pub const WALL_CLOCK: &str = "wall-clock";
/// Deny `spawn(..)` outside `parworker`.
pub const THREAD_SPAWN: &str = "thread-spawn";
/// Deny allocation inside `// lint: no_alloc`-fenced functions.
pub const NO_ALLOC: &str = "no-alloc";
/// An allow annotation that suppressed nothing.
pub const UNUSED_ALLOW: &str = "unused-allow";
/// A malformed allow annotation (unknown shape or missing reason).
pub const INVALID_ALLOW: &str = "invalid-allow";

/// `(name, what it guards)` for every enforced rule, in report order.
pub const RULES: &[(&str, &str)] = &[
    (
        PARTIAL_CMP_UNWRAP,
        "float comparisons must be total (`total_cmp`); a NaN would panic",
    ),
    (
        HASH_CONTAINER,
        "hash iteration order is per-process; deterministic crates need BTreeMap or indexed storage",
    ),
    (
        WALL_CLOCK,
        "wall-clock reads outside bench timing make results time-dependent",
    ),
    (
        THREAD_SPAWN,
        "all parallelism flows through parworker so schedules stay controllable",
    ),
    (
        NO_ALLOC,
        "fenced hot paths must not allocate (the simulate_arena steady-state contract)",
    ),
    (
        UNUSED_ALLOW,
        "an allow that suppresses nothing is stale and must be removed",
    ),
    (
        INVALID_ALLOW,
        "allow annotations require a named rule and a non-empty reason",
    ),
];

/// One lint finding, allowed or not.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (one of the `pub const` rule names).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// `true` when a `lint: allow` annotation covers it.
    pub allowed: bool,
    /// The annotation's justification, when allowed.
    pub reason: Option<String>,
}

/// The result of linting a file set.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, allowed ones included (the report is the audit trail).
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings not covered by an allow — these fail the build.
    pub fn unallowed(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| !f.allowed).collect()
    }

    /// Machine-readable report (written to `reports/LINT_findings.json`).
    pub fn to_json(&self) -> Json {
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut obj = Json::obj()
                    .field("rule", f.rule)
                    .field("file", f.file.as_str())
                    .field("line", f.line)
                    .field("message", f.message.as_str())
                    .field("allowed", f.allowed);
                if let Some(reason) = &f.reason {
                    obj = obj.field("reason", reason.as_str());
                }
                obj
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("tool", "harness lint")
            .field("files_scanned", self.files_scanned)
            .field("unallowed", self.unallowed().len())
            .field("findings", Json::Arr(findings))
    }
}

/// Which rule sets apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy)]
pub struct Scope {
    /// Hash containers are denied (firelib/evoalg/ess/core).
    pub deterministic: bool,
    /// Wall-clock reads are fine (bench/harness timing code).
    pub timing_exempt: bool,
    /// Spawning threads is this crate's job (parworker).
    pub spawn_exempt: bool,
}

/// Maps a workspace-relative path to its rule scope.
pub fn scope_for(rel_path: &str) -> Scope {
    let p = rel_path.replace('\\', "/");
    Scope {
        deterministic: [
            "crates/firelib/",
            "crates/evoalg/",
            "crates/ess/",
            "crates/core/",
        ]
        .iter()
        .any(|prefix| p.starts_with(prefix)),
        timing_exempt: p.starts_with("crates/bench/"),
        spawn_exempt: p.starts_with("crates/parworker/"),
    }
}

/// Directories never scanned: build output, vendored third-party code,
/// lint fixtures (they violate on purpose), generated reports, and
/// integration-test trees (test code is exempt like `#[cfg(test)]` mods).
pub(crate) const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures", "reports", "tests"];

/// Climbs from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
pub fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lints every `.rs` file under `root` (skipping [`SKIP_DIRS`]), in
/// path-sorted order so the report is deterministic.
///
/// # Errors
/// Propagates filesystem errors from the walk or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.files_scanned += 1;
        report
            .findings
            .extend(lint_source(&rel, &src, scope_for(&rel)));
    }
    Ok(report)
}

pub(crate) fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// A parsed `// lint: …` directive.
enum Directive {
    Allow { rule: String, reason: String },
    NoAlloc,
    Invalid(String),
}

/// Parses the directive in a comment, if any. Non-`lint:` comments return
/// `None`.
fn parse_directive(comment: &str) -> Option<Directive> {
    let mut text = comment.trim();
    if let Some(stripped) = text.strip_prefix("/*") {
        text = stripped.strip_suffix("*/").unwrap_or(stripped);
    }
    let text = text.trim_start_matches(['/', '!', '*']).trim();
    let rest = text.strip_prefix("lint:")?.trim();
    if rest == "no_alloc" || rest.starts_with("no_alloc ") {
        return Some(Directive::NoAlloc);
    }
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(Directive::Invalid(format!(
            "unrecognized lint directive `{rest}`"
        )));
    };
    let Some(close) = inner.find(')') else {
        return Some(Directive::Invalid("allow(… missing `)`".to_string()));
    };
    let rule = inner[..close].trim().to_string();
    let reason = inner[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '-' | '—' | '–' | ':'))
        .trim()
        .to_string();
    if rule.is_empty() || !RULES.iter().any(|(name, _)| *name == rule) {
        return Some(Directive::Invalid(format!(
            "allow names unknown rule `{rule}`"
        )));
    }
    if reason.is_empty() {
        return Some(Directive::Invalid(format!(
            "allow({rule}) has no justification — state why the rule does not apply"
        )));
    }
    Some(Directive::Allow { rule, reason })
}

struct Allow {
    line: usize,
    rule: String,
    reason: String,
    used: bool,
}

/// Lints one source file. Public so the fixture tests can drive single
/// snippets without a filesystem walk.
pub fn lint_source(file: &str, src: &str, scope: Scope) -> Vec<Finding> {
    let tokens = lex(src);

    // Pass 1: harvest directives from the comment tokens.
    let mut allows: Vec<Allow> = Vec::new();
    let mut fences: Vec<usize> = Vec::new(); // lines of `// lint: no_alloc`
    let mut findings: Vec<Finding> = Vec::new();
    for tok in &tokens {
        let Tok::Comment(text) = &tok.kind else {
            continue;
        };
        match parse_directive(text) {
            Some(Directive::Allow { rule, reason }) => allows.push(Allow {
                line: tok.line,
                rule,
                reason,
                used: false,
            }),
            Some(Directive::NoAlloc) => fences.push(tok.line),
            Some(Directive::Invalid(message)) => findings.push(Finding {
                rule: INVALID_ALLOW,
                file: file.to_string(),
                line: tok.line,
                message,
                allowed: false,
                reason: None,
            }),
            None => {}
        }
    }

    // Pass 2: the significant (non-comment) token stream the matchers see.
    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, Tok::Comment(_)))
        .collect();
    let skip = test_region_mask(&sig);

    let ident = |i: usize| -> Option<&str> {
        match sig.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct = |i: usize| -> Option<char> {
        match sig.get(i).map(|t| &t.kind) {
            Some(Tok::Punct(c)) => Some(*c),
            _ => None,
        }
    };

    let mut raw: Vec<(&'static str, usize, String)> = Vec::new();

    for i in 0..sig.len() {
        if skip[i] {
            continue;
        }
        let line = sig[i].line;
        match ident(i) {
            Some("partial_cmp") => {
                // `fn partial_cmp` is the PartialOrd impl itself, not a call.
                if i > 0 && ident(i - 1) == Some("fn") {
                    continue;
                }
                if punct(i + 1) != Some('(') {
                    continue;
                }
                let Some(close) = match_delim(&sig, i + 1, '(', ')') else {
                    continue;
                };
                if punct(close + 1) == Some('.')
                    && matches!(ident(close + 2), Some("unwrap") | Some("expect"))
                {
                    raw.push((
                        PARTIAL_CMP_UNWRAP,
                        line,
                        "partial_cmp(..).unwrap() panics on NaN — use total_cmp".to_string(),
                    ));
                }
            }
            Some(name @ ("HashMap" | "HashSet")) if scope.deterministic => {
                raw.push((
                    HASH_CONTAINER,
                    line,
                    format!("{name} in a deterministic crate — iteration order is per-process"),
                ));
            }
            Some("Instant")
                if !scope.timing_exempt
                    && punct(i + 1) == Some(':')
                    && punct(i + 2) == Some(':')
                    && ident(i + 3) == Some("now") =>
            {
                raw.push((
                    WALL_CLOCK,
                    line,
                    "Instant::now outside bench timing code".to_string(),
                ));
            }
            Some("SystemTime") if !scope.timing_exempt => {
                raw.push((
                    WALL_CLOCK,
                    line,
                    "SystemTime outside bench timing code".to_string(),
                ));
            }
            Some("spawn") if !scope.spawn_exempt => {
                if i > 0 && ident(i - 1) == Some("fn") {
                    continue; // a spawn wrapper's own definition
                }
                if punct(i + 1) == Some('(') {
                    raw.push((
                        THREAD_SPAWN,
                        line,
                        "thread spawn outside parworker — parallelism must flow through the pool"
                            .to_string(),
                    ));
                }
            }
            _ => {}
        }
    }

    // Pass 3: no_alloc fences — deny allocation in the next fn's body.
    for &fence_line in &fences {
        let Some(fn_idx) =
            (0..sig.len()).find(|&i| sig[i].line >= fence_line && ident(i) == Some("fn"))
        else {
            raw.push((
                NO_ALLOC,
                fence_line,
                "no_alloc fence is not followed by a function".to_string(),
            ));
            continue;
        };
        let fn_name = ident(fn_idx + 1).unwrap_or("?").to_string();
        let Some(open) =
            (fn_idx..sig.len()).find(|&i| punct(i) == Some('{') || punct(i) == Some(';'))
        else {
            continue;
        };
        if punct(open) == Some(';') {
            continue; // a bodiless declaration — nothing to check
        }
        let close = match_delim(&sig, open, '{', '}').unwrap_or(sig.len() - 1);
        // The matchers peek at neighbours (`i ± k`), so positional
        // iteration is the natural shape here.
        #[allow(clippy::needless_range_loop)]
        for i in open + 1..close {
            let line = sig[i].line;
            let hit: Option<String> = match ident(i) {
                Some(root @ ("Vec" | "Box" | "String"))
                    if punct(i + 1) == Some(':') && punct(i + 2) == Some(':') =>
                {
                    match (root, ident(i + 3)) {
                        ("Vec", Some(m @ ("new" | "with_capacity")))
                        | ("Box", Some(m @ "new"))
                        | ("String", Some(m @ ("new" | "with_capacity" | "from"))) => {
                            Some(format!("{root}::{m}"))
                        }
                        _ => None,
                    }
                }
                Some("vec") if punct(i + 1) == Some('!') => Some("vec!".to_string()),
                Some(m @ ("collect" | "to_vec")) if i > 0 && punct(i - 1) == Some('.') => {
                    Some(format!(".{m}()"))
                }
                _ => None,
            };
            if let Some(what) = hit {
                raw.push((
                    NO_ALLOC,
                    line,
                    format!("allocation `{what}` inside no_alloc-fenced fn `{fn_name}`"),
                ));
            }
        }
    }

    // Pass 4: resolve allows. An annotation on line L covers findings on
    // L (trailing comment) and L+1 (comment above the statement).
    for (rule, line, message) in raw {
        let mut allowed = false;
        let mut reason = None;
        for a in allows.iter_mut() {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                a.used = true;
                allowed = true;
                reason = Some(a.reason.clone());
                break;
            }
        }
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line,
            message,
            allowed,
            reason,
        });
    }

    // Pass 5: stale annotations are findings too.
    for a in &allows {
        if !a.used {
            findings.push(Finding {
                rule: UNUSED_ALLOW,
                file: file.to_string(),
                line: a.line,
                message: format!("lint: allow({}) suppresses nothing — remove it", a.rule),
                allowed: false,
                reason: None,
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

/// Marks token ranges covered by `#[cfg(test)]` items (the attribute and
/// the brace-matched item body) so test-only code is exempt from the
/// production rules.
pub(crate) fn test_region_mask(sig: &[&Token]) -> Vec<bool> {
    let mut skip = vec![false; sig.len()];
    let is = |i: usize, want: &Tok| sig.get(i).map(|t| &t.kind) == Some(want);
    let mut i = 0;
    while i < sig.len() {
        let attr = is(i, &Tok::Punct('#'))
            && is(i + 1, &Tok::Punct('['))
            && is(i + 2, &Tok::Ident("cfg".into()))
            && is(i + 3, &Tok::Punct('('))
            && is(i + 4, &Tok::Ident("test".into()))
            && is(i + 5, &Tok::Punct(')'))
            && is(i + 6, &Tok::Punct(']'));
        if !attr {
            i += 1;
            continue;
        }
        // Skip to the end of the attributed item: the first `;` (e.g.
        // `mod tests;`) or the matching close of the first `{`.
        let mut end = i + 7;
        for j in i + 7..sig.len() {
            match sig[j].kind {
                Tok::Punct(';') => {
                    end = j;
                    break;
                }
                Tok::Punct('{') => {
                    end = match_delim(sig, j, '{', '}').unwrap_or(sig.len() - 1);
                    break;
                }
                _ => {}
            }
        }
        for s in skip.iter_mut().take(end + 1).skip(i) {
            *s = true;
        }
        i = end + 1;
    }
    skip
}

/// Index of the token closing the delimiter opened at `open`, or `None`
/// if unbalanced.
pub(crate) fn match_delim(
    sig: &[&Token],
    open: usize,
    open_ch: char,
    close_ch: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in sig.iter().enumerate().skip(open) {
        match t.kind {
            Tok::Punct(c) if c == open_ch => depth += 1,
            Tok::Punct(c) if c == close_ch => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: Scope = Scope {
        deterministic: true,
        timing_exempt: false,
        spawn_exempt: false,
    };

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings
            .iter()
            .filter(|f| !f.allowed)
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn partial_cmp_unwrap_flagged_but_impl_is_not() {
        let bad = "let o = a.partial_cmp(&b).unwrap();";
        assert_eq!(
            rules_of(&lint_source("x.rs", bad, ALL)),
            vec![PARTIAL_CMP_UNWRAP]
        );
        let imp = "fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }";
        assert!(lint_source("x.rs", imp, ALL).is_empty());
        let total = "items.sort_by(|a, b| a.total_cmp(b));";
        assert!(lint_source("x.rs", total, ALL).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_not_stale() {
        let src = "// lint: allow(hash-container) — scratch map, drained and sorted before use\nlet m: HashMap<u32, u32> = make();";
        let findings = lint_source("x.rs", src, ALL);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].allowed);
        assert_eq!(
            findings[0].reason.as_deref(),
            Some("scratch map, drained and sorted before use")
        );
    }

    #[test]
    fn reasonless_allow_is_invalid() {
        let src = "// lint: allow(hash-container)\nlet m: HashMap<u32, u32> = make();";
        let rules = rules_of(&lint_source("x.rs", src, ALL));
        assert!(rules.contains(&INVALID_ALLOW));
        assert!(rules.contains(&HASH_CONTAINER));
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src = "// lint: allow(wall-clock) — left over after a refactor\nlet x = 1;";
        assert_eq!(rules_of(&lint_source("x.rs", src, ALL)), vec![UNUSED_ALLOW]);
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let h: HashSet<u8> = x(); spawn(f); }\n}\nfn prod() { let h: HashSet<u8> = x(); }";
        assert_eq!(
            rules_of(&lint_source("x.rs", src, ALL)),
            vec![HASH_CONTAINER]
        );
    }

    #[test]
    fn no_alloc_fence_catches_the_deny_list() {
        let src = "// lint: no_alloc\nfn hot(xs: &mut Vec<u32>) {\n    let v = Vec::new();\n    let b = Box::new(1);\n    let c: Vec<_> = xs.iter().collect();\n    let d = vec![0; 4];\n}\nfn cold() { let v: Vec<u32> = Vec::new(); }";
        let rules = rules_of(&lint_source("x.rs", src, ALL));
        assert_eq!(rules, vec![NO_ALLOC; 4]);
    }

    #[test]
    fn spawn_and_wall_clock_scoping() {
        let src = "fn go() { thread::spawn(f); let t = Instant::now(); }";
        let strict = rules_of(&lint_source("x.rs", src, ALL));
        assert!(strict.contains(&THREAD_SPAWN) && strict.contains(&WALL_CLOCK));
        let bench = Scope {
            timing_exempt: true,
            ..ALL
        };
        assert_eq!(
            rules_of(&lint_source("x.rs", src, bench)),
            vec![THREAD_SPAWN]
        );
        let pool = Scope {
            spawn_exempt: true,
            ..ALL
        };
        assert_eq!(rules_of(&lint_source("x.rs", src, pool)), vec![WALL_CLOCK]);
    }

    #[test]
    fn scope_paths() {
        assert!(scope_for("crates/firelib/src/sim.rs").deterministic);
        assert!(!scope_for("crates/service/src/serve.rs").deterministic);
        assert!(scope_for("crates/bench/src/bin/harness.rs").timing_exempt);
        assert!(scope_for("crates/parworker/src/pool.rs").spawn_exempt);
    }
}
