//! Workspace call graph by name resolution over `use` paths plus a
//! method-name heuristic.
//!
//! The graph is deliberately **over-approximate** in the safe direction:
//! a `.name(..)` call resolves to *every* workspace method of that name
//! the caller's crate is allowed to see (covering trait-object and
//! generic dispatch without type inference), and a workspace-qualified
//! path call that fails to resolve is surfaced so the panic prover can
//! treat it as conservatively panicking. External calls (`std`, vendored
//! `rand`) are assumed non-panicking — their panic surfaces (`unwrap`,
//! `expect`, indexing) are seeded at the call site by the parser
//! instead.

use crate::layering;
use crate::parse::{CallKind, ParsedFile, Seed, SeedKind, TaintSrc};
use std::collections::{BTreeMap, BTreeSet};

/// One function in the graph.
#[derive(Debug, Clone)]
pub struct Sym {
    /// Owning crate's lib identifier.
    pub krate: String,
    /// `impl`/`trait` type, when a method.
    pub owner: Option<String>,
    /// Function name.
    pub name: String,
    /// Workspace-relative path.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// First header line (attributes) — fn-level allows start here.
    pub header_line: usize,
    /// Body-open line — fn-level allows end here.
    pub open_line: usize,
    /// Test-only code.
    pub is_test: bool,
    /// Carries `#[deprecated]`.
    pub deprecated: bool,
    /// Carries/contains `#[allow(deprecated)]`.
    pub allows_deprecated: bool,
    /// Panic seeds in the body.
    pub seeds: Vec<Seed>,
    /// Determinism-taint sources in the body.
    pub taints: Vec<TaintSrc>,
}

impl Sym {
    /// `Owner::name` or `name`, for reports.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee symbol index.
    pub callee: usize,
    /// Resolved from an explicit path (`Type::name`, `krate::mod::name`)
    /// rather than the method-name heuristic.
    pub direct: bool,
}

/// A workspace-qualified path call that did not resolve.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller symbol index.
    pub caller: usize,
    /// The call as written.
    pub path: String,
    /// 1-based line.
    pub line: usize,
}

/// The resolved workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All functions, in file/definition order.
    pub syms: Vec<Sym>,
    /// Outgoing edges per symbol (deduplicated).
    pub edges: Vec<Vec<Edge>>,
    /// Workspace-qualified calls that failed to resolve — the panic
    /// prover treats these as conservatively panicking.
    pub unresolved: Vec<Unresolved>,
}

impl Graph {
    /// Total edge count.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Symbol indices matching (crate, owner, name), non-test only.
    pub fn find(&self, krate: &str, owner: Option<&str>, name: &str) -> Vec<usize> {
        self.syms
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !s.is_test && s.krate == krate && s.owner.as_deref() == owner && s.name == name
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Reverse adjacency (callee → callers).
    pub fn reverse_edges(&self) -> Vec<Vec<usize>> {
        let mut rev = vec![Vec::new(); self.syms.len()];
        for (caller, outs) in self.edges.iter().enumerate() {
            for e in outs {
                rev[e.callee].push(caller);
            }
        }
        rev
    }
}

/// True when crate `from` may resolve calls into crate `to`: itself, or
/// any crate strictly below it in the layer map. Keeping resolution
/// inside the legal dependency cone stops common method names from
/// creating upward edges that cannot exist at link time.
fn resolvable(from: &str, to: &str) -> bool {
    from == to || layering::edge_allowed(from, to)
}

/// Builds the call graph over every parsed file.
pub fn build(files: &[ParsedFile]) -> Graph {
    let mut g = Graph::default();
    // (file index, fn index) per symbol, for the resolution pass.
    let mut origin: Vec<(usize, usize)> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (ni, item) in f.fns.iter().enumerate() {
            g.syms.push(Sym {
                krate: f.krate.clone(),
                owner: item.owner.clone(),
                name: item.name.clone(),
                file: f.path.clone(),
                line: item.line,
                header_line: item.header_line,
                open_line: item.open_line,
                is_test: item.is_test,
                deprecated: item.deprecated,
                allows_deprecated: item.allows_deprecated,
                seeds: item.seeds.clone(),
                taints: item.taints.clone(),
            });
            origin.push((fi, ni));
        }
    }

    // Candidate indexes over non-test symbols.
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut owners: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (i, s) in g.syms.iter().enumerate() {
        if s.is_test {
            continue;
        }
        match &s.owner {
            Some(o) => {
                methods.entry(&s.name).or_default().push(i);
                owners
                    .entry((o.as_str(), s.name.as_str()))
                    .or_default()
                    .push(i);
            }
            None => free
                .entry((s.krate.as_str(), s.name.as_str()))
                .or_default()
                .push(i),
        }
    }

    // Crates whose sources were actually parsed — path calls into any
    // other crate are external by construction.
    let scanned: BTreeSet<&str> = files.iter().map(|f| f.krate.as_str()).collect();

    // Per-file import maps: local leaf name → root crate, and glob
    // roots.
    let mut leaf_maps: Vec<BTreeMap<&str, String>> = Vec::new();
    let mut glob_roots: Vec<Vec<String>> = Vec::new();
    for f in files {
        let mut leaves = BTreeMap::new();
        let mut globs = Vec::new();
        for u in &f.uses {
            let root = normalize_root(&u.root, &f.krate);
            for leaf in &u.leaves {
                leaves.insert(leaf.as_str(), root.clone());
            }
            if u.glob && layering::rank_of(&root).is_some() {
                globs.push(root.clone());
            }
        }
        leaf_maps.push(leaves);
        glob_roots.push(globs);
    }

    g.edges = vec![Vec::new(); g.syms.len()];
    // Symbols whose `self.expect(..)` resolved to a workspace method —
    // their `Expect` seeds are dropped after the borrow of the candidate
    // maps ends.
    let mut drop_self_expect: Vec<usize> = Vec::new();
    for (si, &(fi, ni)) in origin.iter().enumerate() {
        let f = &files[fi];
        let item = &f.fns[ni];
        if item.is_test {
            continue;
        }
        let own = f.krate.as_str();
        let leaves = &leaf_maps[fi];
        let globs = &glob_roots[fi];
        let mut outs: BTreeSet<(usize, bool)> = BTreeSet::new();
        let mut self_expect_resolved = false;
        for call in &item.calls {
            match call.kind {
                CallKind::Method => {
                    let mut hit = false;
                    if let Some(cands) = methods.get(call.name.as_str()) {
                        for &c in cands {
                            if c != si && resolvable(own, &g.syms[c].krate) {
                                outs.insert((c, false));
                                hit = true;
                            }
                        }
                    }
                    if hit && call.name == "expect" {
                        self_expect_resolved = true;
                    }
                }
                CallKind::Free => {
                    if let Some(cands) = free.get(&(own, call.name.as_str())) {
                        for &c in cands {
                            if c != si {
                                outs.insert((c, true));
                            }
                        }
                    }
                    let mut roots: Vec<&str> = Vec::new();
                    if let Some(r) = leaves.get(call.name.as_str()) {
                        roots.push(r);
                    }
                    roots.extend(globs.iter().map(String::as_str));
                    for r in roots {
                        if r != own && resolvable(own, r) {
                            if let Some(cands) = free.get(&(r, call.name.as_str())) {
                                for &c in cands {
                                    outs.insert((c, true));
                                }
                            }
                        }
                    }
                }
                CallKind::Path => {
                    resolve_path_call(
                        &g.syms,
                        &free,
                        &owners,
                        leaves,
                        &scanned,
                        own,
                        item.owner.as_deref(),
                        si,
                        &call.path,
                        &call.name,
                        call.line,
                        &mut outs,
                        &mut g.unresolved,
                    );
                }
            }
        }
        let mut edges: Vec<Edge> = outs
            .into_iter()
            .map(|(callee, direct)| Edge { callee, direct })
            .collect();
        // A symbol may appear with both direct and heuristic edges;
        // keep the direct one.
        edges.dedup_by(|b, a| {
            if a.callee == b.callee {
                a.direct |= b.direct;
                true
            } else {
                false
            }
        });
        g.edges[si] = edges;

        // `self.expect(..)` that resolved to a workspace method (the
        // jsonio parser) is a call, not an `Option::expect` seed.
        if self_expect_resolved {
            drop_self_expect.push(si);
        }
    }
    for si in drop_self_expect {
        g.syms[si]
            .seeds
            .retain(|s| !(s.kind == SeedKind::Expect && s.on_self));
    }
    g
}

fn normalize_root(root: &str, own: &str) -> String {
    match root {
        "crate" | "self" | "super" => own.to_string(),
        other => other.to_string(),
    }
}

/// Trait methods commonly provided by `#[derive(..)]` — an
/// associated-call miss on one of these is a derive, not a missing
/// function (derived impls have no source to scan, and none of the
/// repo's derives panic).
const DERIVED_METHODS: &[&str] = &[
    "default",
    "clone",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "from",
];

#[allow(clippy::too_many_arguments)]
fn resolve_path_call(
    syms: &[Sym],
    free: &BTreeMap<(&str, &str), Vec<usize>>,
    owners: &BTreeMap<(&str, &str), Vec<usize>>,
    leaves: &BTreeMap<&str, String>,
    scanned: &BTreeSet<&str>,
    own: &str,
    own_owner: Option<&str>,
    caller: usize,
    path: &[String],
    name: &str,
    line: usize,
    outs: &mut BTreeSet<(usize, bool)>,
    unresolved: &mut Vec<Unresolved>,
) {
    let first = path[0].as_str();
    let last = path.last().map(String::as_str).unwrap_or(first);
    let type_like = |s: &str| s.starts_with(|c: char| c.is_ascii_uppercase());

    // Where does the path's first segment land?
    let target_crate: Option<String> = if matches!(first, "crate" | "self" | "super") {
        Some(own.to_string())
    } else if layering::rank_of(first).is_some() {
        Some(first.to_string())
    } else if let Some(r) = leaves.get(first) {
        if layering::rank_of(r).is_some() {
            Some(r.clone())
        } else {
            return; // imported from std/external
        }
    } else if type_like(first) {
        None // a bare `Type::name(..)` — resolve by owner below
    } else {
        return; // std / external module path
    };
    // A crate in the layer map whose sources were not parsed (vendored
    // `rand`) is external: assumed non-panicking, like std.
    if let Some(t) = &target_crate {
        if !scanned.contains(t.as_str()) {
            return;
        }
    }

    if type_like(last) || last == "Self" {
        // Associated call `…::Type::name(..)`.
        let ty = if last == "Self" {
            match own_owner {
                Some(t) => t,
                None => return,
            }
        } else {
            last
        };
        if let Some(cands) = owners.get(&(ty, name)) {
            let mut hit = false;
            for &c in cands {
                let ok = match &target_crate {
                    Some(t) => syms[c].krate == *t,
                    None => resolvable(own, &syms[c].krate),
                };
                if ok && c != caller {
                    outs.insert((c, true));
                    hit = true;
                }
            }
            if hit {
                return;
            }
        }
        // A workspace-anchored type with no such method: conservative,
        // except for derive-provided trait methods.
        if target_crate.is_some() && !DERIVED_METHODS.contains(&name) {
            unresolved.push(Unresolved {
                caller,
                path: format!("{}::{name}", path.join("::")),
                line,
            });
        }
        return;
    }

    // Module-qualified free call `krate::mod::name(..)`.
    let Some(target) = target_crate else { return };
    match free.get(&(target.as_str(), name)) {
        Some(cands) => {
            for &c in cands {
                if c != caller {
                    outs.insert((c, true));
                }
            }
        }
        None => unresolved.push(Unresolved {
            caller,
            path: format!("{}::{name}", path.join("::")),
            line,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    fn graph(files: &[(&str, &str, &str)]) -> Graph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(path, krate, src)| parse_source(path, krate, src))
            .collect();
        build(&parsed)
    }

    fn idx(g: &Graph, name: &str) -> usize {
        g.syms.iter().position(|s| s.name == name).unwrap()
    }

    #[test]
    fn free_and_path_calls_resolve_in_crate() {
        let g = graph(&[(
            "crates/ess/src/a.rs",
            "ess",
            "fn top() { helper(); crate::other(); }\nfn helper() {}\nfn other() {}",
        )]);
        let top = idx(&g, "top");
        let callees: Vec<_> = g.edges[top].iter().map(|e| e.callee).collect();
        assert_eq!(callees, vec![idx(&g, "helper"), idx(&g, "other")]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn method_heuristic_respects_the_layer_cone() {
        let g = graph(&[
            (
                "crates/service/src/a.rs",
                "ess_service",
                "impl Sched { fn round(&self) { self.x.step(1); } }",
            ),
            (
                "crates/ess/src/b.rs",
                "ess",
                "impl Driver { fn step(&self, n: u32) {} }",
            ),
            (
                "crates/bench/src/c.rs",
                "ess_benches",
                "impl Bench { fn step(&self) {} }",
            ),
        ]);
        let round = idx(&g, "round");
        // service resolves downward into ess, never upward into bench.
        let names: Vec<_> = g.edges[round]
            .iter()
            .map(|e| g.syms[e.callee].krate.as_str())
            .collect();
        assert_eq!(names, vec!["ess"]);
    }

    #[test]
    fn imported_type_assoc_call_resolves_cross_crate() {
        let g = graph(&[
            (
                "crates/analysis/src/a.rs",
                "ess_analysis",
                "use ess_service::jsonio::Json;\nfn render() { let j = Json::obj(); }",
            ),
            (
                "crates/service/src/jsonio.rs",
                "ess_service",
                "impl Json { pub fn obj() -> Json { Json::Obj(Vec::new()) } }",
            ),
        ]);
        let render = idx(&g, "render");
        assert_eq!(g.edges[render].len(), 1);
        assert!(g.edges[render][0].direct);
    }

    #[test]
    fn workspace_qualified_miss_is_conservative() {
        let g = graph(&[(
            "crates/ess/src/a.rs",
            "ess",
            "fn top() { crate::nonexistent_fn(); std::mem::drop(1); }",
        )]);
        assert_eq!(g.unresolved.len(), 1);
        assert!(g.unresolved[0].path.contains("nonexistent_fn"));
    }

    #[test]
    fn self_expect_seed_drops_when_a_method_resolves() {
        let g = graph(&[(
            "crates/service/src/jsonio.rs",
            "ess_service",
            "impl Parser {\n    fn expect(&mut self, b: u8) -> Result<(), E> { Ok(()) }\n    fn array(&mut self) { self.expect(b'['); }\n}",
        )]);
        let array = idx(&g, "array");
        assert!(g.syms[array].seeds.is_empty());
        // …but a real Option::expect on a non-self receiver stays.
        let g2 = graph(&[(
            "crates/service/src/x.rs",
            "ess_service",
            "fn f(o: Option<u8>) { o.expect(\"present\"); }",
        )]);
        let f = idx(&g2, "f");
        assert_eq!(g2.syms[f].seeds.len(), 1);
    }
}
