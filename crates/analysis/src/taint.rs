//! Determinism taint: nondeterminism sources must never be reachable
//! from the deterministic crates.
//!
//! Sources are wall-clock reads (`Instant::now`, `SystemTime`), seeded
//! hashing (`RandomState`) and thread-identity observation
//! (`thread::current`). A function is *tainted* when it can reach a
//! source through the call graph; the pass fails when any non-test
//! function in a deterministic crate (`firelib`, `evoalg`, `ess`,
//! `core`) is tainted — three calls of indirection through a backend do
//! not launder a clock read.
//!
//! `// audit: allow(taint) — <reason>` on a source kills its taint at
//! the source (e.g. the parworker telemetry stopwatches, whose readings
//! are reported but never fed back into results). The justification is
//! the proof obligation.

use crate::callgraph::Graph;

/// Crates whose results must be bit-reproducible.
pub const DETERMINISTIC_CRATES: &[&str] = &["firelib", "evoalg", "ess", "ess_ns"];

/// One taint finding, anchored at the source site.
#[derive(Debug, Clone)]
pub struct TaintFinding {
    /// Workspace-relative path of the source.
    pub file: String,
    /// 1-based line of the source.
    pub line: usize,
    /// Description.
    pub message: String,
    /// Call chain from an example deterministic-crate function to the
    /// source (empty for allowed sources, which are not propagated).
    pub witness: String,
    /// Covered by a justified allow.
    pub allowed: bool,
    /// The allow's justification.
    pub reason: Option<String>,
}

/// Runs the taint pass. `cover[sym][taint]` carries the resolved allow
/// reason for each source, when any.
pub fn analyze(g: &Graph, cover: &[Vec<Option<String>>]) -> Vec<TaintFinding> {
    let rev = g.reverse_edges();
    let mut findings = Vec::new();

    for (sym, s) in g.syms.iter().enumerate() {
        if s.is_test {
            continue;
        }
        for (ti, src) in s.taints.iter().enumerate() {
            if let Some(reason) = &cover[sym][ti] {
                // Justified: the taint dies here, but stays on the
                // audit trail.
                findings.push(TaintFinding {
                    file: s.file.clone(),
                    line: src.line,
                    message: format!(
                        "nondeterminism source `{}` in `{}` (taint killed by allow)",
                        src.what,
                        s.display()
                    ),
                    witness: String::new(),
                    allowed: true,
                    reason: Some(reason.clone()),
                });
                continue;
            }
            // Which deterministic-crate functions can reach this source?
            let mut parent: Vec<Option<usize>> = vec![None; g.syms.len()];
            let mut seen = vec![false; g.syms.len()];
            let mut queue = vec![sym];
            seen[sym] = true;
            let mut head = 0;
            let mut sinks: Vec<usize> = Vec::new();
            while head < queue.len() {
                let cur = queue[head];
                head += 1;
                if DETERMINISTIC_CRATES.contains(&g.syms[cur].krate.as_str())
                    && !g.syms[cur].is_test
                {
                    sinks.push(cur);
                }
                for &caller in &rev[cur] {
                    if !seen[caller] && !g.syms[caller].is_test {
                        seen[caller] = true;
                        parent[caller] = Some(cur);
                        queue.push(caller);
                    }
                }
            }
            if sinks.is_empty() {
                continue; // e.g. service-layer deadline clocks
            }
            // Witness: deterministic sink → … → source (parent chains
            // point toward the source).
            let example = sinks[0];
            let mut chain = vec![example];
            let mut cur = example;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            let witness = chain
                .iter()
                .map(|&x| g.syms[x].display())
                .collect::<Vec<_>>()
                .join(" → ");
            findings.push(TaintFinding {
                file: s.file.clone(),
                line: src.line,
                message: format!(
                    "nondeterminism source `{}` in `{}` is reachable from {} function(s) in \
                     deterministic crates (e.g. `{}`)",
                    src.what,
                    s.display(),
                    sinks.len(),
                    g.syms[example].display()
                ),
                witness,
                allowed: false,
                reason: None,
            });
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parse::parse_source;

    #[test]
    fn clock_behind_a_backend_taints_the_kernel_caller() {
        let files = [
            parse_source(
                "crates/evoalg/src/ga.rs",
                "evoalg",
                "pub fn evolve(b: &dyn Backend) { b.run_tasks(3); }",
            ),
            parse_source(
                "crates/parworker/src/pool.rs",
                "parworker",
                "impl Pool { pub fn run_tasks(&self, n: usize) { let t = Instant::now(); } }",
            ),
        ];
        let g = build(&files);
        let cover: Vec<Vec<Option<String>>> =
            g.syms.iter().map(|s| vec![None; s.taints.len()]).collect();
        let f = analyze(&g, &cover);
        assert_eq!(f.len(), 1);
        assert!(!f[0].allowed);
        assert!(f[0].witness.contains("evolve"));
        assert!(f[0].message.contains("Instant::now"));
    }

    #[test]
    fn allowed_source_kills_the_taint() {
        let files = [
            parse_source(
                "crates/evoalg/src/ga.rs",
                "evoalg",
                "pub fn evolve(b: &dyn Backend) { b.run_tasks(3); }",
            ),
            parse_source(
                "crates/parworker/src/pool.rs",
                "parworker",
                "impl Pool { pub fn run_tasks(&self, n: usize) { let t = Instant::now(); } }",
            ),
        ];
        let g = build(&files);
        let cover: Vec<Vec<Option<String>>> = g
            .syms
            .iter()
            .map(|s| vec![Some("telemetry only".to_string()); s.taints.len()])
            .collect();
        let f = analyze(&g, &cover);
        assert_eq!(f.len(), 1);
        assert!(f[0].allowed);
    }

    #[test]
    fn service_layer_clock_with_no_deterministic_reach_is_clean() {
        let files = [parse_source(
            "crates/service/src/session.rs",
            "ess_service",
            "impl Session { fn plan(&mut self) { let t = Instant::now(); } }",
        )];
        let g = build(&files);
        let cover: Vec<Vec<Option<String>>> =
            g.syms.iter().map(|s| vec![None; s.taints.len()]).collect();
        assert!(analyze(&g, &cover).is_empty());
    }
}
