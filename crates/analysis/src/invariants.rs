//! Adversarial invariant drivers for the fire propagation core.
//!
//! Randomized (but seeded) terrain/scenario generation hammers the three
//! properties every consumer of `firelib` leans on:
//!
//! 1. **Physical sanity** — spread rates and the active-front bound are
//!    finite and non-negative for every valid input, including the
//!    extreme corners ([`hostile_ros_sweep`]): hurricane winds, near-cliff
//!    slopes, moistures past extinction.
//! 2. **Arrival-map sanity** — every simulated cell is either
//!    `UNIGNITED` or a finite time inside `[t0, t0 + duration]`.
//! 3. **Kernel equivalence** — the bucket kernel (with active-front
//!    bounding and dirty-span arena reuse) is *bit-identical* to the
//!    reference heap kernel on every generated landscape, including
//!    back-to-back runs that reuse one arena across different scenarios
//!    and shapes of dirt.
//!
//! The monotone-pop invariant inside the kernels themselves is asserted
//! by `debug_assertions`-gated checks in `firelib::sim` (this PR's
//! satellite), so every debug-mode run of these drivers doubles as a pop
//! -order audit.

use firelib::{FireSim, Kernel, Scenario, Terrain};
use landscape::{FireLine, Grid, UNIGNITED};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters from one driver run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirelibStats {
    /// Random landscapes simulated.
    pub terrains: u64,
    /// Raster cells audited across all landscapes.
    pub cells: u64,
    /// Extreme-scenario spread-rate samples checked.
    pub ros_samples: u64,
}

/// A random but valid scenario; ranges cover the paper's calibration
/// space and then some.
fn gen_scenario(rng: &mut StdRng) -> Scenario {
    Scenario {
        model: rng.random_range(1..14u32) as u8,
        wind_speed_mph: rng.random_range(0.0..40.0),
        wind_dir_deg: rng.random_range(0.0..360.0),
        m1_pct: rng.random_range(1.0..25.0),
        m10_pct: rng.random_range(1.0..25.0),
        m100_pct: rng.random_range(1.0..30.0),
        mherb_pct: rng.random_range(30.0..200.0),
        slope_deg: rng.random_range(0.0..45.0),
        aspect_deg: rng.random_range(0.0..360.0),
    }
}

/// A random heterogeneous terrain: each override layer is present with
/// probability ~0.7, so homogeneous fast paths and fully layered SoA
/// gathers both stay covered.
fn gen_terrain(rng: &mut StdRng) -> Terrain {
    let rows = rng.random_range(5..28usize);
    let cols = rng.random_range(5..31usize);
    let mut terrain = Terrain::uniform(rows, cols, rng.random_range(30.0..150.0));
    if rng.random_bool(0.7) {
        terrain = terrain.with_fuel(Grid::from_fn(rows, cols, |_, _| {
            rng.random_range(0..14u32) as u8
        }));
    }
    if rng.random_bool(0.7) {
        terrain = terrain.with_slope(Grid::from_fn(rows, cols, |_, _| {
            rng.random_range(0.0..50.0)
        }));
    }
    if rng.random_bool(0.7) {
        terrain = terrain.with_aspect(Grid::from_fn(rows, cols, |_, _| {
            rng.random_range(0.0..360.0)
        }));
    }
    if rng.random_bool(0.7) {
        let speed = Grid::from_fn(rows, cols, |_, _| rng.random_range(0.0..2.5));
        let dir = Grid::from_fn(rows, cols, |_, _| rng.random_range(-120.0..120.0));
        terrain = terrain.with_wind(speed, dir);
    }
    terrain
}

/// 1–3 random ignition cells.
fn gen_ignition(rng: &mut StdRng, rows: usize, cols: usize) -> FireLine {
    let n = rng.random_range(1..4usize);
    let cells: Vec<(usize, usize)> = (0..n)
        .map(|_| (rng.random_range(0..rows), rng.random_range(0..cols)))
        .collect();
    FireLine::from_cells(rows, cols, &cells)
}

/// Simulates `terrains` random landscapes, two scenario draws each, and
/// audits bound sanity, arrival-map sanity and heap≡bucket bit-identity
/// (with the bucket arena deliberately reused dirty between draws).
///
/// # Errors
/// A description of the first violated invariant, with the seed index
/// that reproduces it.
pub fn verify_firelib(seed: u64, terrains: u64) -> Result<FirelibStats, String> {
    let mut stats = FirelibStats::default();
    for i in 0..terrains {
        let mut rng = StdRng::seed_from_u64(seed ^ (i.wrapping_mul(0x9E3779B97F4A7C15)));
        let terrain = gen_terrain(&mut rng);
        let (rows, cols) = (terrain.rows(), terrain.cols());
        let sim = FireSim::new(terrain);
        let mut bucket_arena = sim.arena();
        let mut heap_arena = sim.arena();
        // Two draws over one arena pair: the second run inherits the
        // first's dirty spans, exactly like a worker's steady state.
        for draw in 0..2 {
            let scenario = gen_scenario(&mut rng);
            let ignition = gen_ignition(&mut rng, rows, cols);
            let t0 = rng.random_range(0.0..30.0);
            let duration = rng.random_range(5.0..180.0);
            let label = format!("terrain {i} draw {draw} (seed {seed})");

            let bound = sim.spread_rate_bound(&scenario);
            if !bound.is_finite() || bound < 0.0 {
                return Err(format!("{label}: spread_rate_bound = {bound}"));
            }
            let ros = sim.max_ros(&scenario);
            if !ros.is_finite() || ros < 0.0 {
                return Err(format!("{label}: max_ros = {ros}"));
            }

            let heap = sim
                .simulate_arena_kernel(
                    &scenario,
                    &ignition,
                    t0,
                    duration,
                    &mut heap_arena,
                    Kernel::Heap,
                )
                .clone();
            let bucket = sim.simulate_arena_kernel(
                &scenario,
                &ignition,
                t0,
                duration,
                &mut bucket_arena,
                Kernel::Bucket,
            );

            let h = heap.grid().as_slice();
            let b = bucket.grid().as_slice();
            for (idx, (&th, &tb)) in h.iter().zip(b).enumerate() {
                stats.cells += 1;
                if th.to_bits() != tb.to_bits() {
                    return Err(format!(
                        "{label}: kernels diverge at cell {idx}: heap {th} vs bucket {tb}"
                    ));
                }
                if th.to_bits() == UNIGNITED.to_bits() {
                    continue;
                }
                if !th.is_finite() || th < t0 || th > t0 + duration {
                    return Err(format!(
                        "{label}: cell {idx} arrival {th} outside [{t0}, {}]",
                        t0 + duration
                    ));
                }
            }
        }
        stats.terrains += 1;
    }
    Ok(stats)
}

/// Sweeps the spread math through extreme-but-valid corners on tiny
/// uniform terrains: calm and hurricane winds, flat ground and near
/// cliffs, bone-dry and past-extinction moistures. Every rate must be
/// finite and non-negative, and the active-front bound must dominate the
/// per-cell maximum.
///
/// # Errors
/// A description of the first non-finite, negative, or bound-violating
/// sample.
pub fn hostile_ros_sweep(seed: u64, samples: u64) -> Result<FirelibStats, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = FirelibStats::default();
    const WINDS: &[f64] = &[0.0, 0.01, 7.0, 60.0, 150.0];
    const SLOPES: &[f64] = &[0.0, 0.1, 30.0, 75.0, 89.0];
    for s in 0..samples {
        let scenario = Scenario {
            model: (s % 13 + 1) as u8,
            wind_speed_mph: WINDS[(s as usize / 13) % WINDS.len()],
            wind_dir_deg: rng.random_range(0.0..360.0),
            m1_pct: rng.random_range(0.5..60.0),
            m10_pct: rng.random_range(0.5..60.0),
            m100_pct: rng.random_range(0.5..60.0),
            mherb_pct: rng.random_range(5.0..250.0),
            slope_deg: SLOPES[(s as usize / 65) % SLOPES.len()],
            aspect_deg: rng.random_range(0.0..360.0),
        };
        let sim = FireSim::new(Terrain::uniform(2, 2, rng.random_range(10.0..300.0)));
        let ros = sim.max_ros(&scenario);
        let bound = sim.spread_rate_bound(&scenario);
        stats.ros_samples += 1;
        if !ros.is_finite() || ros < 0.0 {
            return Err(format!("sample {s}: max_ros = {ros} for {scenario:?}"));
        }
        if !bound.is_finite() || bound < 0.0 {
            return Err(format!("sample {s}: bound = {bound} for {scenario:?}"));
        }
        // The window-sizing bound must dominate the exact per-cell rate
        // (allowing only float slack — the kernels tolerate exactly this
        // much via their lazy fallback).
        if ros > bound * (1.0 + 1e-9) + 1e-9 {
            return Err(format!(
                "sample {s}: max_ros {ros} exceeds bound {bound} for {scenario:?}"
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_landscapes_hold_all_invariants() {
        let stats = verify_firelib(0x5EED, 12).expect("invariants hold");
        assert_eq!(stats.terrains, 12);
        assert!(stats.cells > 2_000, "{stats:?}");
    }

    #[test]
    fn hostile_corners_stay_finite() {
        let stats = hostile_ros_sweep(0x5EED, 400).expect("rates stay sane");
        assert_eq!(stats.ros_samples, 400);
    }

    #[test]
    fn drivers_are_deterministic() {
        let a = verify_firelib(7, 3).unwrap();
        let b = verify_firelib(7, 3).unwrap();
        assert_eq!(a.cells, b.cells);
    }
}
