//! Seeded structured-mutation fuzzing for the parsing surface.
//!
//! Three targets, all driven from one deterministic [`rand::StdRng`]
//! stream (same seed → same inputs, so a CI failure replays locally):
//!
//! - [`fuzz_jsonio`] — `Json::parse` on valid documents, mutated
//!   documents (truncation, byte flips, splices) and crafted hostiles
//!   (depth bombs, unpaired surrogates, duplicate keys, huge numbers,
//!   raw control bytes). The parser must return `Ok`/`Err`, never panic,
//!   and every `Ok` must round-trip (`to_string` → reparse → equal) in
//!   both compact and pretty renderings.
//! - [`fuzz_envelopes`] — the v2 envelope surface: `Request::from_json`,
//!   `Frame::from_json` and `RunSpec::from_json` over mutated envelopes.
//!   Same contract: clean errors, no panics.
//! - [`fuzz_serve_loop`] — hostile byte lines straight into the real
//!   serve loop; it must answer every line and reach the EOF path without
//!   admitting a session or dying.

use ess::fitness::EvalBackend;
use ess_service::jsonio::Json;
use ess_service::policy::PolicyKind;
use ess_service::proto::{Frame, Request};
use ess_service::serve::serve_configured;
use ess_service::spec::RunSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Counters from one fuzz loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Inputs fed to the target.
    pub inputs: u64,
    /// Inputs the parser accepted.
    pub accepted: u64,
    /// Inputs the parser rejected with a clean error.
    pub rejected: u64,
}

/// Key alphabet for generated objects. Deliberately disjoint from every
/// protocol keyword (`op`, `v`, `kind`, `system`, …) so a generated line
/// can never accidentally be a well-formed request — [`fuzz_serve_loop`]
/// relies on that to assert `accepted == 0`.
const KEYS: &[&str] = &["k0", "k1", "k2", "zz", "qq", "xx"];

/// Builds a random valid document of bounded depth.
fn gen_doc(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 {
        rng.random_range(0..4u32)
    } else {
        rng.random_range(0..6u32)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.random_range(0..2u32) == 0),
        2 => {
            // Mix of magnitudes, signs and fractions.
            let mag = rng.random_range(-12i64..13) as f64;
            Json::Num((rng.random_range(-1.0..1.0) * 10f64.powf(mag) * 1e6).round() / 1e6)
        }
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.random_range(0..4usize);
            Json::Arr((0..n).map(|_| gen_doc(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.random_range(0..4usize);
            Json::Obj(
                (0..n)
                    .map(|_| {
                        (
                            KEYS[rng.random_range(0..KEYS.len())].to_string(),
                            gen_doc(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

/// Strings that stress the escape paths: quotes, backslashes, newlines,
/// control characters, astral-plane and boundary code points.
fn gen_string(rng: &mut StdRng) -> String {
    const POOL: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\t',
        '\r',
        '\u{0}',
        '\u{1}',
        '\u{1f}',
        '\u{7f}',
        'é',
        'ß',
        '中',
        '\u{1F525}',
        '\u{FFFD}',
        '\u{E000}',
        '\u{D7FF}',
    ];
    let n = rng.random_range(0..10usize);
    (0..n)
        .map(|_| POOL[rng.random_range(0..POOL.len())])
        .collect()
}

/// Mutates a rendering into hostile bytes. Returns a lossy string — the
/// parser takes `&str`, and invalid UTF-8 from byte flips degrades to
/// replacement characters, which is itself a hostile shape.
fn mutate(rng: &mut StdRng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.random_range(0..8u32) {
        // Truncation — mid-token, mid-string, mid-escape.
        0 => {
            if !bytes.is_empty() {
                bytes.truncate(rng.random_range(0..bytes.len()));
            }
        }
        // Byte flips.
        1 => {
            for _ in 0..rng.random_range(1..4u32) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.random_range(0..bytes.len());
                bytes[at] ^= 1 << rng.random_range(0..8u32);
            }
        }
        // Splice random bytes in.
        2 => {
            let at = rng.random_range(0..bytes.len() + 1);
            let garbage: Vec<u8> = (0..rng.random_range(1..6usize))
                .map(|_| rng.random_range(0..256u32) as u8)
                .collect();
            bytes.splice(at..at, garbage);
        }
        // Depth bomb: nest far past MAX_DEPTH.
        3 => {
            let n = rng.random_range(130..400usize);
            let mut s = "[".repeat(n);
            s.push_str(text);
            s.push_str(&"]".repeat(n));
            return s;
        }
        // Unpaired surrogate escapes (must be rejected, not decoded).
        4 => {
            let tail: String = text
                .chars()
                .take(8)
                .filter(|c| *c != '"' && *c != '\\')
                .collect();
            return format!(r#"{{"k0":"\ud800{tail}"}}"#);
        }
        // Duplicate keys.
        5 => return format!(r#"{{"k0":1,"k0":{text}}}"#),
        // Numeric edge cases.
        6 => {
            const NUMS: &[&str] = &[
                "1e999",
                "-1e999",
                "1e-999",
                "99999999999999999999999999999999",
                "-0.0",
                "0.000000000000000000000001",
                "1e308",
                "2e308",
                "5e-324",
                "-5e-324",
            ];
            return format!(r#"[{}]"#, NUMS[rng.random_range(0..NUMS.len())]);
        }
        // Raw control bytes inside a string literal.
        _ => {
            let c = rng.random_range(0..0x20u32) as u8;
            return format!("{{\"k0\":\"{}\"}}", c as char);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// One adversarial input per iteration: a fresh valid document (which
/// must parse and round-trip) or a mutation of one (which must parse or
/// error cleanly). `iterations` counts inputs.
///
/// # Errors
/// A description of the first panic or round-trip failure, with the
/// offending input.
pub fn fuzz_jsonio(seed: u64, iterations: u64) -> Result<FuzzStats, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = FuzzStats::default();
    for i in 0..iterations {
        let doc = gen_doc(&mut rng, 4);
        let rendered = doc.to_string();
        let input = if i % 3 == 0 {
            rendered.clone()
        } else {
            mutate(&mut rng, &rendered)
        };
        stats.inputs += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| Json::parse(&input)));
        match outcome {
            Err(_) => return Err(format!("Json::parse panicked on: {input}")),
            Ok(Ok(parsed)) => {
                stats.accepted += 1;
                // Canonicalization closure: print → reparse → print must be
                // a fixed point through both renderers. (Value equality is
                // too strong: `1e999` parses to an infinite Num, which the
                // writer deliberately renders as `null`; the *second*
                // rendering must then be stable.)
                let compact = parsed.to_string();
                let again = Json::parse(&compact)
                    .map_err(|e| format!("reparse of {compact} failed: {e}"))?;
                if again.to_string() != compact {
                    return Err(format!("round-trip changed the document: {input}"));
                }
                let pretty = again.to_pretty();
                let third = Json::parse(&pretty)
                    .map_err(|e| format!("pretty reparse of {input} failed: {e}"))?;
                if third.to_string() != compact {
                    return Err(format!("pretty round-trip changed the document: {input}"));
                }
            }
            Ok(Err(_)) => stats.rejected += 1,
        }
    }
    Ok(stats)
}

/// A plausible v2 request line to mutate (ids and minor fields vary).
fn gen_envelope(rng: &mut StdRng) -> String {
    let id = rng.random_range(0..100u64);
    match rng.random_range(0..6u32) {
        0 => format!(
            r#"{{"v":2,"id":{id},"kind":"run","watch":true,"spec":{{"system":"ESS","case":"meadow_small","seed":7,"replicates":1,"scale":0.1,"max_steps":2}}}}"#
        ),
        1 => format!(
            r#"{{"v":2,"id":{id},"kind":"advance","rounds":{}}}"#,
            rng.random_range(0..9u32)
        ),
        2 => format!(
            r#"{{"v":2,"id":{id},"kind":"cancel","session":{}}}"#,
            rng.random_range(0..9u32)
        ),
        3 => format!(
            r#"{{"v":2,"id":{id},"kind":"snapshot","session":{}}}"#,
            rng.random_range(0..9u32)
        ),
        4 => format!(r#"{{"v":2,"id":{id},"kind":"drain"}}"#),
        _ => format!(
            r#"{{"v":2,"kind":"progress","session":{},"step":1,"evaluations":40,"best":-0.5}}"#,
            rng.random_range(0..9u32)
        ),
    }
}

/// Mutated protocol envelopes through every typed `from_json` surface.
/// Whatever the bytes, the decoders must answer `Ok` or `Err` — never
/// panic, never decode an envelope `Json::parse` rejected.
///
/// # Errors
/// A description of the first panic, with the offending input.
pub fn fuzz_envelopes(seed: u64, iterations: u64) -> Result<FuzzStats, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = FuzzStats::default();
    for i in 0..iterations {
        let line = gen_envelope(&mut rng);
        let input = if i % 4 == 0 {
            line
        } else {
            mutate(&mut rng, &line)
        };
        stats.inputs += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let Ok(doc) = Json::parse(&input) else {
                return false;
            };
            // Every typed decoder must tolerate every parsed document.
            let _ = Request::from_json(&doc);
            let _ = Frame::from_json(&doc);
            let _ = RunSpec::from_json(&doc);
            true
        }));
        match outcome {
            Err(_) => return Err(format!("envelope decoding panicked on: {input}")),
            Ok(true) => stats.accepted += 1,
            Ok(false) => stats.rejected += 1,
        }
    }
    Ok(stats)
}

/// Hostile lines straight into the real serve loop. The generated keys
/// never collide with protocol keywords, so every line must be answered
/// with an error (or parsed-and-rejected) and the loop must reach its
/// EOF path with zero sessions admitted.
///
/// # Errors
/// A description of the first transport failure or contract violation.
pub fn fuzz_serve_loop(seed: u64, lines: u64) -> Result<FuzzStats, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = FuzzStats::default();
    let mut script = String::new();
    for _ in 0..lines {
        let doc = gen_doc(&mut rng, 3).to_string();
        let mutated = mutate(&mut rng, &doc);
        // One request per line: strip interior newlines the mutators may
        // have produced, and drop anything resembling a quit (ending the
        // loop early would skip the remaining hostile lines).
        let flat: String = mutated
            .chars()
            .filter(|c| *c != '\n' && *c != '\r')
            .collect();
        if flat.contains("quit") {
            continue;
        }
        stats.inputs += 1;
        script.push_str(&flat);
        script.push('\n');
    }
    let mut output = Vec::new();
    let summary = serve_configured(
        script.as_bytes(),
        &mut output,
        EvalBackend::Serial,
        PolicyKind::RoundRobin,
        false,
    )
    .map_err(|e| format!("serve loop died on hostile input: {e}"))?;
    if summary.accepted != 0 {
        return Err(format!(
            "hostile input admitted {} sessions",
            summary.accepted
        ));
    }
    // Every output line must itself be well-formed JSON.
    for line in String::from_utf8_lossy(&output).lines() {
        if line.trim().is_empty() {
            continue;
        }
        Json::parse(line).map_err(|e| format!("serve emitted invalid JSON ({e}): {line}"))?;
    }
    stats.rejected = summary.errors as u64;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonio_survives_a_seeded_burst() {
        let stats = fuzz_jsonio(0xF00D, 5_000).expect("no panics");
        assert_eq!(stats.inputs, 5_000);
        // Both outcomes must actually occur or the generator is broken.
        assert!(stats.accepted > 100, "{stats:?}");
        assert!(stats.rejected > 100, "{stats:?}");
    }

    #[test]
    fn envelopes_survive_a_seeded_burst() {
        let stats = fuzz_envelopes(0xBEEF, 3_000).expect("no panics");
        assert_eq!(stats.inputs, 3_000);
        assert!(stats.accepted > 100 && stats.rejected > 100, "{stats:?}");
    }

    #[test]
    fn serve_loop_survives_hostile_lines() {
        let stats = fuzz_serve_loop(0xCAFE, 300).expect("loop survives");
        assert!(stats.inputs > 200);
        assert!(stats.rejected > 0, "{stats:?}");
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let a = fuzz_jsonio(42, 2_000).unwrap();
        let b = fuzz_jsonio(42, 2_000).unwrap();
        assert_eq!(
            (a.accepted, a.rejected),
            (b.accepted, b.rejected),
            "fuzz stream must be reproducible"
        );
    }
}
