//! Item-level parsing on top of the [`crate::lex`] token scanner.
//!
//! This is deliberately *not* a Rust grammar: the audit passes only need
//! item structure (`fn` / `impl` / `trait` / `use`) plus three kinds of
//! facts extracted from function bodies in one linear token walk —
//! outgoing calls (for the call graph), panic seeds (for the panic-path
//! prover) and determinism-taint sources. Bodies stay token streams;
//! expressions are never built.
//!
//! Escape hatch grammar, mirroring the lint pass:
//! `// audit: allow(<rule>) — <reason>` with a mandatory reason. An
//! allow on a finding's line (or the line above) covers that site; an
//! allow between a function's first attribute and its opening brace
//! covers every site of that rule in the function.

use crate::layering;
use crate::lex::{lex, Tok, Token};
use crate::lint::{match_delim, test_region_mask};

/// One `use` declaration (possibly a nested group).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Line of the `use` keyword.
    pub line: usize,
    /// First path segment (`crate`/`self`/`super` left raw; the call
    /// graph normalizes them to the file's own crate).
    pub root: String,
    /// Every path segment, in order (for `std::thread` detection).
    pub segments: Vec<String>,
    /// Local binding names this declaration introduces.
    pub leaves: Vec<String>,
    /// `use foo::*`.
    pub glob: bool,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `name(..)` — a bare function call.
    Free,
    /// `.name(..)` — method-call syntax, resolved by name heuristic.
    Method,
    /// `path::to::name(..)` — qualified call.
    Path,
}

/// One outgoing call recorded in a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Call syntax.
    pub kind: CallKind,
    /// Qualifier segments for [`CallKind::Path`] (empty otherwise).
    pub path: Vec<String>,
    /// Called name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// A panic seed class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedKind {
    /// `.unwrap()`.
    Unwrap,
    /// `.expect(..)` — dropped later when the receiver is `self` and a
    /// workspace method named `expect` resolves (jsonio's parser).
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `assert!` / `assert_eq!` / `assert_ne!` (never `debug_assert*`).
    Assert,
    /// Postfix indexing / range slicing (`xs[i]`, `&b[a..c]`).
    Index,
}

/// One panic seed site.
#[derive(Debug, Clone)]
pub struct Seed {
    /// Seed class.
    pub kind: SeedKind,
    /// What was matched, for messages (`unwrap`, `assert_eq!`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// For [`SeedKind::Expect`]: the receiver is literally `self`.
    pub on_self: bool,
}

/// A determinism-taint source site (wall clock, seeded hashing,
/// thread-identity observation).
#[derive(Debug, Clone)]
pub struct TaintSrc {
    /// What was matched (`Instant::now`, `SystemTime`, …).
    pub what: &'static str,
    /// 1-based line.
    pub line: usize,
}

/// One `fn` item with the facts the audit passes need.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, when any.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// First line of the header (attributes / visibility).
    pub header_line: usize,
    /// Line of the body's `{` (or of the `;` for bodiless signatures).
    pub open_line: usize,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
    /// Carries `#[deprecated]`.
    pub deprecated: bool,
    /// Carries or contains `#[allow(deprecated)]` — under `clippy -D
    /// warnings` every real caller of a deprecated item must.
    pub allows_deprecated: bool,
    /// Outgoing calls.
    pub calls: Vec<Call>,
    /// Panic seeds.
    pub seeds: Vec<Seed>,
    /// Determinism-taint sources.
    pub taints: Vec<TaintSrc>,
}

/// A parsed `// audit: allow(..)` annotation.
#[derive(Debug, Clone)]
pub struct AuditAllow {
    /// Line of the comment.
    pub line: usize,
    /// First code line at or below the comment — the line a site-level
    /// allow covers. Skips over other comment-only lines so directive
    /// comments can stack (`// audit:` above `// lint:` above the code).
    pub anchor: usize,
    /// Rule it suppresses.
    pub rule: String,
    /// Mandatory justification.
    pub reason: String,
}

/// Everything the audit extracts from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate's lib identifier (`ess_service`, `firelib`, …).
    pub krate: String,
    /// `use` declarations.
    pub uses: Vec<UseDecl>,
    /// Function items.
    pub fns: Vec<FnItem>,
    /// Valid `audit: allow` annotations.
    pub allows: Vec<AuditAllow>,
    /// Malformed `audit:` directives (line, message).
    pub invalid: Vec<(usize, String)>,
    /// `std::thread::<api>` references outside test code (line, api).
    pub thread_refs: Vec<(usize, String)>,
    /// Inline foreign-workspace-crate qualifications outside test code
    /// (line, crate lib name).
    pub crate_refs: Vec<(usize, String)>,
}

/// Audit rule names an allow may suppress.
pub const AUDIT_RULES: &[&str] = &["panic", "layer", "taint", "dead-api"];

/// Parses an `audit:` directive out of a comment. `None` for ordinary
/// comments, `Some(Err(..))` for malformed directives.
pub fn parse_audit_directive(comment: &str) -> Option<Result<(String, String), String>> {
    let mut text = comment.trim();
    if let Some(stripped) = text.strip_prefix("/*") {
        text = stripped.strip_suffix("*/").unwrap_or(stripped);
    }
    let text = text.trim_start_matches(['/', '!', '*']).trim();
    let rest = text.strip_prefix("audit:")?.trim();
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Some(Err(format!("unrecognized audit directive `{rest}`")));
    };
    let Some(close) = inner.find(')') else {
        return Some(Err("allow(… missing `)`".to_string()));
    };
    let rule = inner[..close].trim().to_string();
    let reason = inner[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || matches!(c, '-' | '—' | '–' | ':'))
        .trim()
        .to_string();
    if !AUDIT_RULES.contains(&rule.as_str()) {
        return Some(Err(format!("allow names unknown audit rule `{rule}`")));
    }
    if reason.is_empty() {
        return Some(Err(format!(
            "allow({rule}) has no justification — state why the rule does not apply"
        )));
    }
    Some(Ok((rule, reason)))
}

/// `std::thread` APIs the layering pass denies outside `parworker`.
/// `available_parallelism` is deliberately absent: sizing worker counts
/// is allowed everywhere, owning threads is not.
pub const THREAD_DENY: &[&str] = &[
    "spawn",
    "scope",
    "sleep",
    "Builder",
    "current",
    "park",
    "yield_now",
    "JoinHandle",
];

/// Keywords that look like a call when followed by `(`.
const FREE_CALL_SKIP: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "break", "continue", "let", "else", "in",
    "as", "move", "ref", "mut", "box", "unsafe", "where", "impl", "dyn", "fn", "use", "pub", "mod",
    "crate", "super", "self", "Self", "static", "const", "type", "struct", "enum", "trait",
    "extern", "await", "yield", "true", "false",
];

/// Idents that make a following `[` a pattern/type/statement bracket,
/// not a postfix index.
const INDEX_PREV_SKIP: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "ref", "mut", "move", "box", "as", "for",
    "while", "loop", "use", "pub", "where", "unsafe", "dyn", "impl", "fn", "const", "static",
    "type", "struct", "enum", "trait", "mod", "crate", "break", "continue", "true", "false",
];

fn ident<'a>(sig: &'a [&Token], i: usize) -> Option<&'a str> {
    match sig.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct(sig: &[&Token], i: usize) -> Option<char> {
    match sig.get(i).map(|t| &t.kind) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// `::` arrives from the lexer as two `:` puncts; true when the pair
/// starts at `i`.
fn path_sep(sig: &[&Token], i: usize) -> bool {
    punct(sig, i) == Some(':') && punct(sig, i + 1) == Some(':')
}

/// Skips a balanced `<...>` group starting at `at` (which must be `<`),
/// returning the index just past the matching `>`. The `>` of `->` and
/// `=>` does not count as a closer.
fn skip_angles(sig: &[&Token], at: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = at;
    while k < sig.len() {
        match punct(sig, k) {
            Some('<') => depth += 1,
            Some('>') if !matches!(punct(sig, k.wrapping_sub(1)), Some('-') | Some('=')) => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            Some(';') | Some('{') => return None, // ran off the item
            _ => {}
        }
        k += 1;
    }
    None
}

/// Reads a type path (`a::b::Name<T>`), returning its last identifier
/// and advancing `j` past it.
fn read_type_path(sig: &[&Token], j: &mut usize) -> Option<String> {
    let mut last = None;
    while let Some(seg) = ident(sig, *j) {
        last = Some(seg.to_string());
        *j += 1;
        if punct(sig, *j) == Some('<') {
            let Some(next) = skip_angles(sig, *j) else {
                break;
            };
            *j = next;
        }
        if path_sep(sig, *j) {
            *j += 2;
            continue;
        }
        break;
    }
    last
}

/// Walks backward from the `fn` keyword over visibility, qualifiers and
/// attributes to the first token of the item header.
fn header_start(sig: &[&Token], fn_idx: usize) -> usize {
    let mut j = fn_idx;
    while j > 0 {
        match &sig[j - 1].kind {
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "pub" | "unsafe" | "const" | "async" | "extern" | "default"
                ) =>
            {
                j -= 1;
            }
            Tok::Literal => j -= 1, // extern "C"
            Tok::Punct(')') => {
                // pub(crate) / pub(in path)
                let mut depth = 1usize;
                let mut k = j - 1;
                loop {
                    if k == 0 {
                        return j;
                    }
                    k -= 1;
                    match punct(sig, k) {
                        Some(')') => depth += 1,
                        Some('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                j = k;
            }
            Tok::Punct(']') => {
                // an attribute `#[...]`
                let mut depth = 1usize;
                let mut k = j - 1;
                loop {
                    if k == 0 {
                        return j;
                    }
                    k -= 1;
                    match punct(sig, k) {
                        Some(']') => depth += 1,
                        Some('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if k > 0 && punct(sig, k - 1) == Some('#') {
                    j = k - 1;
                } else {
                    return j;
                }
            }
            _ => break,
        }
    }
    j
}

/// Parses one source file into the audit's item model.
pub fn parse_source(path: &str, krate: &str, src: &str) -> ParsedFile {
    let tokens = lex(src);
    let mut out = ParsedFile {
        path: path.to_string(),
        krate: krate.to_string(),
        ..ParsedFile::default()
    };

    for t in &tokens {
        if let Tok::Comment(text) = &t.kind {
            match parse_audit_directive(text) {
                Some(Ok((rule, reason))) => out.allows.push(AuditAllow {
                    line: t.line,
                    anchor: t.line,
                    rule,
                    reason,
                }),
                Some(Err(msg)) => out.invalid.push((t.line, msg)),
                None => {}
            }
        }
    }

    let sig: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, Tok::Comment(_)))
        .collect();
    let test = test_region_mask(&sig);

    // Item walk: a stack of open `impl`/`trait` bodies supplies the
    // owner type for functions defined inside them.
    let mut owners: Vec<(Option<String>, usize)> = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        while owners.last().is_some_and(|&(_, close)| close < i) {
            owners.pop();
        }
        match ident(&sig, i) {
            Some("use") => {
                i = parse_use(&sig, i, test[i], &mut out);
                continue;
            }
            Some("impl") => {
                if let Some((owner, open, close)) = parse_impl_header(&sig, i) {
                    owners.push((owner, close));
                    i = open + 1;
                    continue;
                }
            }
            Some("trait") => {
                if let Some(name) = ident(&sig, i + 1) {
                    let name = name.to_string();
                    if let Some(open) =
                        (i..sig.len()).find(|&k| matches!(punct(&sig, k), Some('{') | Some(';')))
                    {
                        if punct(&sig, open) == Some('{') {
                            let close = match_delim(&sig, open, '{', '}').unwrap_or(sig.len() - 1);
                            owners.push((Some(name), close));
                            i = open + 1;
                            continue;
                        }
                    }
                }
            }
            Some("fn") => {
                let owner = owners.last().and_then(|(o, _)| o.clone());
                if let Some(next) = parse_fn(&sig, &test, i, owner, &mut out) {
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Fold the contiguous block of comment-only lines directly above
    // each function header into the header span, so stacked directive
    // comments (`// lint: allow(..)` over `// audit: allow(..)`) all
    // count as fn-level regardless of order.
    let code_lines: std::collections::BTreeSet<usize> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, Tok::Comment(_)))
        .map(|t| t.line)
        .collect();
    let comment_only: std::collections::BTreeSet<usize> = tokens
        .iter()
        .filter(|t| matches!(t.kind, Tok::Comment(_)))
        .map(|t| t.line)
        .filter(|l| !code_lines.contains(l))
        .collect();
    for f in &mut out.fns {
        while f.header_line > 1 && comment_only.contains(&(f.header_line - 1)) {
            f.header_line -= 1;
        }
    }
    // Same skip, downward, for site allows: the covered line is the
    // first code line at or below the comment.
    for a in &mut out.allows {
        while comment_only.contains(&a.anchor) {
            a.anchor += 1;
        }
    }
    out
}

/// Parses a `use` declaration starting at `i`; returns the index past
/// its `;`.
fn parse_use(sig: &[&Token], i: usize, in_test: bool, out: &mut ParsedFile) -> usize {
    let line = sig[i].line;
    let mut segments: Vec<String> = Vec::new();
    let mut leaves: Vec<String> = Vec::new();
    let mut glob = false;
    let mut prev: Option<String> = None;
    let mut pending_as = false;
    let mut j = i + 1;
    while j < sig.len() {
        match &sig[j].kind {
            Tok::Ident(s) if s == "as" => {
                pending_as = true;
                prev = None;
            }
            Tok::Ident(s) => {
                if pending_as {
                    leaves.push(s.clone());
                    pending_as = false;
                } else {
                    segments.push(s.clone());
                    prev = Some(s.clone());
                }
            }
            Tok::Punct(':') => prev = None,
            Tok::Punct('{') => prev = None,
            Tok::Punct('*') => glob = true,
            Tok::Punct(',') | Tok::Punct('}') => {
                if let Some(p) = prev.take() {
                    leaves.push(p);
                }
            }
            Tok::Punct(';') => {
                if let Some(p) = prev.take() {
                    leaves.push(p);
                }
                break;
            }
            _ => {}
        }
        j += 1;
    }
    if let Some(root) = segments.first().cloned() {
        if !in_test && root == "std" && segments.iter().any(|s| s == "thread") {
            for deny in THREAD_DENY {
                if segments.iter().any(|s| s == deny) {
                    out.thread_refs.push((line, (*deny).to_string()));
                }
            }
        }
        if !in_test && layering::rank_of(&root).is_some() && root != out.krate && root != "std" {
            out.crate_refs.push((line, root.clone()));
        }
        out.uses.push(UseDecl {
            line,
            root,
            segments,
            leaves,
            glob,
            in_test,
        });
    }
    j + 1
}

/// Parses an `impl` header starting at `i` into (owner type, body open
/// index, body close index).
fn parse_impl_header(sig: &[&Token], i: usize) -> Option<(Option<String>, usize, usize)> {
    let mut j = i + 1;
    if punct(sig, j) == Some('<') {
        j = skip_angles(sig, j)?;
    }
    let first = read_type_path(sig, &mut j);
    let owner = if ident(sig, j) == Some("for") {
        j += 1;
        loop {
            match sig.get(j).map(|t| &t.kind) {
                Some(Tok::Punct('&')) => j += 1,
                Some(Tok::Lifetime) => j += 1,
                Some(Tok::Ident(s)) if s == "mut" || s == "dyn" => j += 1,
                _ => break,
            }
        }
        read_type_path(sig, &mut j)
    } else {
        first
    };
    let open = (j..sig.len()).find(|&k| punct(sig, k) == Some('{'))?;
    let close = match_delim(sig, open, '{', '}')?;
    Some((owner, open, close))
}

/// Parses a `fn` item starting at `i` (the `fn` keyword); returns the
/// index to resume the item walk at, or `None` when this `fn` is a
/// function-pointer type rather than an item.
fn parse_fn(
    sig: &[&Token],
    test: &[bool],
    i: usize,
    owner: Option<String>,
    out: &mut ParsedFile,
) -> Option<usize> {
    let name = ident(sig, i + 1)?.to_string();
    let kw_line = sig[i].line;
    // Scan for the body `{` (or the `;` of a bodiless signature),
    // jumping over parens and brackets — an array type like
    // `[[f64; 8]; 14]` in the parameter list carries `;`s that are not
    // the end of the item.
    let mut k = i + 1;
    let (open, bodiless) = loop {
        match sig.get(k).map(|t| &t.kind) {
            None => return None,
            Some(Tok::Punct('{')) => break (k, false),
            Some(Tok::Punct(';')) => break (k, true),
            Some(Tok::Punct('(')) => k = match_delim(sig, k, '(', ')')? + 1,
            Some(Tok::Punct('[')) => k = match_delim(sig, k, '[', ']')? + 1,
            _ => k += 1,
        }
    };
    let close = if bodiless {
        open
    } else {
        match_delim(sig, open, '{', '}').unwrap_or(sig.len() - 1)
    };

    let hstart = header_start(sig, i);
    let mut item = FnItem {
        name,
        owner,
        line: kw_line,
        header_line: sig[hstart].line,
        open_line: sig[open].line,
        is_test: test[i],
        deprecated: false,
        allows_deprecated: false,
        calls: Vec::new(),
        seeds: Vec::new(),
        taints: Vec::new(),
    };
    for k in hstart..i {
        if ident(sig, k) == Some("test") && punct(sig, k.wrapping_sub(1)) == Some('[') {
            item.is_test = true;
        }
        if ident(sig, k) == Some("deprecated") {
            if punct(sig, k.wrapping_sub(1)) == Some('[') {
                item.deprecated = true;
            } else if punct(sig, k.wrapping_sub(1)) == Some('(')
                && ident(sig, k.wrapping_sub(2)) == Some("allow")
            {
                item.allows_deprecated = true;
            }
        }
    }

    if !bodiless && !item.is_test {
        scan_body(sig, test, open + 1, close, &mut item, out);
    }
    out.fns.push(item);
    Some(close + 1)
}

/// The linear body walk: calls, panic seeds, taint sources, and layer
/// references, in one pass over `open..close`.
fn scan_body(
    sig: &[&Token],
    test: &[bool],
    from: usize,
    to: usize,
    item: &mut FnItem,
    out: &mut ParsedFile,
) {
    for k in from..to {
        if test[k] {
            continue;
        }
        let line = sig[k].line;
        match &sig[k].kind {
            Tok::Punct('[') if k > 0 => {
                let indexes = match &sig[k - 1].kind {
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    Tok::Ident(s) => !INDEX_PREV_SKIP.contains(&s.as_str()),
                    _ => false,
                };
                if indexes {
                    item.seeds.push(Seed {
                        kind: SeedKind::Index,
                        what: "indexing".to_string(),
                        line,
                        on_self: false,
                    });
                }
            }
            Tok::Ident(s) => {
                let s = s.as_str();
                // `#[allow(deprecated)]` on an inner item/statement.
                if s == "deprecated"
                    && punct(sig, k.wrapping_sub(1)) == Some('(')
                    && ident(sig, k.wrapping_sub(2)) == Some("allow")
                {
                    item.allows_deprecated = true;
                    continue;
                }
                if punct(sig, k + 1) == Some('!') {
                    match s {
                        "panic" | "unreachable" | "todo" | "unimplemented" => {
                            item.seeds.push(Seed {
                                kind: SeedKind::PanicMacro,
                                what: format!("{s}!"),
                                line,
                                on_self: false,
                            });
                        }
                        "assert" | "assert_eq" | "assert_ne" => {
                            item.seeds.push(Seed {
                                kind: SeedKind::Assert,
                                what: format!("{s}!"),
                                line,
                                on_self: false,
                            });
                        }
                        _ => {}
                    }
                    continue;
                }
                match s {
                    "Instant" if path_sep(sig, k + 1) && ident(sig, k + 3) == Some("now") => {
                        item.taints.push(TaintSrc {
                            what: "Instant::now",
                            line,
                        });
                    }
                    "SystemTime" => item.taints.push(TaintSrc {
                        what: "SystemTime",
                        line,
                    }),
                    "RandomState" => item.taints.push(TaintSrc {
                        what: "RandomState",
                        line,
                    }),
                    "thread" if path_sep(sig, k + 1) => {
                        if let Some(api) = ident(sig, k + 3) {
                            if api == "current" {
                                item.taints.push(TaintSrc {
                                    what: "thread::current",
                                    line,
                                });
                            }
                            if THREAD_DENY.contains(&api) {
                                out.thread_refs.push((line, api.to_string()));
                            }
                        }
                    }
                    _ => {}
                }
                if path_sep(sig, k + 1)
                    && s != out.krate
                    && layering::rank_of(s).is_some()
                    && s != "std"
                {
                    out.crate_refs.push((line, s.to_string()));
                }
                if punct(sig, k + 1) != Some('(') {
                    continue;
                }
                if k > 0 && ident(sig, k - 1) == Some("fn") {
                    continue; // a nested fn's own definition
                }
                let lower = s.starts_with(|c: char| c.is_ascii_lowercase() || c == '_');
                if punct(sig, k.wrapping_sub(1)) == Some('.') {
                    if s == "unwrap" && punct(sig, k + 2) == Some(')') {
                        item.seeds.push(Seed {
                            kind: SeedKind::Unwrap,
                            what: "unwrap".to_string(),
                            line,
                            on_self: false,
                        });
                        continue;
                    }
                    if s == "expect" {
                        let on_self = ident(sig, k.wrapping_sub(2)) == Some("self");
                        if on_self {
                            // May be a workspace method (jsonio's
                            // `Parser::expect`); record the call and let
                            // resolution drop the seed if it lands.
                            item.calls.push(Call {
                                kind: CallKind::Method,
                                path: Vec::new(),
                                name: "expect".to_string(),
                                line,
                            });
                        }
                        item.seeds.push(Seed {
                            kind: SeedKind::Expect,
                            what: "expect".to_string(),
                            line,
                            on_self,
                        });
                        continue;
                    }
                    if lower {
                        item.calls.push(Call {
                            kind: CallKind::Method,
                            path: Vec::new(),
                            name: s.to_string(),
                            line,
                        });
                    }
                } else if k >= 2 && path_sep(sig, k - 2) {
                    let mut path = Vec::new();
                    let mut m = k;
                    while m >= 3 && path_sep(sig, m - 2) {
                        match ident(sig, m - 3) {
                            Some(seg) => {
                                path.push(seg.to_string());
                                m -= 3;
                            }
                            None => {
                                // turbofish / qualified-path prefix —
                                // treat as external rather than guess
                                path.clear();
                                break;
                            }
                        }
                    }
                    path.reverse();
                    if !path.is_empty() && lower {
                        item.calls.push(Call {
                            kind: CallKind::Path,
                            path,
                            name: s.to_string(),
                            line,
                        });
                    }
                } else if lower && !FREE_CALL_SKIP.contains(&s) {
                    item.calls.push(Call {
                        kind: CallKind::Free,
                        path: Vec::new(),
                        name: s.to_string(),
                        line,
                    });
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        parse_source("crates/ess/src/x.rs", "ess", src)
    }

    #[test]
    fn fn_items_and_owners() {
        let src = "impl Foo {\n    pub fn go(&self) { helper(); }\n}\nfn helper() {}\ntrait T { fn d(&self) { self.go(); } }";
        let p = parse(src);
        let names: Vec<_> = p
            .fns
            .iter()
            .map(|f| (f.owner.clone(), f.name.clone()))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("Foo".to_string()), "go".to_string()),
                (None, "helper".to_string()),
                (Some("T".to_string()), "d".to_string()),
            ]
        );
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].kind, CallKind::Free);
        assert_eq!(p.fns[2].calls[0].kind, CallKind::Method);
    }

    #[test]
    fn trait_impl_owner_is_the_type() {
        let src = "impl<T: Clone> Backend for Pool<T> where T: Send { fn run(&self) {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Pool"));
    }

    #[test]
    fn seeds_and_lookalikes() {
        let src = "fn f(xs: &[f64], o: Option<u8>) -> f64 {\n    let a = o.unwrap();\n    let b = o.unwrap_or(0);\n    let c = xs[0];\n    let d: [f64; 2] = [1.0, 2.0];\n    assert!(a > 0);\n    debug_assert!(b == 0);\n    panic!(\"no\");\n    c\n}";
        let p = parse(src);
        let kinds: Vec<_> = p.fns[0].seeds.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SeedKind::Unwrap,
                SeedKind::Index,
                SeedKind::Assert,
                SeedKind::PanicMacro
            ]
        );
    }

    #[test]
    fn self_expect_records_a_call_not_just_a_seed() {
        let src = "impl P { fn go(&mut self) { self.expect(1); } }";
        let p = parse(src);
        assert_eq!(p.fns[0].calls.len(), 1);
        assert!(p.fns[0].seeds[0].on_self);
    }

    #[test]
    fn use_decls_roots_and_leaves() {
        let src = "use ess_service::jsonio::{Json, JsonError as JE};\nuse std::thread;\nfn f() {}";
        let p = parse(src);
        assert_eq!(p.uses[0].root, "ess_service");
        assert_eq!(p.uses[0].leaves, vec!["Json", "JE"]);
        assert_eq!(p.crate_refs, vec![(1, "ess_service".to_string())]);
        assert!(p.thread_refs.is_empty()); // naming the module alone is fine
    }

    #[test]
    fn thread_refs_flag_denied_apis_only() {
        let src =
            "fn f() { std::thread::scope(|s| {}); let n = std::thread::available_parallelism(); }";
        let p = parse(src);
        assert_eq!(p.thread_refs.len(), 1);
        assert_eq!(p.thread_refs[0].1, "scope");
    }

    #[test]
    fn test_code_is_invisible() {
        let src = "#[cfg(test)]\nmod tests {\n    use ess_benches::x;\n    #[test]\n    fn t() { foo().unwrap(); }\n}";
        let p = parse(src);
        assert!(p.crate_refs.is_empty());
        assert!(p.fns[0].is_test);
        assert!(p.fns[0].seeds.is_empty());
    }

    #[test]
    fn taint_sources() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let p = parse(src);
        let whats: Vec<_> = p.fns[0].taints.iter().map(|t| t.what).collect();
        assert_eq!(whats, vec!["Instant::now", "SystemTime"]);
    }

    #[test]
    fn directive_grammar() {
        assert!(parse_audit_directive("// just a comment").is_none());
        assert!(matches!(
            parse_audit_directive("// audit: allow(panic) — bounded by construction"),
            Some(Ok((r, _))) if r == "panic"
        ));
        assert!(matches!(
            parse_audit_directive("// audit: allow(panic)"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_audit_directive("// audit: allow(nope) — x"),
            Some(Err(_))
        ));
    }

    #[test]
    fn deprecated_flags() {
        let src = "#[deprecated(note = \"old\")]\npub fn old() {}\n#[allow(deprecated)]\nfn caller() { old(); }";
        let p = parse(src);
        assert!(p.fns[0].deprecated);
        assert!(p.fns[1].allows_deprecated);
    }
}
