//! Machine-checked crate layering: the README layer map as an asserted
//! DAG.
//!
//! The declared order assigns every workspace crate a rank; a dependency
//! edge (Cargo manifest `[dependencies]`, a cross-crate `use`, or an
//! inline `other_crate::` qualification) is legal only when it points at
//! a *strictly lower* rank. Same-rank crates are peers and may not
//! depend on each other. On top of the DAG, one ownership rule: nothing
//! outside `parworker` names the `std::thread` APIs that own threads
//! (`available_parallelism` — sizing, not owning — is exempt).

use crate::parse::ParsedFile;

/// The declared layer map, lowest first. Lib identifiers (underscored),
/// matching both manifest names (after `-` → `_`) and source paths.
pub const LAYERS: &[(&str, u32)] = &[
    ("rand", 0),
    ("parworker", 1),
    ("landscape", 1),
    ("evoalg", 2),
    ("firelib", 2),
    ("ess", 3),
    ("ess_ns", 4),
    ("ess_service", 5),
    ("ess_client", 6),
    ("ess_analysis", 6),
    ("ess_benches", 7),
];

/// Rank of a crate in the declared map, by lib identifier.
pub fn rank_of(name: &str) -> Option<u32> {
    LAYERS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, rank)| rank)
}

/// True when `from` may depend on `to`: strictly downward in the map.
pub fn edge_allowed(from: &str, to: &str) -> bool {
    match (rank_of(from), rank_of(to)) {
        (Some(f), Some(t)) => t < f,
        _ => false,
    }
}

/// Maps a workspace-relative source path to its crate's lib identifier.
pub fn crate_of_path(rel: &str) -> Option<String> {
    let rest = rel.replace('\\', "/");
    let rest = rest.strip_prefix("crates/")?;
    let dir = rest.split('/').next()?;
    Some(
        match dir {
            "core" => "ess_ns",
            "service" => "ess_service",
            "client" => "ess_client",
            "analysis" => "ess_analysis",
            "bench" => "ess_benches",
            other => other,
        }
        .to_string(),
    )
}

/// One crate manifest's `[dependencies]` entries.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Manifest path, workspace-relative.
    pub file: String,
    /// Owning crate's lib identifier.
    pub krate: String,
    /// Dependency lib identifiers with their manifest lines.
    pub deps: Vec<(String, usize)>,
}

/// Parses the `[package] name` and `[dependencies]` entries out of one
/// crate manifest. `[dev-dependencies]` are test-only and exempt, like
/// `#[cfg(test)]` code.
pub fn parse_manifest(file: &str, text: &str) -> Option<Manifest> {
    let mut krate = None;
    let mut deps = Vec::new();
    let mut section = "";
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        if section == "[package]" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start_matches([' ', '=', '"']);
                let name = rest.trim_end_matches('"');
                krate = Some(name.replace('-', "_"));
            }
        }
        if section == "[dependencies]" && !line.is_empty() && !line.starts_with('#') {
            let name: String = line
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_'))
                .collect();
            if !name.is_empty() {
                deps.push((name.replace('-', "_"), idx + 1));
            }
        }
    }
    Some(Manifest {
        file: file.to_string(),
        krate: krate?,
        deps,
    })
}

/// A raw layering violation, before allow resolution.
#[derive(Debug, Clone)]
pub struct LayerViolation {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
    /// Manifest findings have no comment syntax to carry an allow.
    pub allowable: bool,
}

/// Checks every manifest and source edge against the declared DAG plus
/// the `std::thread` ownership rule.
pub fn check(files: &[ParsedFile], manifests: &[Manifest]) -> Vec<LayerViolation> {
    let mut out = Vec::new();
    for m in manifests {
        for (dep, line) in &m.deps {
            if rank_of(dep).is_none() {
                out.push(LayerViolation {
                    file: m.file.clone(),
                    line: *line,
                    message: format!(
                        "dependency `{dep}` is not in the declared layer map — add it to \
                         LAYERS or remove it"
                    ),
                    allowable: false,
                });
            } else if !edge_allowed(&m.krate, dep) {
                out.push(LayerViolation {
                    file: m.file.clone(),
                    line: *line,
                    message: format!(
                        "`{}` depends on `{dep}`, which is not strictly below it in the \
                         layer map",
                        m.krate
                    ),
                    allowable: false,
                });
            }
        }
    }
    for f in files {
        let mut seen: Vec<(usize, &str)> = Vec::new();
        for u in &f.uses {
            if u.in_test {
                continue;
            }
            let root = u.root.as_str();
            if root != f.krate && rank_of(root).is_some() && !edge_allowed(&f.krate, root) {
                out.push(LayerViolation {
                    file: f.path.clone(),
                    line: u.line,
                    message: format!(
                        "`use {root}::…` crosses the layer map upward (`{}` may only depend \
                         on lower layers)",
                        f.krate
                    ),
                    allowable: true,
                });
                seen.push((u.line, root));
            }
        }
        for (line, root) in &f.crate_refs {
            if seen.iter().any(|(l, r)| l == line && r == root) {
                continue;
            }
            if rank_of(root).is_some() && !edge_allowed(&f.krate, root) {
                out.push(LayerViolation {
                    file: f.path.clone(),
                    line: *line,
                    message: format!(
                        "`{root}::…` crosses the layer map upward (`{}` may only depend on \
                         lower layers)",
                        f.krate
                    ),
                    allowable: true,
                });
            }
        }
        if f.krate != "parworker" {
            for (line, api) in &f.thread_refs {
                out.push(LayerViolation {
                    file: f.path.clone(),
                    line: *line,
                    message: format!(
                        "names `std::thread::{api}` outside parworker — thread ownership \
                         flows through the pool"
                    ),
                    allowable: true,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_source;

    #[test]
    fn ranks_are_a_dag_over_the_real_workspace_edges() {
        // The manifest edges the workspace actually has, spot-checked.
        for (from, to) in [
            ("landscape", "rand"),
            ("firelib", "landscape"),
            ("ess", "firelib"),
            ("ess_ns", "ess"),
            ("ess_service", "ess_ns"),
            ("ess_client", "ess_service"),
            ("ess_analysis", "ess_service"),
            ("ess_benches", "ess_analysis"),
        ] {
            assert!(edge_allowed(from, to), "{from} -> {to} should be legal");
        }
        for (from, to) in [
            ("firelib", "ess"),
            ("parworker", "landscape"), // peers
            ("ess_client", "ess_analysis"),
            ("landscape", "firelib"),
        ] {
            assert!(!edge_allowed(from, to), "{from} -> {to} should be denied");
        }
    }

    #[test]
    fn manifest_parsing() {
        let text = "[package]\nname = \"ess-service\"\n\n[dependencies]\ness.workspace = true\nrand = { path = \"../../vendor/rand\" }\n\n[dev-dependencies]\ness-benches.workspace = true\n";
        let m = parse_manifest("crates/service/Cargo.toml", text).unwrap();
        assert_eq!(m.krate, "ess_service");
        assert_eq!(m.deps.len(), 2);
        assert_eq!(m.deps[0].0, "ess");
        assert_eq!(m.deps[1].0, "rand");
    }

    #[test]
    fn upward_use_is_flagged_and_test_use_is_not() {
        let src = "use ess_service::jsonio::Json;\n#[cfg(test)]\nmod tests { use ess_service::jsonio::Json; }";
        let f = parse_source("crates/firelib/src/x.rs", "firelib", src);
        let v = check(&[f], &[]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn thread_rule_exempts_parworker() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let inside = parse_source("crates/parworker/src/x.rs", "parworker", src);
        assert!(check(&[inside], &[]).is_empty());
        let outside = parse_source("crates/ess/src/x.rs", "ess", src);
        assert_eq!(check(&[outside], &[]).len(), 1);
    }

    #[test]
    fn crate_paths() {
        assert_eq!(
            crate_of_path("crates/core/src/algorithm.rs").as_deref(),
            Some("ess_ns")
        );
        assert_eq!(
            crate_of_path("crates/firelib/src/sim.rs").as_deref(),
            Some("firelib")
        );
        assert_eq!(crate_of_path("vendor/rand/src/lib.rs"), None);
    }
}
