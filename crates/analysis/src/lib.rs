//! Correctness tooling for the workspace: the trust layer under the
//! reproduction's determinism and concurrency guarantees.
//!
//! Three prongs, surfaced through `harness lint` and
//! `harness verify-invariants`:
//!
//! - [`lint`] (on top of the [`lex`] token scanner) — a hand-rolled,
//!   offline, dependency-free source pass enforcing repo-specific rules:
//!   total float comparisons, no hash-order iteration in deterministic
//!   crates, no wall-clock reads outside bench timing, no thread spawns
//!   outside `parworker`, and no allocation inside `// lint: no_alloc`
//!   fenced hot paths — each with a justified-`allow` escape hatch and a
//!   machine-readable findings report.
//! - [`schedule`] and [`protocol`] — bounded model checking: a loom-style
//!   explorer enumerating every interleaving of small op scripts against
//!   models of the MPMC channel, the steal pool and the fusion lane
//!   guard, plus an exhaustive depth-bounded walk of the v2 session
//!   lifecycle and a conformance replay of generated request scripts
//!   through the real serve loop.
//! - [`fuzz`] and [`invariants`] — adversarial input hardening: seeded
//!   structured-mutation fuzzing of the strict JSON parser, the protocol
//!   envelopes and the serve loop, and randomized-landscape drivers for
//!   the fire kernels (finite non-negative rates, in-horizon arrivals,
//!   heap≡bucket bit-identity under arena reuse).
//! - [`audit`] (on top of the [`parse`] item parser and the
//!   [`callgraph`] resolver) — the semantic workspace auditor behind
//!   `harness audit`: the [`panics`] panic-path prover walks the call
//!   graph from declared panic-free roots and demands a justified
//!   `// audit: allow(panic)` for every reachable panic site, the
//!   [`layering`] pass machine-checks the README layer map as a DAG over
//!   manifest and `use` edges (plus `std::thread` ownership), and the
//!   [`taint`] pass proves nondeterminism sources (clocks, seeded
//!   hashing, thread identity) unreachable from the deterministic
//!   crates.
//!
//! Everything here is deterministic: same seeds, same schedules, same
//! findings — a CI failure is a local repro by construction.

pub mod audit;
pub mod callgraph;
pub mod fuzz;
pub mod invariants;
pub mod layering;
pub mod lex;
pub mod lint;
pub mod panics;
pub mod parse;
pub mod protocol;
pub mod schedule;
pub mod taint;

use ess_service::jsonio::Json;

/// Aggregate outcome of one `verify-invariants` run, rendered into
/// `reports/INVARIANTS.json`.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Concurrency scenarios explored (name, schedules, steps).
    pub concurrency: Vec<schedule::ModelRun>,
    /// Protocol walk counters.
    pub walk: protocol::WalkStats,
    /// Serve conformance replay counters.
    pub replay: protocol::ReplayStats,
    /// jsonio fuzz counters.
    pub jsonio: fuzz::FuzzStats,
    /// Envelope fuzz counters.
    pub envelopes: fuzz::FuzzStats,
    /// Serve-loop fuzz counters.
    pub serve: fuzz::FuzzStats,
    /// Random-landscape driver counters.
    pub firelib: invariants::FirelibStats,
    /// Extreme-scenario sweep counters.
    pub hostile: invariants::FirelibStats,
}

impl VerifyReport {
    /// Machine-readable rendering for the reports directory.
    pub fn to_json(&self) -> Json {
        let scenarios = self
            .concurrency
            .iter()
            .map(|r| {
                Json::obj()
                    .field("scenario", r.name)
                    .field("schedules", r.stats.schedules)
                    .field("steps", r.stats.steps)
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("tool", "harness verify-invariants")
            .field("concurrency", Json::Arr(scenarios))
            .field(
                "protocol_walk",
                Json::obj()
                    .field("depth", self.walk.depth)
                    .field("sequences", self.walk.sequences)
                    .field("states", self.walk.states),
            )
            .field(
                "conformance_replay",
                Json::obj()
                    .field("scripts", self.replay.scripts)
                    .field("requests", self.replay.requests)
                    .field("frames", self.replay.frames),
            )
            .field(
                "fuzz",
                Json::obj()
                    .field("jsonio_inputs", self.jsonio.inputs)
                    .field("jsonio_accepted", self.jsonio.accepted)
                    .field("envelope_inputs", self.envelopes.inputs)
                    .field("serve_lines", self.serve.inputs),
            )
            .field(
                "firelib",
                Json::obj()
                    .field("terrains", self.firelib.terrains)
                    .field("cells", self.firelib.cells)
                    .field("hostile_samples", self.hostile.ros_samples),
            )
    }
}

/// Effort knobs for one verification run.
#[derive(Debug, Clone, Copy)]
pub struct VerifyBudget {
    /// Protocol walk depth (exhaustive).
    pub walk_depth: usize,
    /// Sampled depth-4 conformance scripts on top of the exhaustive ≤2 set.
    pub replay_sampled: usize,
    /// jsonio fuzz inputs.
    pub jsonio_inputs: u64,
    /// Envelope fuzz inputs.
    pub envelope_inputs: u64,
    /// Hostile serve-loop lines.
    pub serve_lines: u64,
    /// Random landscapes.
    pub terrains: u64,
    /// Extreme-scenario samples.
    pub hostile_samples: u64,
}

impl VerifyBudget {
    /// The CI budget: bounded depth, capped fuzz, still exhaustive where
    /// the acceptance bar demands it (walk depth 6, all small schedules).
    pub fn quick() -> Self {
        VerifyBudget {
            walk_depth: 6,
            replay_sampled: 8,
            jsonio_inputs: 20_000,
            envelope_inputs: 10_000,
            serve_lines: 400,
            terrains: 8,
            hostile_samples: 845,
        }
    }

    /// The full budget (`harness verify-invariants` without `--quick`).
    pub fn full() -> Self {
        VerifyBudget {
            walk_depth: 7,
            replay_sampled: 32,
            jsonio_inputs: 120_000,
            envelope_inputs: 40_000,
            serve_lines: 1_000,
            terrains: 24,
            hostile_samples: 1_690,
        }
    }
}

/// Runs the whole verification suite under `budget` with a fixed fuzz
/// seed.
///
/// # Errors
/// The first violation any prong finds, as a printable description.
pub fn verify_all(seed: u64, budget: VerifyBudget) -> Result<VerifyReport, String> {
    let mut report = VerifyReport {
        concurrency: schedule::verify_concurrency(false).map_err(|v| v.to_string())?,
        ..VerifyReport::default()
    };
    report.walk = protocol::walk_protocol(budget.walk_depth)?;
    report.replay = protocol::replay_conformance(budget.replay_sampled)?;
    report.jsonio = fuzz::fuzz_jsonio(seed, budget.jsonio_inputs)?;
    report.envelopes = fuzz::fuzz_envelopes(seed ^ 0x1111, budget.envelope_inputs)?;
    report.serve = fuzz::fuzz_serve_loop(seed ^ 0x2222, budget.serve_lines)?;
    report.firelib = invariants::verify_firelib(seed ^ 0x3333, budget.terrains)?;
    report.hostile = invariants::hostile_ros_sweep(seed ^ 0x4444, budget.hostile_samples)?;
    Ok(report)
}
