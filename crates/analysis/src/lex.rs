//! A minimal Rust token scanner — just enough lexing for the lint pass.
//!
//! The lint rules match on *token sequences* (`partial_cmp` followed by a
//! call and `.unwrap`, `thread :: spawn`, …), so a character-level grep
//! would false-positive inside strings, comments and doc text. This lexer
//! classifies the source into identifiers, punctuation, literals and
//! comments with line numbers, handling the Rust constructs that trip
//! naive scanners: nested block comments, raw strings with arbitrary `#`
//! fences, byte/char literals vs lifetimes, and numeric literals with
//! embedded underscores and exponents. It deliberately does **not** parse:
//! the lint engine works on the flat token stream plus brace matching.

/// One lexed token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// The classified payload.
    pub kind: Tok,
}

/// Token classes the lint rules distinguish.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `spawn`, `HashMap`, …).
    Ident(String),
    /// A single punctuation byte (`::` arrives as two `:` tokens).
    Punct(char),
    /// Any string/char/byte literal (payload dropped — rules never match
    /// inside literals, which is the point of lexing).
    Literal,
    /// A numeric literal.
    Number,
    /// A lifetime (`'a`) — distinct from char literals.
    Lifetime,
    /// A `//…` or `/*…*/` comment, payload preserved for the
    /// `// lint: …` directives.
    Comment(String),
}

/// Lexes `src` into a flat token stream. Unterminated constructs (string
/// or block comment running to EOF) terminate the stream gracefully — the
/// lint pass runs on arbitrary fixture snippets, not only compiling code.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            let line = self.line;
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek_at(1) == Some(b'/') => {
                    let text = self.line_comment();
                    self.push(line, Tok::Comment(text));
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    let text = self.block_comment();
                    self.push(line, Tok::Comment(text));
                }
                b'"' => {
                    self.string();
                    self.push(line, Tok::Literal);
                }
                b'r' | b'b' if self.raw_or_byte_string() => {
                    self.push(line, Tok::Literal);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(line, kind);
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let ident = self.ident();
                    self.push(line, Tok::Ident(ident));
                }
                c if c.is_ascii_digit() => {
                    self.number();
                    self.push(line, Tok::Number);
                }
                c => {
                    self.pos += 1;
                    self.push(line, Tok::Punct(c as char));
                }
            }
        }
        self.out
    }

    fn push(&mut self, line: usize, kind: Tok) {
        self.out.push(Token { line, kind });
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, keeping the line counter honest.
    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        if c == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
        Some(c)
    }

    fn line_comment(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// Nested block comments, as Rust defines them.
    fn block_comment(&mut self) -> String {
        let start = self.pos;
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: stop at EOF
            }
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// A plain `"…"` string with escapes.
    fn string(&mut self) {
        self.pos += 1; // opening quote
        while let Some(c) = self.bump() {
            match c {
                b'"' => return,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `br"…"`, `b"…"`, `b'…'` and raw
    /// identifiers. Returns `true` when a literal was consumed; `false`
    /// leaves the position untouched so the caller lexes an identifier.
    fn raw_or_byte_string(&mut self) -> bool {
        let rest = &self.bytes[self.pos..];
        let (prefix_len, raw) = if rest.starts_with(b"br") {
            (2, true)
        } else if rest.starts_with(b"r#\"") || rest.starts_with(b"r\"") {
            (1, true)
        } else if rest.starts_with(b"b\"") {
            (1, false)
        } else if rest.starts_with(b"b'") {
            // Byte char literal `b'x'`.
            self.pos += 2;
            while let Some(c) = self.bump() {
                match c {
                    b'\'' => break,
                    b'\\' => {
                        self.bump();
                    }
                    _ => {}
                }
            }
            return true;
        } else {
            return false;
        };
        // Raw identifiers (`r#match`) are identifiers, not strings.
        if rest.starts_with(b"r#") && rest.get(2).is_some_and(|c| c.is_ascii_alphabetic()) {
            return false;
        }
        if raw {
            let mut cursor = self.pos + prefix_len;
            let mut fences = 0usize;
            while self.bytes.get(cursor) == Some(&b'#') {
                fences += 1;
                cursor += 1;
            }
            if self.bytes.get(cursor) != Some(&b'"') {
                return false; // `r` not followed by a string after all
            }
            self.pos = cursor + 1;
            // Scan for `"` followed by `fences` hashes.
            loop {
                match self.bump() {
                    None => return true, // unterminated
                    Some(b'"') => {
                        let close = &self.bytes[self.pos..];
                        if close.len() >= fences && close[..fences].iter().all(|&c| c == b'#') {
                            self.pos += fences;
                            return true;
                        }
                    }
                    Some(_) => {}
                }
            }
        }
        // `b"…"`: a plain string with a one-byte prefix.
        self.pos += prefix_len;
        self.string();
        true
    }

    /// Disambiguates `'a'` (char literal) from `'a` (lifetime).
    fn char_or_lifetime(&mut self) -> Tok {
        // A lifetime is `'` + ident-start + no closing quote right after.
        let first = self.peek_at(1);
        let second = self.peek_at(2);
        let is_lifetime = matches!(first, Some(c) if c.is_ascii_alphabetic() || c == b'_')
            && second != Some(b'\'');
        self.pos += 1; // the quote
        if is_lifetime {
            while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
            return Tok::Lifetime;
        }
        // Char literal: consume to the closing quote.
        while let Some(c) = self.bump() {
            match c {
                b'\'' => break,
                b'\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        Tok::Literal
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn number(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.pos += 1;
            } else if c == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                // `1.5` continues the number; `1..5` and `1.method()` stop.
                self.pos += 1;
            } else if (c == b'+' || c == b'-')
                && matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            {
                // Exponent sign in `1e-3`.
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r#"
            // thread::spawn in a comment
            let x = "thread::spawn in a string";
            /* HashMap in /* a nested */ block */
            let map = real_ident;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"spawn".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"real_ident".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"HashMap::new() "quoted" inside"#; after"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive scanner treats `'a` as an unterminated char literal and
        // swallows the rest of the file.
        let src = "fn f<'a>(x: &'a str) { spawn(); }";
        let ids = idents(src);
        assert!(ids.contains(&"spawn".to_string()));
    }

    #[test]
    fn char_literals_consume_escapes() {
        let src = r"let c = '\''; let d = '\\'; visible";
        assert!(idents(src).contains(&"visible".to_string()));
    }

    #[test]
    fn byte_and_raw_prefixes() {
        let src = r##"let a = b"HashMap"; let b2 = br#"Instant"#; let c = b'x'; tail"##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(ids.contains(&"tail".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"multi\nline\"\nb";
        let toks = lex(src);
        let b = toks
            .iter()
            .find(|t| t.kind == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b.line, 4);
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let ids = idents("let x = 1.5e-3; for i in 0..10 { use_it(i) }");
        assert!(ids.contains(&"use_it".to_string()));
    }
}
