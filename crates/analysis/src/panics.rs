//! The panic-path prover: seed panic sites, walk the call graph from
//! the declared panic-free roots, report every reachable unjustified
//! site with a witness path.
//!
//! Seed policy, by crate role:
//!
//! - **Unconditional panics** — `unwrap`, `expect`, `panic!`,
//!   `unreachable!`, `todo!`, `unimplemented!`, and workspace-qualified
//!   calls that fail to resolve — are seeds *everywhere*.
//! - **Contract guards** — `assert!`-family and postfix indexing — are
//!   seeds only in the availability boundary (`service`, `client`,
//!   `core`), where a panic kills the serve loop. In the numeric kernel
//!   crates they are the repo's deliberate guard idiom, owned by the
//!   invariant property suites and in-run oracles (`debug_assert` is
//!   never a seed anywhere).
//!
//! A site is justified by `// audit: allow(panic) — <reason>` on its
//! line, the line above, or at function level (between the first
//! attribute and the opening brace).

use crate::callgraph::Graph;
use crate::parse::SeedKind;
use std::collections::BTreeSet;

/// One declared panic-free root.
#[derive(Debug, Clone, Copy)]
pub struct RootSpec {
    /// Crate lib identifier.
    pub krate: &'static str,
    /// `impl` type, when a method.
    pub owner: Option<&'static str>,
    /// Function name.
    pub name: &'static str,
}

impl RootSpec {
    /// `Owner::name` or `name`.
    pub fn display(&self) -> String {
        match self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.to_string(),
        }
    }
}

/// The workspace's declared panic-free roots: the serve loop, every
/// scheduler drive entry point, the session step halves, and the arena
/// kernel.
pub const ROOTS: &[RootSpec] = &[
    RootSpec {
        krate: "ess_service",
        owner: None,
        name: "serve_configured",
    },
    RootSpec {
        krate: "ess_service",
        owner: Some("Scheduler"),
        name: "round",
    },
    RootSpec {
        krate: "ess_service",
        owner: Some("Scheduler"),
        name: "round_fused",
    },
    RootSpec {
        krate: "ess_service",
        owner: Some("Scheduler"),
        name: "drain_controlled",
    },
    RootSpec {
        krate: "ess_service",
        owner: Some("PredictionSession"),
        name: "plan_step",
    },
    RootSpec {
        krate: "ess_service",
        owner: Some("PredictionSession"),
        name: "complete_step",
    },
    RootSpec {
        krate: "firelib",
        owner: Some("FireSim"),
        name: "simulate_arena_kernel",
    },
];

/// True for files where the full seed set (asserts + indexing) is
/// enforced: the serve availability boundary.
pub fn full_seed_scope(file: &str) -> bool {
    let p = file.replace('\\', "/");
    ["crates/service/", "crates/client/", "crates/core/"]
        .iter()
        .any(|prefix| p.starts_with(prefix))
}

/// True when this seed counts in this file.
pub fn seed_enforced(kind: SeedKind, file: &str) -> bool {
    match kind {
        SeedKind::Unwrap | SeedKind::Expect | SeedKind::PanicMacro => true,
        SeedKind::Assert | SeedKind::Index => full_seed_scope(file),
    }
}

/// One panic-pass finding, allow-resolved.
#[derive(Debug, Clone)]
pub struct PanicFinding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
    /// Call chain from the first root that reaches the site.
    pub witness: String,
    /// Covered by a justified allow.
    pub allowed: bool,
    /// The allow's justification.
    pub reason: Option<String>,
}

/// Per-root proof outcome.
#[derive(Debug, Clone)]
pub struct RootStat {
    /// Root display name.
    pub root: String,
    /// The root resolved to a symbol (a rename would silently drop
    /// coverage otherwise).
    pub resolved: bool,
    /// Functions reachable from the root.
    pub reachable: usize,
    /// Reachable panic sites carrying a justified allow.
    pub allowed_sites: usize,
    /// Reachable panic sites with no justification — these fail.
    pub unallowed_sites: usize,
}

/// Proves the declared roots panic-free (or reports why not).
///
/// `seed_cover[sym][seed]` / `unresolved_cover[i]` carry the resolved
/// allow reason, when any — allow bookkeeping lives with the caller so
/// used/stale accounting spans all passes.
pub fn prove(
    g: &Graph,
    roots: &[RootSpec],
    seed_cover: &[Vec<Option<String>>],
    unresolved_cover: &[Option<String>],
) -> (Vec<PanicFinding>, Vec<RootStat>) {
    let mut findings = Vec::new();
    let mut stats = Vec::new();
    // (symbol, line) pairs already reported, so multi-root overlap does
    // not duplicate findings.
    let mut reported: BTreeSet<(usize, usize)> = BTreeSet::new();

    for root in roots {
        let ids = g.find(root.krate, root.owner, root.name);
        if ids.is_empty() {
            findings.push(PanicFinding {
                file: format!("crates ({})", root.krate),
                line: 0,
                message: format!(
                    "panic-free root `{}` not found in `{}` — renamed or removed? update \
                     the root list",
                    root.display(),
                    root.krate
                ),
                witness: String::new(),
                allowed: false,
                reason: None,
            });
            stats.push(RootStat {
                root: root.display(),
                resolved: false,
                reachable: 0,
                allowed_sites: 0,
                unallowed_sites: 0,
            });
            continue;
        }

        // BFS with parent chains for witnesses.
        let mut parent: Vec<Option<usize>> = vec![None; g.syms.len()];
        let mut seen = vec![false; g.syms.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &id in &ids {
            seen[id] = true;
            queue.push(id);
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for e in &g.edges[cur] {
                if !seen[e.callee] {
                    seen[e.callee] = true;
                    parent[e.callee] = Some(cur);
                    queue.push(e.callee);
                }
            }
        }

        let witness_to = |sym: usize| -> String {
            let mut chain = vec![sym];
            let mut cur = sym;
            while let Some(p) = parent[cur] {
                chain.push(p);
                cur = p;
            }
            chain.reverse();
            chain
                .iter()
                .map(|&s| g.syms[s].display())
                .collect::<Vec<_>>()
                .join(" → ")
        };

        let mut allowed_sites = 0usize;
        let mut unallowed_sites = 0usize;
        for &sym in &queue {
            let s = &g.syms[sym];
            for (si, seed) in s.seeds.iter().enumerate() {
                if !seed_enforced(seed.kind, &s.file) {
                    continue;
                }
                let cover = seed_cover[sym][si].clone();
                if cover.is_some() {
                    allowed_sites += 1;
                } else {
                    unallowed_sites += 1;
                }
                if !reported.insert((sym, seed.line)) {
                    continue;
                }
                findings.push(PanicFinding {
                    file: s.file.clone(),
                    line: seed.line,
                    message: format!(
                        "`{}` in `{}` is reachable from panic-free root `{}`",
                        seed.what,
                        s.display(),
                        root.display()
                    ),
                    witness: witness_to(sym),
                    allowed: cover.is_some(),
                    reason: cover,
                });
            }
            for (ui, u) in g.unresolved.iter().enumerate() {
                if u.caller != sym {
                    continue;
                }
                let cover = unresolved_cover[ui].clone();
                if cover.is_some() {
                    allowed_sites += 1;
                } else {
                    unallowed_sites += 1;
                }
                if !reported.insert((sym, u.line)) {
                    continue;
                }
                findings.push(PanicFinding {
                    file: s.file.clone(),
                    line: u.line,
                    message: format!(
                        "call to `{}` in `{}` does not resolve — conservatively treated as \
                         panicking (reachable from root `{}`)",
                        u.path,
                        s.display(),
                        root.display()
                    ),
                    witness: witness_to(sym),
                    allowed: cover.is_some(),
                    reason: cover,
                });
            }
        }
        stats.push(RootStat {
            root: root.display(),
            resolved: true,
            reachable: queue.len(),
            allowed_sites,
            unallowed_sites,
        });
    }
    (findings, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build;
    use crate::parse::parse_source;

    const ROOT: &[RootSpec] = &[RootSpec {
        krate: "ess_service",
        owner: Some("Scheduler"),
        name: "round",
    }];

    fn run(src: &str) -> (Vec<PanicFinding>, Vec<RootStat>) {
        let f = parse_source("crates/service/src/scheduler.rs", "ess_service", src);
        let g = build(&[f]);
        let cover: Vec<Vec<Option<String>>> =
            g.syms.iter().map(|s| vec![None; s.seeds.len()]).collect();
        let ucover = vec![None; g.unresolved.len()];
        prove(&g, ROOT, &cover, &ucover)
    }

    #[test]
    fn transitive_unwrap_is_found_with_witness() {
        let src = "impl Scheduler {\n    pub fn round(&mut self) { self.step_all(); }\n    fn step_all(&mut self) { self.next.take().unwrap(); }\n}";
        let (findings, stats) = run(src);
        assert_eq!(stats[0].unallowed_sites, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].witness,
            "Scheduler::round → Scheduler::step_all"
        );
    }

    #[test]
    fn unreachable_unwrap_is_not_a_finding() {
        let src = "impl Scheduler {\n    pub fn round(&mut self) {}\n    fn elsewhere(&mut self) { self.next.take().unwrap(); }\n}";
        let (findings, stats) = run(src);
        assert!(findings.is_empty());
        assert_eq!(stats[0].unallowed_sites, 0);
    }

    #[test]
    fn missing_root_is_itself_a_finding() {
        let src = "impl Scheduler { pub fn spin(&mut self) {} }";
        let (findings, stats) = run(src);
        assert!(!stats[0].resolved);
        assert!(findings[0].message.contains("not found"));
    }

    #[test]
    fn index_seeds_enforced_only_on_the_availability_boundary() {
        assert!(seed_enforced(
            SeedKind::Index,
            "crates/service/src/scheduler.rs"
        ));
        assert!(seed_enforced(SeedKind::Assert, "crates/client/src/lib.rs"));
        assert!(!seed_enforced(SeedKind::Index, "crates/firelib/src/sim.rs"));
        assert!(seed_enforced(SeedKind::Unwrap, "crates/firelib/src/sim.rs"));
    }
}
