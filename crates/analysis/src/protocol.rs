//! Bounded model checking of the v2 protocol session lifecycle.
//!
//! Two halves, deliberately separate:
//!
//! 1. **The abstract walk** ([`walk_protocol`]): a state machine encoding
//!    the *specified* lifecycle rules of `ess_service::serve` — sessions
//!    are admitted under one dialect and never switch, every live session
//!    steps once per scheduler round, the terminal frame lands one round
//!    after the last step, cancel removes a session without a terminal
//!    frame, restore admits a brand-new v2 session carrying the
//!    snapshot's progress, drain leaves nothing live. The walk
//!    exhaustively applies every legal operation sequence up to a depth
//!    bound and checks the lifecycle invariants (sticky terminal events,
//!    no dialect mixing, snapshot/restore closure, exactly one terminal
//!    frame per non-cancelled session) at every reachable state.
//!
//! 2. **The conformance replay** ([`replay_conformance`]): the same
//!    operation alphabet rendered into real request lines and fed through
//!    the real `serve_configured` loop on an in-memory transport, with
//!    the model predicting what the output stream must contain. This
//!    closes the gap a hand-written model always leaves: the walk proves
//!    the rules consistent, the replay proves the implementation follows
//!    them.

use ess::fitness::EvalBackend;
use ess_service::jsonio::Json;
use ess_service::policy::PolicyKind;
use ess_service::serve::serve_configured;

/// Steps every model session runs; 2 keeps the walk small while still
/// exposing the partially-advanced states snapshot/restore care about.
const TOTAL_STEPS: u32 = 2;
/// Live-session cap: bounds the branching factor without losing the
/// multi-session interleavings (two is enough to mix dialects).
const MAX_LIVE: usize = 2;
/// A session id no admission can produce.
const UNKNOWN_SID: u64 = 9999;

/// The operation alphabet of the walk (and, minus `Restore`, of the
/// replay — a replay script cannot feed a captured snapshot back in
/// through a pre-rendered input buffer; restore conformance is covered by
/// the service crate's own round-trip tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum POp {
    /// v2 `run` with `watch: true`.
    SubmitV2Watched,
    /// v2 `run` with `watch: false`.
    SubmitV2,
    /// v1 `run`.
    SubmitV1,
    /// v2 `advance` one scheduler round.
    Advance,
    /// v2 `snapshot` of the oldest live session.
    Snapshot,
    /// v2 `restore` of the held snapshot (walk only).
    Restore,
    /// v2 `cancel` of the oldest live session.
    CancelFirst,
    /// v2 `cancel` of a session id that does not exist.
    CancelUnknown,
    /// v2 `drain`.
    Drain,
}

/// One admitted session in the model.
#[derive(Debug, Clone)]
struct MSession {
    sid: u64,
    v2: bool,
    watch: bool,
    steps_done: u32,
    total_steps: u32,
    live: bool,
    cancelled: bool,
    done: bool,
}

/// One observable the model predicts the serve loop will stream.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    /// A step observable: a v1 `step` event, or a v2 `progress` frame
    /// when (and only when) the session is watched.
    Step { sid: u64, v2: bool, watch: bool },
    /// The terminal observable: a v1 `done` event or a v2 `done` frame.
    Done { sid: u64, v2: bool },
}

/// The whole protocol-visible state.
#[derive(Debug, Clone, Default)]
struct MState {
    next_sid: u64,
    sessions: Vec<MSession>,
    /// At most one held snapshot: (steps_done, total_steps) at capture.
    snap: Option<(u32, u32)>,
    audit: Vec<Ev>,
    errors: u64,
    cancels: u64,
}

impl MState {
    fn new() -> Self {
        MState {
            next_sid: 1,
            ..MState::default()
        }
    }

    fn live_count(&self) -> usize {
        self.sessions.iter().filter(|s| s.live).count()
    }

    fn first_live(&self) -> Option<u64> {
        self.sessions.iter().find(|s| s.live).map(|s| s.sid)
    }

    fn admit(&mut self, v2: bool, watch: bool, steps_done: u32, total_steps: u32) -> u64 {
        let sid = self.next_sid;
        self.next_sid += 1;
        self.sessions.push(MSession {
            sid,
            v2,
            watch,
            steps_done,
            total_steps,
            live: true,
            cancelled: false,
            done: false,
        });
        sid
    }

    /// One scheduler round: every live session steps; a session whose
    /// steps are already spent emits its terminal frame instead.
    fn round(&mut self) -> Result<(), String> {
        for s in self.sessions.iter_mut().filter(|s| s.live) {
            if s.steps_done < s.total_steps {
                s.steps_done += 1;
                self.audit.push(Ev::Step {
                    sid: s.sid,
                    v2: s.v2,
                    watch: s.watch,
                });
            } else {
                if s.done {
                    return Err(format!("session {} emitted a second terminal frame", s.sid));
                }
                s.done = true;
                s.live = false;
                self.audit.push(Ev::Done {
                    sid: s.sid,
                    v2: s.v2,
                });
            }
        }
        Ok(())
    }

    /// Which operations are legal (i.e., worth branching on) here.
    fn available(&self) -> Vec<POp> {
        let mut ops = Vec::with_capacity(9);
        if self.live_count() < MAX_LIVE {
            ops.extend([POp::SubmitV2Watched, POp::SubmitV2, POp::SubmitV1]);
        }
        ops.push(POp::Advance);
        if self.snap.is_none() && self.first_live().is_some() {
            ops.push(POp::Snapshot);
        }
        if self.snap.is_some() && self.live_count() < MAX_LIVE {
            ops.push(POp::Restore);
        }
        if self.first_live().is_some() {
            ops.push(POp::CancelFirst);
        }
        ops.push(POp::CancelUnknown);
        ops.push(POp::Drain);
        ops
    }

    fn apply(&mut self, op: POp) -> Result<(), String> {
        match op {
            POp::SubmitV2Watched => {
                self.admit(true, true, 0, TOTAL_STEPS);
            }
            POp::SubmitV2 => {
                self.admit(true, false, 0, TOTAL_STEPS);
            }
            POp::SubmitV1 => {
                self.admit(false, false, 0, TOTAL_STEPS);
            }
            POp::Advance => self.round()?,
            POp::Snapshot => {
                let sid = self.first_live().ok_or("snapshot with nothing live")?;
                let s = self.sessions.iter().find(|s| s.sid == sid).unwrap();
                self.snap = Some((s.steps_done, s.total_steps));
            }
            POp::Restore => {
                let (steps_done, total_steps) =
                    self.snap.take().ok_or("restore with no snapshot")?;
                // Restore always admits under v2, regardless of the
                // snapshotted session's original dialect.
                let sid = self.admit(true, false, steps_done, total_steps);
                let s = self.sessions.iter().find(|s| s.sid == sid).unwrap();
                // Closure: the restored session has exactly the captured
                // amount of work left.
                if s.total_steps - s.steps_done != total_steps - steps_done {
                    return Err(format!("restore changed remaining work for session {sid}"));
                }
            }
            POp::CancelFirst => {
                let sid = self.first_live().ok_or("cancel with nothing live")?;
                let s = self.sessions.iter_mut().find(|s| s.sid == sid).unwrap();
                s.live = false;
                s.cancelled = true;
                self.cancels += 1;
            }
            POp::CancelUnknown => {
                // An error reply; nothing else may change. (The walk
                // asserts that by construction — no state is touched.)
                self.errors += 1;
            }
            POp::Drain => {
                let mut guard = 0;
                while self.live_count() > 0 {
                    self.round()?;
                    guard += 1;
                    if guard > 1000 {
                        return Err("drain did not terminate".to_string());
                    }
                }
            }
        }
        self.check(op)
    }

    /// The lifecycle invariants, checked after every operation.
    fn check(&self, op: POp) -> Result<(), String> {
        for s in &self.sessions {
            if s.done && s.live {
                return Err(format!("session {} both done and live", s.sid));
            }
            if s.cancelled && s.done {
                return Err(format!("cancelled session {} got a terminal frame", s.sid));
            }
            if s.steps_done > s.total_steps {
                return Err(format!("session {} overran its step budget", s.sid));
            }
            // Dialect purity + terminal stickiness over the audit stream.
            let mut seen_done = false;
            for ev in &self.audit {
                match *ev {
                    Ev::Step { sid, v2, watch } if sid == s.sid => {
                        if seen_done {
                            return Err(format!("session {sid} streamed after its terminal frame"));
                        }
                        if v2 != s.v2 || watch != s.watch {
                            return Err(format!("session {sid} mixed dialects mid-stream"));
                        }
                    }
                    Ev::Done { sid, v2 } if sid == s.sid => {
                        if seen_done {
                            return Err(format!("session {sid} got two terminal frames"));
                        }
                        if v2 != s.v2 {
                            return Err(format!("session {sid} terminal frame in wrong dialect"));
                        }
                        seen_done = true;
                    }
                    _ => {}
                }
            }
            if seen_done != s.done {
                return Err(format!("session {} done flag out of sync", s.sid));
            }
        }
        if op == POp::Drain {
            if self.live_count() != 0 {
                return Err("sessions still live after drain".to_string());
            }
            for s in &self.sessions {
                if !s.cancelled && !s.done {
                    return Err(format!(
                        "session {} neither cancelled nor terminal after drain",
                        s.sid
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Counters from an exhaustive walk.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkStats {
    /// The depth bound used.
    pub depth: usize,
    /// Complete operation sequences enumerated.
    pub sequences: u64,
    /// States visited (tree nodes, root excluded).
    pub states: u64,
}

/// Exhaustively applies every legal operation sequence up to `depth`,
/// checking the lifecycle invariants at every state.
///
/// # Errors
/// The first invariant violation, prefixed with the operation sequence
/// that reached it.
pub fn walk_protocol(depth: usize) -> Result<WalkStats, String> {
    let mut stats = WalkStats {
        depth,
        ..WalkStats::default()
    };
    let mut trace = Vec::new();
    walk(&MState::new(), depth, &mut trace, &mut stats)?;
    Ok(stats)
}

fn walk(
    state: &MState,
    remaining: usize,
    trace: &mut Vec<POp>,
    stats: &mut WalkStats,
) -> Result<(), String> {
    if remaining == 0 {
        stats.sequences += 1;
        return Ok(());
    }
    for op in state.available() {
        let mut next = state.clone();
        trace.push(op);
        next.apply(op).map_err(|e| format!("{trace:?}: {e}"))?;
        stats.states += 1;
        walk(&next, remaining - 1, trace, stats)?;
        trace.pop();
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Conformance replay against the real serve loop
// ---------------------------------------------------------------------------

/// Counters from a conformance replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Scripts driven through the real serve loop.
    pub scripts: u64,
    /// Request lines across all scripts.
    pub requests: u64,
    /// Output lines checked across all scripts.
    pub frames: u64,
}

/// Renders one model op into a request line. v2 requests use the 1-based
/// request index as their correlation id.
fn render(op: POp, id: usize, target: Option<u64>) -> String {
    const SPEC: &str = r#"{"system":"ESS","case":"meadow_small","seed":7,"replicates":1,"scale":0.05,"max_steps":2}"#;
    match op {
        POp::SubmitV2Watched => {
            format!(r#"{{"v":2,"id":{id},"kind":"run","watch":true,"spec":{SPEC}}}"#)
        }
        POp::SubmitV2 => format!(r#"{{"v":2,"id":{id},"kind":"run","watch":false,"spec":{SPEC}}}"#),
        POp::SubmitV1 => {
            r#"{"op":"run","system":"ESS","case":"meadow_small","seed":7,"replicates":1,"scale":0.05,"max_steps":2}"#
                .to_string()
        }
        POp::Advance => format!(r#"{{"v":2,"id":{id},"kind":"advance","rounds":1}}"#),
        POp::Snapshot => format!(
            r#"{{"v":2,"id":{id},"kind":"snapshot","session":{}}}"#,
            target.expect("snapshot needs a live target")
        ),
        POp::Restore => unreachable!("replay scripts never restore"),
        POp::CancelFirst => format!(
            r#"{{"v":2,"id":{id},"kind":"cancel","session":{}}}"#,
            target.expect("cancel needs a live target")
        ),
        POp::CancelUnknown => {
            format!(r#"{{"v":2,"id":{id},"kind":"cancel","session":{UNKNOWN_SID}}}"#)
        }
        POp::Drain => format!(r#"{{"v":2,"id":{id},"kind":"drain"}}"#),
    }
}

/// What the model predicts one script's output must satisfy.
#[derive(Debug, Default)]
struct Prediction {
    /// (sid, is_v2, watched, cancelled) for every admitted session.
    sessions: Vec<(u64, bool, bool, bool)>,
    /// v2 request ids that must each get exactly one reply frame.
    reply_ids: Vec<usize>,
    /// Error replies/events the script must provoke.
    errors: u64,
    cancelled: u64,
    /// Whether any v1 request line was sent (affects the EOF dialect).
    saw_v1: bool,
}

/// Runs `ops` through the model to predict observables, rendering the
/// request lines along the way.
fn predict(ops: &[POp]) -> (String, Prediction) {
    let mut state = MState::new();
    let mut lines = Vec::new();
    let mut p = Prediction::default();
    for (i, &op) in ops.iter().enumerate() {
        let id = i + 1;
        let target = state.first_live();
        lines.push(render(op, id, target));
        state.apply(op).expect("generator scripts are legal");
        match op {
            POp::SubmitV1 => p.saw_v1 = true,
            POp::CancelUnknown => p.errors += 1,
            POp::CancelFirst => p.cancelled += 1,
            _ => {}
        }
        if op != POp::SubmitV1 {
            p.reply_ids.push(id);
        }
    }
    p.sessions = state
        .sessions
        .iter()
        .map(|s| (s.sid, s.v2, s.watch, s.cancelled))
        .collect();
    (lines.join("\n") + "\n", p)
}

/// Checks one serve run's output stream against the prediction.
fn check_output(script: &str, output: &str, p: &Prediction) -> Result<u64, String> {
    let fail = |msg: String| Err(format!("script:\n{script}\noutput:\n{output}\n{msg}"));
    let mut frames = 0u64;
    // Per-sid observations: (v1_events, v2_progress, v2_done, v1_done).
    let mut replies: Vec<(u64, String)> = Vec::new();
    let mut step_dialect: Vec<(u64, bool)> = Vec::new(); // (sid, v2)
    let mut progress_sids: Vec<u64> = Vec::new();
    let mut dones: Vec<(u64, bool)> = Vec::new(); // (sid, v2)
    let mut errors = 0u64;
    for line in output.lines().filter(|l| !l.trim().is_empty()) {
        frames += 1;
        let Ok(v) = Json::parse(line) else {
            return fail(format!("unparseable output line: {line}"));
        };
        if v.get("v").is_some() {
            let kind = v.get("kind").and_then(Json::as_str).unwrap_or("");
            let sid = v.get("session").and_then(Json::as_u64);
            match kind {
                "progress" => {
                    let sid = sid.ok_or("progress frame without session")?;
                    progress_sids.push(sid);
                    step_dialect.push((sid, true));
                }
                "done" => {
                    dones.push((sid.ok_or("done frame without session")?, true));
                }
                "error" => {
                    errors += 1;
                    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
                    replies.push((id, kind.to_string()));
                }
                "accepted" | "advanced" | "snapshot" | "cancelled" | "drained" | "bye" => {
                    let id = v.get("id").and_then(Json::as_u64).unwrap_or(0);
                    replies.push((id, kind.to_string()));
                }
                other => return fail(format!("unknown v2 frame kind '{other}'")),
            }
        } else if let Some(event) = v.get("event").and_then(Json::as_str) {
            let sid = v.get("session").and_then(Json::as_u64);
            match event {
                "step" => step_dialect.push((sid.ok_or("step event without session")?, false)),
                "done" => dones.push((sid.ok_or("done event without session")?, false)),
                "error" => errors += 1,
                "accepted" | "cancelled" | "drained" | "bye" => {}
                other => return fail(format!("unknown v1 event '{other}'")),
            }
        } else {
            return fail(format!("line is neither a v2 frame nor a v1 event: {line}"));
        }
    }

    // Every v2 request got exactly one correlated reply.
    for &id in &p.reply_ids {
        let count = replies.iter().filter(|(rid, _)| *rid == id as u64).count();
        if count != 1 {
            return fail(format!("request id {id} got {count} replies, wanted 1"));
        }
    }
    // Dialect purity and watch discipline, per session.
    for &(sid, v2, watch, cancelled) in &p.sessions {
        if step_dialect.iter().any(|&(s, d)| s == sid && d != v2) {
            return fail(format!("session {sid} streamed in the wrong dialect"));
        }
        if !(v2 && watch) && progress_sids.contains(&sid) {
            return fail(format!("unwatched session {sid} got progress frames"));
        }
        let done_count = dones.iter().filter(|&&(s, _)| s == sid).count();
        if cancelled {
            if done_count != 0 {
                return fail(format!("cancelled session {sid} got a terminal frame"));
            }
        } else if done_count != 1 {
            return fail(format!(
                "session {sid} got {done_count} terminal frames, wanted exactly 1"
            ));
        }
        if let Some(&(_, d)) = dones.iter().find(|&&(s, _)| s == sid) {
            if d != v2 {
                return fail(format!("session {sid} terminal frame in wrong dialect"));
            }
        }
    }
    if errors != p.errors {
        return fail(format!("{errors} error replies, predicted {}", p.errors));
    }
    Ok(frames)
}

/// Drives generated request scripts through the real serve loop and
/// checks the output stream against the model's predictions. Scripts
/// cover every legal ≤2-op sequence exhaustively plus `sampled` seeded
/// deeper sequences (depth 4), all ending at EOF so the implied
/// drain/quit path runs every time.
///
/// # Errors
/// The first conformance mismatch, with the offending script and output.
pub fn replay_conformance(sampled: usize) -> Result<ReplayStats, String> {
    let mut stats = ReplayStats::default();
    let mut scripts: Vec<Vec<POp>> = vec![vec![]];
    // Exhaustive depth ≤ 2 over the replay alphabet (no Restore).
    let mut frontier: Vec<(MState, Vec<POp>)> = vec![(MState::new(), vec![])];
    for _ in 0..2 {
        let mut next_frontier = Vec::new();
        for (state, ops) in &frontier {
            for op in state.available() {
                if op == POp::Restore {
                    continue;
                }
                let mut ns = state.clone();
                ns.apply(op).map_err(|e| format!("generator: {e}"))?;
                let mut nops = ops.clone();
                nops.push(op);
                scripts.push(nops.clone());
                next_frontier.push((ns, nops));
            }
        }
        frontier = next_frontier;
    }
    // Seeded deeper samples: depth 4, deterministic op choice by index.
    for k in 0..sampled {
        let mut state = MState::new();
        let mut ops = Vec::new();
        let mut pick = k as u64;
        for _ in 0..4 {
            let avail: Vec<POp> = state
                .available()
                .into_iter()
                .filter(|&op| op != POp::Restore)
                .collect();
            let op = avail[(pick % avail.len() as u64) as usize];
            pick = pick
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state.apply(op).map_err(|e| format!("generator: {e}"))?;
            ops.push(op);
        }
        scripts.push(ops);
    }

    for ops in &scripts {
        let (script, prediction) = predict(ops);
        let mut output = Vec::new();
        let summary = serve_configured(
            script.as_bytes(),
            &mut output,
            EvalBackend::Serial,
            PolicyKind::RoundRobin,
            false,
        )
        .map_err(|e| format!("serve I/O on script:\n{script}\n{e}"))?;
        let output = String::from_utf8_lossy(&output);
        stats.scripts += 1;
        stats.requests += ops.len() as u64;
        stats.frames += check_output(&script, &output, &prediction)?;
        if summary.accepted != prediction.sessions.len() {
            return Err(format!(
                "script:\n{script}\nsummary accepted {} != predicted {}",
                summary.accepted,
                prediction.sessions.len()
            ));
        }
        if summary.cancelled as u64 != prediction.cancelled {
            return Err(format!(
                "script:\n{script}\nsummary cancelled {} != predicted {}",
                summary.cancelled, prediction.cancelled
            ));
        }
        if summary.errors as u64 != prediction.errors {
            return Err(format!(
                "script:\n{script}\nsummary errors {} != predicted {}",
                summary.errors, prediction.errors
            ));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_depth_5_is_clean() {
        let stats = walk_protocol(5).expect("no violations");
        assert!(stats.sequences > 10_000, "walk too small: {stats:?}");
    }

    #[test]
    fn model_catches_double_done() {
        // Force the bug by hand: a session marked not-done after its
        // terminal frame must trip the audit.
        let mut s = MState::new();
        s.admit(true, false, TOTAL_STEPS, TOTAL_STEPS);
        s.apply(POp::Advance).unwrap(); // emits the terminal frame
        s.sessions[0].done = false;
        s.sessions[0].live = true;
        let err = s.apply(POp::Advance).unwrap_err();
        assert!(err.contains("two terminal frames"), "{err}");
    }

    #[test]
    fn drain_invariant_catches_stranded_sessions() {
        let mut s = MState::new();
        s.admit(true, false, 0, TOTAL_STEPS);
        s.apply(POp::Drain).unwrap();
        // Resurrect a drained session illegally: the next drain check
        // must notice a live session remains after drain.
        s.sessions[0].live = true;
        s.sessions[0].done = false;
        let err = s.check(POp::Drain).unwrap_err();
        assert!(
            err.contains("done flag out of sync") || err.contains("still live"),
            "{err}"
        );
    }

    #[test]
    fn replay_small_sample_conforms() {
        let stats = replay_conformance(2).expect("conformance");
        assert!(stats.scripts > 20);
        assert!(stats.frames > stats.scripts);
    }
}
