//! A loom-style bounded schedule explorer for the concurrency layer.
//!
//! The real `parworker` primitives are mutex+condvar code whose failure
//! modes (lost wakeups, double-delivery, deadlock) only appear under
//! particular interleavings. This module re-expresses their *semantics*
//! as small deterministic state machines ([`Model`]) and enumerates every
//! interleaving of 2–3 virtual threads over short op scripts by DFS,
//! checking invariants at each state and at every terminal state. A
//! schedule that the OS scheduler might produce once a month is visited
//! here on every CI run.
//!
//! The models mirror the shipped implementations:
//! - [`ChannelModel`] — `parworker::channel` MPMC semantics: `send` fails
//!   only when all receivers are gone, `recv` blocks until a value or all
//!   senders are gone, values still queued when the last receiver drops
//!   are silently discarded.
//! - [`StealPoolModel`] — `parworker::steal` rounds: shared task bag,
//!   `pending` decremented before panic recording, first panic wins,
//!   panicking workers retire, the master observes the panic, clears the
//!   bag and poisons the pool.
//! - [`LaneGuardModel`] — the fusion coordinator's Drop guard: a lane
//!   thread sends `Done` even when it panics mid-batch, so the
//!   coordinator's drain loop always terminates.

/// What one virtual-thread step did. `step` must be deterministic and
/// must leave the state untouched for `Blocked` / `Finished`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// The thread took a step; the state changed.
    Progressed,
    /// The thread is waiting on another thread (condvar wait, full stop).
    Blocked,
    /// The thread has run its whole script.
    Finished,
}

/// A small concurrent system the explorer can enumerate.
pub trait Model {
    /// Cloneable snapshot of the whole system.
    type State: Clone;

    /// Display name used in violations and reports.
    fn name(&self) -> &'static str;
    /// Number of virtual threads.
    fn threads(&self) -> usize;
    /// The state before any thread runs.
    fn initial(&self) -> Self::State;
    /// Runs one atomic step of thread `tid`.
    fn step(&self, state: &mut Self::State, tid: usize) -> Step;
    /// Invariant checked at every reachable state.
    fn check(&self, _state: &Self::State) -> Result<(), String> {
        Ok(())
    }
    /// Invariant checked at every terminal state (all threads finished).
    fn check_final(&self, state: &Self::State) -> Result<(), String>;
}

/// Exploration counters for the report.
#[derive(Debug, Default, Clone, Copy)]
pub struct ExploreStats {
    /// Complete schedules (paths to a terminal state) enumerated.
    pub schedules: u64,
    /// Individual thread steps taken across all schedules.
    pub steps: u64,
}

/// An invariant failure, with the schedule that reached it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which model failed.
    pub model: String,
    /// What went wrong.
    pub message: String,
    /// The thread-id sequence that reproduces it.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} (schedule {:?})",
            self.model, self.message, self.schedule
        )
    }
}

/// Runaway guard: no scenario in this suite needs more than this many
/// steps; hitting it means a model bug, reported as a violation rather
/// than an OOM.
const STEP_BUDGET: u64 = 50_000_000;

/// Exhaustively explores every interleaving of `m`'s threads.
///
/// # Errors
/// The first [`Violation`] found: a failed `check`/`check_final`, a
/// deadlock (some thread blocked, none runnable), or a blown step budget.
pub fn explore<M: Model>(m: &M) -> Result<ExploreStats, Violation> {
    let mut stats = ExploreStats::default();
    let mut trace = Vec::new();
    dfs(m, &m.initial(), &mut trace, &mut stats)?;
    Ok(stats)
}

fn dfs<M: Model>(
    m: &M,
    state: &M::State,
    trace: &mut Vec<usize>,
    stats: &mut ExploreStats,
) -> Result<(), Violation> {
    let violation = |message: String, trace: &[usize]| Violation {
        model: m.name().to_string(),
        message,
        schedule: trace.to_vec(),
    };
    m.check(state).map_err(|e| violation(e, trace))?;
    let mut progressed = false;
    let mut blocked = false;
    let mut finished = 0usize;
    for tid in 0..m.threads() {
        let mut next = state.clone();
        match m.step(&mut next, tid) {
            Step::Progressed => {
                progressed = true;
                stats.steps += 1;
                if stats.steps > STEP_BUDGET {
                    return Err(violation("step budget exceeded".to_string(), trace));
                }
                trace.push(tid);
                dfs(m, &next, trace, stats)?;
                trace.pop();
            }
            Step::Blocked => blocked = true,
            Step::Finished => finished += 1,
        }
    }
    if finished == m.threads() {
        stats.schedules += 1;
        m.check_final(state).map_err(|e| violation(e, trace))?;
    } else if !progressed && blocked {
        return Err(violation(
            "deadlock: unfinished threads and none runnable".to_string(),
            trace,
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// MPMC channel model
// ---------------------------------------------------------------------------

/// One scripted channel operation. Thread scripts must end sender/receiver
/// roles with an explicit `Drop*` op — that models the scope-end `Drop`
/// the real code relies on, and without it a peer `Recv` would report a
/// false deadlock.
#[derive(Debug, Clone, Copy)]
pub enum ChanOp {
    /// `tx.send(v)` — fails (but does not block) when no receivers remain.
    Send(u32),
    /// Drop this thread's sender handle.
    DropSender,
    /// `rx.recv()` — blocks until a value arrives or all senders are gone.
    Recv,
    /// Drop this thread's receiver handle.
    DropReceiver,
}

/// The MPMC channel under a fixed set of per-thread scripts.
pub struct ChannelModel {
    /// One op script per virtual thread.
    pub scripts: Vec<Vec<ChanOp>>,
    /// Display name for the scenario.
    pub scenario: &'static str,
}

/// Snapshot of the channel plus the observations the invariants need.
#[derive(Debug, Clone)]
pub struct ChanState {
    pc: Vec<usize>,
    queue: std::collections::VecDeque<u32>,
    senders: usize,
    receivers: usize,
    sent_ok: Vec<u32>,
    send_err: Vec<u32>,
    received: Vec<Vec<u32>>,
    recv_err: Vec<usize>,
}

impl ChannelModel {
    fn count_role(&self, pick: fn(&ChanOp) -> bool) -> usize {
        self.scripts.iter().filter(|s| s.iter().any(&pick)).count()
    }
}

impl Model for ChannelModel {
    type State = ChanState;

    fn name(&self) -> &'static str {
        self.scenario
    }

    fn threads(&self) -> usize {
        self.scripts.len()
    }

    fn initial(&self) -> ChanState {
        ChanState {
            pc: vec![0; self.scripts.len()],
            queue: std::collections::VecDeque::new(),
            senders: self.count_role(|op| matches!(op, ChanOp::DropSender)),
            receivers: self.count_role(|op| matches!(op, ChanOp::DropReceiver)),
            sent_ok: Vec::new(),
            send_err: Vec::new(),
            received: vec![Vec::new(); self.scripts.len()],
            recv_err: vec![0; self.scripts.len()],
        }
    }

    fn step(&self, s: &mut ChanState, tid: usize) -> Step {
        let script = &self.scripts[tid];
        let Some(op) = script.get(s.pc[tid]) else {
            return Step::Finished;
        };
        match *op {
            ChanOp::Send(v) => {
                if s.receivers == 0 {
                    s.send_err.push(v);
                } else {
                    s.queue.push_back(v);
                    s.sent_ok.push(v);
                }
            }
            ChanOp::DropSender => s.senders -= 1,
            ChanOp::Recv => {
                if let Some(v) = s.queue.pop_front() {
                    s.received[tid].push(v);
                } else if s.senders == 0 {
                    s.recv_err[tid] += 1;
                } else {
                    return Step::Blocked;
                }
            }
            ChanOp::DropReceiver => s.receivers -= 1,
        }
        s.pc[tid] += 1;
        Step::Progressed
    }

    fn check(&self, s: &ChanState) -> Result<(), String> {
        // No value is ever delivered twice, at any point in any schedule.
        let mut seen = Vec::new();
        for per_thread in &s.received {
            for v in per_thread {
                if seen.contains(v) {
                    return Err(format!("value {v} received twice"));
                }
                seen.push(*v);
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &ChanState) -> Result<(), String> {
        // Conservation: everything successfully sent was either received
        // or still sits in the queue (discarded with the channel).
        let mut outstanding: Vec<u32> = s.sent_ok.clone();
        for per_thread in &s.received {
            for v in per_thread {
                let Some(at) = outstanding.iter().position(|o| o == v) else {
                    return Err(format!("received {v} which was never sent"));
                };
                outstanding.swap_remove(at);
            }
        }
        let mut leftover: Vec<u32> = s.queue.iter().copied().collect();
        outstanding.sort_unstable();
        leftover.sort_unstable();
        if outstanding != leftover {
            return Err(format!(
                "lost values: sent-but-unreceived {outstanding:?} != queued {leftover:?}"
            ));
        }
        // Per-producer FIFO: each consumer sees any one producer's values
        // in send order (values encode producer*100 + seq).
        for (tid, per_thread) in s.received.iter().enumerate() {
            for producer in 0..self.scripts.len() as u32 {
                let seq: Vec<u32> = per_thread
                    .iter()
                    .filter(|v| **v / 100 == producer)
                    .copied()
                    .collect();
                if seq.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(format!(
                        "consumer {tid} saw producer {producer} out of order: {seq:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// StealPool model
// ---------------------------------------------------------------------------

/// The StealPool's publish/execute/wait round with optional task panics.
/// Thread 0 is the master; threads `1..=workers` are workers.
pub struct StealPoolModel {
    /// Number of worker threads.
    pub workers: usize,
    /// `tasks[slot]` is `true` when that task panics during execution.
    pub tasks: Vec<bool>,
    /// Display name for the scenario.
    pub scenario: &'static str,
}

/// Master progress through its script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MasterPc {
    Publish,
    Wait,
    Shutdown,
    Done,
}

/// Snapshot of one pool round.
#[derive(Debug, Clone)]
pub struct StealState {
    master: MasterPc,
    bag: std::collections::VecDeque<u32>,
    pending: usize,
    panic: Option<u32>,
    shutdown: bool,
    poisoned: bool,
    held: Vec<Option<u32>>,
    retired: Vec<bool>,
    completed: Vec<u32>,
}

impl Model for StealPoolModel {
    type State = StealState;

    fn name(&self) -> &'static str {
        self.scenario
    }

    fn threads(&self) -> usize {
        self.workers + 1
    }

    fn initial(&self) -> StealState {
        StealState {
            master: MasterPc::Publish,
            bag: std::collections::VecDeque::new(),
            pending: 0,
            panic: None,
            shutdown: false,
            poisoned: false,
            held: vec![None; self.workers],
            retired: vec![false; self.workers],
            completed: Vec::new(),
        }
    }

    fn step(&self, s: &mut StealState, tid: usize) -> Step {
        if tid == 0 {
            return match s.master {
                MasterPc::Publish => {
                    s.bag = (0..self.tasks.len() as u32).collect();
                    s.pending = self.tasks.len();
                    s.master = MasterPc::Wait;
                    Step::Progressed
                }
                MasterPc::Wait => {
                    // Mirrors the impl: the wait predicate is
                    // `panic.is_some() || pending == 0`, panic wins.
                    if s.panic.is_some() {
                        s.bag.clear();
                        s.poisoned = true;
                        s.master = MasterPc::Shutdown;
                        Step::Progressed
                    } else if s.pending == 0 {
                        s.master = MasterPc::Shutdown;
                        Step::Progressed
                    } else {
                        Step::Blocked
                    }
                }
                MasterPc::Shutdown => {
                    s.shutdown = true;
                    s.master = MasterPc::Done;
                    Step::Progressed
                }
                MasterPc::Done => Step::Finished,
            };
        }
        let w = tid - 1;
        if let Some(slot) = s.held[w].take() {
            // Execute the held task. The impl decrements `pending` before
            // recording a panic, and only the first panic is kept.
            s.pending -= 1;
            if self.tasks[slot as usize] {
                s.panic.get_or_insert(slot);
                s.retired[w] = true;
            } else {
                s.completed.push(slot);
            }
            return Step::Progressed;
        }
        if s.retired[w] {
            return Step::Finished;
        }
        if let Some(slot) = s.bag.pop_front() {
            s.held[w] = Some(slot);
            return Step::Progressed;
        }
        if s.shutdown {
            return Step::Finished;
        }
        Step::Blocked
    }

    fn check(&self, s: &StealState) -> Result<(), String> {
        let mut seen = Vec::new();
        for slot in &s.completed {
            if seen.contains(slot) {
                return Err(format!("task {slot} completed twice"));
            }
            seen.push(*slot);
        }
        Ok(())
    }

    fn check_final(&self, s: &StealState) -> Result<(), String> {
        let any_panic = self.tasks.iter().any(|p| *p);
        if !any_panic {
            if s.completed.len() != self.tasks.len() {
                return Err(format!(
                    "lost tasks: {} of {} completed",
                    s.completed.len(),
                    self.tasks.len()
                ));
            }
            if s.pending != 0 {
                return Err(format!("pending {} after a clean round", s.pending));
            }
            if s.poisoned {
                return Err("pool poisoned without a panic".to_string());
            }
            return Ok(());
        }
        if !s.poisoned {
            return Err("task panicked but the master never observed it".to_string());
        }
        for (slot, panics) in self.tasks.iter().enumerate() {
            if *panics && s.completed.contains(&(slot as u32)) {
                return Err(format!("panicking task {slot} reported as completed"));
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Fusion lane-guard model
// ---------------------------------------------------------------------------

/// One scripted lane op for [`LaneGuardModel`].
#[derive(Debug, Clone, Copy)]
pub enum LaneOp {
    /// Send one scored batch to the coordinator.
    Batch(u32),
    /// Finish cleanly — the guard drops and sends `Done`.
    Finish,
    /// Panic mid-lane — the guard *still* drops and sends `Done`.
    Panic,
}

/// The fusion coordinator with `lanes.len()` lane threads. Thread 0 is
/// the coordinator; it drains batches until every lane has delivered its
/// `Done` marker.
pub struct LaneGuardModel {
    /// Per-lane scripts; each must end with `Finish` or `Panic`.
    pub lanes: Vec<Vec<LaneOp>>,
    /// Display name for the scenario.
    pub scenario: &'static str,
}

/// A coordinator-queue message.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LaneMsg {
    Batch(u32),
    Done,
}

/// Snapshot of the fused scoring round.
#[derive(Debug, Clone)]
pub struct LaneState {
    pc: Vec<usize>,
    queue: std::collections::VecDeque<LaneMsg>,
    done_seen: usize,
    scored: Vec<u32>,
    sent: Vec<u32>,
}

impl Model for LaneGuardModel {
    type State = LaneState;

    fn name(&self) -> &'static str {
        self.scenario
    }

    fn threads(&self) -> usize {
        self.lanes.len() + 1
    }

    fn initial(&self) -> LaneState {
        LaneState {
            pc: vec![0; self.lanes.len()],
            queue: std::collections::VecDeque::new(),
            done_seen: 0,
            scored: Vec::new(),
            sent: Vec::new(),
        }
    }

    fn step(&self, s: &mut LaneState, tid: usize) -> Step {
        if tid == 0 {
            if s.done_seen == self.lanes.len() {
                return Step::Finished;
            }
            let Some(msg) = s.queue.pop_front() else {
                return Step::Blocked;
            };
            match msg {
                LaneMsg::Batch(id) => s.scored.push(id),
                LaneMsg::Done => s.done_seen += 1,
            }
            return Step::Progressed;
        }
        let lane = tid - 1;
        let Some(op) = self.lanes[lane].get(s.pc[lane]) else {
            return Step::Finished;
        };
        match *op {
            LaneOp::Batch(id) => {
                s.queue.push_back(LaneMsg::Batch(id));
                s.sent.push(id);
                s.pc[lane] += 1;
            }
            LaneOp::Finish | LaneOp::Panic => {
                // Either way the Drop guard fires: Done is delivered and
                // any ops after a panic never run.
                s.queue.push_back(LaneMsg::Done);
                s.pc[lane] = self.lanes[lane].len();
            }
        }
        Step::Progressed
    }

    fn check_final(&self, s: &LaneState) -> Result<(), String> {
        if s.done_seen != self.lanes.len() {
            return Err(format!(
                "coordinator saw {} Done markers for {} lanes",
                s.done_seen,
                self.lanes.len()
            ));
        }
        let mut scored = s.scored.clone();
        let mut sent = s.sent.clone();
        scored.sort_unstable();
        sent.sort_unstable();
        if scored != sent {
            return Err(format!("scored {scored:?} != sent {sent:?}"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// The scenario suite
// ---------------------------------------------------------------------------

/// One explored scenario's counters, for the report.
#[derive(Debug, Clone)]
pub struct ModelRun {
    /// Scenario name.
    pub name: &'static str,
    /// Counters from the exhaustive exploration.
    pub stats: ExploreStats,
}

/// Explores every concurrency scenario in the suite. `quick` currently
/// runs the same set — the whole suite is sub-second — but is plumbed so
/// CI and the full harness share one entry point.
///
/// # Errors
/// The first [`Violation`] any scenario finds.
pub fn verify_concurrency(_quick: bool) -> Result<Vec<ModelRun>, Violation> {
    use ChanOp::{DropReceiver, DropSender, Recv, Send};
    let mut runs = Vec::new();
    let mut run =
        |name: &'static str, stats: Result<ExploreStats, Violation>| -> Result<(), Violation> {
            runs.push(ModelRun {
                name,
                stats: stats?,
            });
            Ok(())
        };

    // Channel, 2 threads, ≤4 ops each: the producer/consumer pair with a
    // trailing recv that must observe the hangup error, never a deadlock.
    run(
        "channel/1p1c-hangup",
        explore(&ChannelModel {
            scenario: "channel/1p1c-hangup",
            scripts: vec![
                vec![Send(101), Send(102), Send(103), DropSender],
                vec![Recv, Recv, Recv, Recv, DropReceiver],
            ],
        }),
    )?;

    // Channel, 3 threads: two producers racing into one consumer.
    run(
        "channel/2p1c",
        explore(&ChannelModel {
            scenario: "channel/2p1c",
            scripts: vec![
                vec![Send(101), Send(102), DropSender],
                vec![Send(201), Send(202), DropSender],
                vec![Recv, Recv, Recv, Recv, Recv, DropReceiver],
            ],
        }),
    )?;

    // Channel, 3 threads: one producer, two consumers splitting an odd
    // number of values — the loser must get the hangup error, not block.
    run(
        "channel/1p2c",
        explore(&ChannelModel {
            scenario: "channel/1p2c",
            scripts: vec![
                vec![Send(101), Send(102), Send(103), DropSender],
                vec![Recv, Recv, DropReceiver],
                vec![Recv, Recv, DropReceiver],
            ],
        }),
    )?;

    // Channel, 2 threads: the receiver drops first in some schedules —
    // sends must fail cleanly and queued values may be discarded.
    run(
        "channel/receiver-drops-first",
        explore(&ChannelModel {
            scenario: "channel/receiver-drops-first",
            scripts: vec![vec![Send(101), Send(102), DropSender], vec![DropReceiver]],
        }),
    )?;

    // StealPool, clean round: 2 workers, 4 tasks, every task completes
    // exactly once and the master's wait terminates.
    run(
        "steal/clean-round",
        explore(&StealPoolModel {
            scenario: "steal/clean-round",
            workers: 2,
            tasks: vec![false, false, false, false],
        }),
    )?;

    // StealPool, panic round: task 1 panics; the master must observe the
    // poison, the round must not deadlock, nothing completes twice.
    run(
        "steal/panic-round",
        explore(&StealPoolModel {
            scenario: "steal/panic-round",
            workers: 2,
            tasks: vec![false, true, false],
        }),
    )?;

    // StealPool, single worker with a panic: the retiring worker must not
    // strand the master.
    run(
        "steal/1-worker-panic",
        explore(&StealPoolModel {
            scenario: "steal/1-worker-panic",
            workers: 1,
            tasks: vec![true, false],
        }),
    )?;

    // Lane guard, clean: both lanes deliver batches then Done.
    run(
        "fusion/lanes-clean",
        explore(&LaneGuardModel {
            scenario: "fusion/lanes-clean",
            lanes: vec![
                vec![LaneOp::Batch(1), LaneOp::Batch(2), LaneOp::Finish],
                vec![LaneOp::Batch(3), LaneOp::Batch(4), LaneOp::Finish],
            ],
        }),
    )?;

    // Lane guard, panic: lane 1 dies after one batch — the Drop guard's
    // Done must still arrive or the coordinator drains forever.
    run(
        "fusion/lane-panics",
        explore(&LaneGuardModel {
            scenario: "fusion/lane-panics",
            lanes: vec![
                vec![LaneOp::Batch(1), LaneOp::Panic, LaneOp::Batch(2)],
                vec![LaneOp::Batch(3), LaneOp::Finish],
            ],
        }),
    )?;

    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_violation_free() {
        let runs = verify_concurrency(true).expect("no violations");
        assert_eq!(runs.len(), 9);
        for r in &runs {
            assert!(r.stats.schedules > 0, "{} explored nothing", r.name);
        }
    }

    #[test]
    fn explorer_detects_deadlock() {
        // A consumer with no producer and no hangup: classic lost-wakeup
        // shape. The explorer must call it out, not hang.
        let m = ChannelModel {
            scenario: "test/deadlock",
            scripts: vec![
                vec![ChanOp::Recv, ChanOp::DropReceiver],
                // A sender that never sends and never drops cleanly is
                // not expressible; emulate by a second consumer holding
                // the sender count open via an artificial script: use a
                // producer that blocks forever by receiving.
                vec![ChanOp::Send(1), ChanOp::Recv, ChanOp::DropSender],
            ],
        };
        let err = explore(&m).unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
    }

    #[test]
    fn explorer_detects_double_delivery() {
        // A deliberately broken channel: recv peeks instead of popping.
        struct Broken;
        #[derive(Clone)]
        struct S {
            pc: Vec<usize>,
            queue: Vec<u32>,
            got: Vec<u32>,
        }
        impl Model for Broken {
            type State = S;
            fn name(&self) -> &'static str {
                "test/broken"
            }
            fn threads(&self) -> usize {
                2
            }
            fn initial(&self) -> S {
                S {
                    pc: vec![0; 2],
                    queue: vec![7],
                    got: Vec::new(),
                }
            }
            fn step(&self, s: &mut S, tid: usize) -> Step {
                if s.pc[tid] >= 1 {
                    return Step::Finished;
                }
                if let Some(v) = s.queue.first().copied() {
                    s.got.push(v); // bug: no pop
                }
                s.pc[tid] += 1;
                Step::Progressed
            }
            fn check_final(&self, s: &S) -> Result<(), String> {
                if s.got.len() > 1 {
                    return Err(format!("value delivered {} times", s.got.len()));
                }
                Ok(())
            }
        }
        let err = explore(&Broken).unwrap_err();
        assert!(err.message.contains("delivered"), "{err}");
        assert_eq!(err.schedule.len(), 2);
    }

    #[test]
    fn steal_pool_counts_match_hand_enumeration() {
        // 1 worker, 1 task: publish → take → execute → (wait) → shutdown
        // → worker sees shutdown. Exactly one schedule modulo the
        // blocked-master reorderings the explorer prunes.
        let stats = explore(&StealPoolModel {
            scenario: "test/tiny",
            workers: 1,
            tasks: vec![false],
        })
        .unwrap();
        assert_eq!(stats.schedules, 1);
    }
}
