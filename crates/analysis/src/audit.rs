//! The semantic audit driver: parse the workspace once, build the call
//! graph, run the three passes (panic-path prover, layering DAG,
//! determinism taint) plus the dead-API sweep, and aggregate one
//! machine-readable report (`reports/AUDIT.json`, written by `harness
//! audit`).
//!
//! Allow bookkeeping is centralized here so a `// audit: allow(..)`
//! that suppresses nothing in *any* pass is reported stale, exactly
//! like the lint pass's annotations.

use crate::callgraph::{self, Graph};
use crate::layering::{self, Manifest};
use crate::lint::{collect_rs, find_workspace_root};
use crate::panics::{self, seed_enforced, RootSpec, RootStat};
use crate::parse::{parse_source, ParsedFile};
use crate::taint;
use ess_service::jsonio::Json;
use std::fs;
use std::io;
use std::path::Path;

/// Pass/rule identifiers, used in findings and in the allow grammar.
pub const PANIC: &str = "panic";
/// The layering pass (cross-crate edges + `std::thread` ownership).
pub const LAYER: &str = "layer";
/// The determinism-taint pass.
pub const TAINT: &str = "taint";
/// The dead-API sweep (deprecated items with no internal callers).
pub const DEAD_API: &str = "dead-api";
/// A malformed `audit:` directive.
pub const INVALID_ALLOW: &str = "invalid-allow";
/// An `audit: allow` that suppressed nothing in any pass.
pub const UNUSED_ALLOW: &str = "unused-allow";

/// One audit finding, allowed or not.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// Producing pass (`panic` / `layer` / `taint` / `dead-api` /
    /// `meta`).
    pub pass: &'static str,
    /// Rule identifier.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for workspace-level findings).
    pub line: usize,
    /// Description.
    pub message: String,
    /// Call-chain evidence, when the pass produces one.
    pub witness: Option<String>,
    /// Covered by a justified allow.
    pub allowed: bool,
    /// The allow's justification.
    pub reason: Option<String>,
}

/// The aggregate audit outcome.
#[derive(Debug, Default)]
pub struct AuditReport {
    /// `.rs` files parsed.
    pub files_scanned: usize,
    /// Functions in the symbol table.
    pub symbols: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Per-root panic-proof stats.
    pub roots: Vec<RootStat>,
    /// Every finding, allowed ones included (the audit trail).
    pub findings: Vec<AuditFinding>,
}

impl AuditReport {
    /// Findings not covered by an allow — these fail the build.
    pub fn unallowed(&self) -> Vec<&AuditFinding> {
        self.findings.iter().filter(|f| !f.allowed).collect()
    }

    /// Machine-readable report (written to `reports/AUDIT.json`).
    pub fn to_json(&self) -> Json {
        let roots = self
            .roots
            .iter()
            .map(|r| {
                Json::obj()
                    .field("root", r.root.as_str())
                    .field("resolved", r.resolved)
                    .field("reachable_fns", r.reachable)
                    .field("allowed_sites", r.allowed_sites)
                    .field("unallowed_sites", r.unallowed_sites)
            })
            .collect::<Vec<_>>();
        let findings = self
            .findings
            .iter()
            .map(|f| {
                let mut obj = Json::obj()
                    .field("pass", f.pass)
                    .field("rule", f.rule)
                    .field("file", f.file.as_str())
                    .field("line", f.line)
                    .field("message", f.message.as_str())
                    .field("allowed", f.allowed);
                if let Some(reason) = &f.reason {
                    obj = obj.field("reason", reason.as_str());
                }
                if let Some(witness) = &f.witness {
                    obj = obj.field("witness", witness.as_str());
                }
                obj
            })
            .collect::<Vec<_>>();
        Json::obj()
            .field("tool", "harness audit")
            .field("files_scanned", self.files_scanned)
            .field("symbols", self.symbols)
            .field("call_edges", self.call_edges)
            .field("unallowed", self.unallowed().len())
            .field("roots", Json::Arr(roots))
            .field("findings", Json::Arr(findings))
    }
}

struct Slot {
    line: usize,
    anchor: usize,
    rule: String,
    reason: String,
    used: bool,
}

/// Central allow ledger: resolves site-level (finding's line or the
/// line above) and fn-level (between header and opening brace) allows,
/// and reports the stale ones afterwards.
struct Allower {
    by_file: Vec<(String, Vec<Slot>)>,
}

impl Allower {
    fn new(files: &[ParsedFile]) -> Self {
        let by_file = files
            .iter()
            .map(|f| {
                let slots = f
                    .allows
                    .iter()
                    .map(|a| Slot {
                        line: a.line,
                        anchor: a.anchor,
                        rule: a.rule.clone(),
                        reason: a.reason.clone(),
                        used: false,
                    })
                    .collect();
                (f.path.clone(), slots)
            })
            .collect();
        Allower { by_file }
    }

    fn check(
        &mut self,
        file: &str,
        rule: &str,
        line: usize,
        fn_range: Option<(usize, usize)>,
    ) -> Option<String> {
        let slots = &mut self.by_file.iter_mut().find(|(p, _)| p == file)?.1;
        // Site-level wins over fn-level, so the reason points at the
        // specific justification when both exist.
        for site_pass in [true, false] {
            for s in slots.iter_mut() {
                if s.rule != rule {
                    continue;
                }
                let hit = if site_pass {
                    // The allow's own line (trailing comment) or the
                    // first code line below it (standalone comment,
                    // skipping stacked directive comments).
                    s.line == line || s.anchor == line
                } else {
                    // The line immediately above the header counts: a
                    // fn-level allow is written as the comment directly
                    // before the item (or between its attributes).
                    fn_range.is_some_and(|(from, to)| s.line + 1 >= from && s.line <= to)
                };
                if hit {
                    s.used = true;
                    return Some(s.reason.clone());
                }
            }
        }
        None
    }

    fn unused(&self) -> Vec<AuditFinding> {
        let mut out = Vec::new();
        for (file, slots) in &self.by_file {
            for s in slots {
                if !s.used {
                    out.push(AuditFinding {
                        pass: "meta",
                        rule: UNUSED_ALLOW,
                        file: file.clone(),
                        line: s.line,
                        message: format!("audit: allow({}) suppresses nothing — remove it", s.rule),
                        witness: None,
                        allowed: false,
                        reason: None,
                    });
                }
            }
        }
        out
    }
}

fn fn_range_of(g: &Graph, sym: usize) -> Option<(usize, usize)> {
    let s = &g.syms[sym];
    Some((s.header_line, s.open_line))
}

/// Audits an explicit file set — the testable core. `sources` are
/// (workspace-relative path, contents) pairs; `manifests` likewise for
/// `Cargo.toml` files; `roots` the panic-free roots to prove.
pub fn audit_files(
    sources: &[(String, String)],
    manifests: &[(String, String)],
    roots: &[RootSpec],
) -> AuditReport {
    let parsed: Vec<ParsedFile> = sources
        .iter()
        .map(|(path, src)| {
            let krate = layering::crate_of_path(path).unwrap_or_else(|| "unknown".to_string());
            parse_source(path, &krate, src)
        })
        .collect();
    let mut allower = Allower::new(&parsed);
    let mut findings: Vec<AuditFinding> = Vec::new();

    for f in &parsed {
        for (line, message) in &f.invalid {
            findings.push(AuditFinding {
                pass: "meta",
                rule: INVALID_ALLOW,
                file: f.path.clone(),
                line: *line,
                message: message.clone(),
                witness: None,
                allowed: false,
                reason: None,
            });
        }
    }

    let g = callgraph::build(&parsed);

    // Panic-path prover.
    let seed_cover: Vec<Vec<Option<String>>> = (0..g.syms.len())
        .map(|i| {
            let s = &g.syms[i];
            let range = fn_range_of(&g, i);
            s.seeds
                .iter()
                .map(|seed| {
                    if s.is_test || !seed_enforced(seed.kind, &s.file) {
                        None
                    } else {
                        allower.check(&s.file, PANIC, seed.line, range)
                    }
                })
                .collect()
        })
        .collect();
    let unresolved_cover: Vec<Option<String>> = g
        .unresolved
        .iter()
        .map(|u| {
            let file = g.syms[u.caller].file.clone();
            let range = fn_range_of(&g, u.caller);
            allower.check(&file, PANIC, u.line, range)
        })
        .collect();
    let (panic_findings, root_stats) = panics::prove(&g, roots, &seed_cover, &unresolved_cover);
    for p in panic_findings {
        findings.push(AuditFinding {
            pass: PANIC,
            rule: PANIC,
            file: p.file,
            line: p.line,
            message: p.message,
            witness: (!p.witness.is_empty()).then_some(p.witness),
            allowed: p.allowed,
            reason: p.reason,
        });
    }

    // Layering DAG.
    let parsed_manifests: Vec<Manifest> = manifests
        .iter()
        .filter_map(|(path, text)| layering::parse_manifest(path, text))
        .collect();
    for v in layering::check(&parsed, &parsed_manifests) {
        let reason = if v.allowable {
            allower.check(&v.file, LAYER, v.line, None)
        } else {
            None
        };
        findings.push(AuditFinding {
            pass: LAYER,
            rule: LAYER,
            file: v.file,
            line: v.line,
            message: v.message,
            witness: None,
            allowed: reason.is_some(),
            reason,
        });
    }

    // Determinism taint.
    let taint_cover: Vec<Vec<Option<String>>> = (0..g.syms.len())
        .map(|i| {
            let s = &g.syms[i];
            let range = fn_range_of(&g, i);
            s.taints
                .iter()
                .map(|src| {
                    if s.is_test {
                        None
                    } else {
                        allower.check(&s.file, TAINT, src.line, range)
                    }
                })
                .collect()
        })
        .collect();
    for t in taint::analyze(&g, &taint_cover) {
        findings.push(AuditFinding {
            pass: TAINT,
            rule: TAINT,
            file: t.file,
            line: t.line,
            message: t.message,
            witness: (!t.witness.is_empty()).then_some(t.witness),
            allowed: t.allowed,
            reason: t.reason,
        });
    }

    // Dead-API sweep. Under `clippy -D warnings`, any real caller of a
    // deprecated item must carry `#[allow(deprecated)]`, so heuristic
    // method edges only count from such callers; path edges always do.
    let mut has_caller = vec![false; g.syms.len()];
    for (caller, outs) in g.edges.iter().enumerate() {
        let t = &g.syms[caller];
        if t.is_test {
            continue;
        }
        for e in outs {
            if g.syms[e.callee].deprecated && (e.direct || t.allows_deprecated) {
                has_caller[e.callee] = true;
            }
        }
    }
    for (i, s) in g.syms.iter().enumerate() {
        if s.deprecated && !s.is_test && !has_caller[i] {
            let reason = allower.check(&s.file, DEAD_API, s.line, fn_range_of(&g, i));
            findings.push(AuditFinding {
                pass: DEAD_API,
                rule: DEAD_API,
                file: s.file.clone(),
                line: s.line,
                message: format!(
                    "deprecated `{}` has no internal callers — delete it or justify keeping \
                     the shim",
                    s.display()
                ),
                witness: None,
                allowed: reason.is_some(),
                reason,
            });
        }
    }

    findings.extend(allower.unused());
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    AuditReport {
        files_scanned: parsed.len(),
        symbols: g.syms.len(),
        call_edges: g.edge_count(),
        roots: root_stats,
        findings,
    }
}

/// Audits the whole workspace under `root`: every `.rs` file (skipping
/// build output, vendored code, fixtures, reports and test trees, like
/// the lint walk) plus every `crates/*/Cargo.toml`, in path-sorted
/// order so the report is deterministic.
///
/// # Errors
/// Propagates filesystem errors from the walk or file reads.
pub fn audit_workspace(root: &Path) -> io::Result<AuditReport> {
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if layering::crate_of_path(&rel).is_none() {
            continue; // not part of a workspace crate (vendor is skipped anyway)
        }
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let mut manifests = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<_> = fs::read_dir(&crates_dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        dirs.sort();
        for dir in dirs {
            let manifest = dir.join("Cargo.toml");
            if let Ok(text) = fs::read_to_string(&manifest) {
                let rel = manifest
                    .strip_prefix(root)
                    .unwrap_or(&manifest)
                    .to_string_lossy()
                    .replace('\\', "/");
                manifests.push((rel, text));
            }
        }
    }
    Ok(audit_files(&sources, &manifests, panics::ROOTS))
}

/// Convenience for the harness: audit from the current directory's
/// workspace root.
///
/// # Errors
/// When no workspace root is found, or on filesystem errors.
pub fn audit_current_workspace() -> io::Result<AuditReport> {
    let root = find_workspace_root().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "no [workspace] Cargo.toml above cwd",
        )
    })?;
    audit_workspace(&root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, src: &str) -> AuditReport {
        audit_files(&[(path.to_string(), src.to_string())], &[], &[])
    }

    #[test]
    fn invalid_and_unused_allows_are_meta_findings() {
        let r = one(
            "crates/ess/src/x.rs",
            "// audit: allow(panic)\n// audit: allow(taint) — stale justification\nfn f() {}",
        );
        let rules: Vec<_> = r.findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules, vec![INVALID_ALLOW, UNUSED_ALLOW]);
    }

    #[test]
    fn fn_level_allow_covers_every_site_in_the_fn() {
        let src = "impl Scheduler {\n    // audit: allow(panic) — indices sanitized by planned_indices\n    pub fn round(&mut self) {\n        let a = self.live[0];\n        let b = self.live[1];\n    }\n}";
        let r = audit_files(
            &[(
                "crates/service/src/scheduler.rs".to_string(),
                src.to_string(),
            )],
            &[],
            &[RootSpec {
                krate: "ess_service",
                owner: Some("Scheduler"),
                name: "round",
            }],
        );
        let panic_findings: Vec<_> = r.findings.iter().filter(|f| f.rule == PANIC).collect();
        assert_eq!(panic_findings.len(), 2);
        assert!(panic_findings.iter().all(|f| f.allowed));
        assert!(r.unallowed().is_empty());
    }

    #[test]
    fn dead_api_flags_uncalled_deprecated_items_only() {
        let src = "#[deprecated]\npub fn old_shim() {}\n#[deprecated]\npub fn still_used() {}\nfn caller() { crate::still_used(); }";
        let r = one("crates/ess/src/x.rs", src);
        let dead: Vec<_> = r.findings.iter().filter(|f| f.rule == DEAD_API).collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("old_shim"));
    }

    #[test]
    fn report_json_shape() {
        let r = one("crates/ess/src/x.rs", "fn f() {}");
        let j = r.to_json();
        assert_eq!(j.get("tool").and_then(Json::as_str), Some("harness audit"));
        assert!(j.get("findings").is_some());
        assert!(j.get("roots").is_some());
    }
}
