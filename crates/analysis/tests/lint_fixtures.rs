//! Golden-fixture pins for every lint rule: a violating form, an
//! allowed-escape form, and a lookalike that must NOT be flagged. The
//! fixtures live under `fixtures/` (excluded from the workspace walk) and
//! their line numbers are pinned here, so any matcher drift — a rule that
//! stops firing, fires on the lookalike, or stops honouring its escape
//! hatch — fails this suite with the exact line that moved.

use ess_analysis::lint::{self, Scope};

/// (rule, line, allowed) triples actually produced for a fixture.
fn shape(src: &str, scope: Scope) -> Vec<(&'static str, usize, bool)> {
    lint::lint_source("fixture.rs", src, scope)
        .into_iter()
        .map(|f| (f.rule, f.line, f.allowed))
        .collect()
}

/// The neutral scope: every rule armed, no exemptions.
fn strict() -> Scope {
    lint::scope_for("crates/service/src/fixture.rs")
}

#[test]
fn partial_cmp_unwrap_fixture() {
    let src = include_str!("../fixtures/partial_cmp_unwrap.rs");
    assert_eq!(
        shape(src, strict()),
        vec![
            (lint::PARTIAL_CMP_UNWRAP, 6, false),
            (lint::PARTIAL_CMP_UNWRAP, 12, true),
        ]
    );
}

#[test]
fn hash_container_fixture() {
    let src = include_str!("../fixtures/hash_container.rs");
    let deterministic = lint::scope_for("crates/ess/src/fixture.rs");
    assert_eq!(
        shape(src, deterministic),
        vec![
            (lint::HASH_CONTAINER, 4, false),
            (lint::HASH_CONTAINER, 6, false),
            (lint::HASH_CONTAINER, 7, false),
            (lint::HASH_CONTAINER, 12, true),
        ]
    );
    // Outside the deterministic crates the same source is clean (the
    // stale-allow meta-finding replaces the suppressed one).
    assert_eq!(shape(src, strict()), vec![(lint::UNUSED_ALLOW, 11, false)]);
}

#[test]
fn wall_clock_fixture() {
    let src = include_str!("../fixtures/wall_clock.rs");
    assert_eq!(
        shape(src, strict()),
        vec![
            (lint::WALL_CLOCK, 7, false),
            (lint::WALL_CLOCK, 11, false),
            (lint::WALL_CLOCK, 16, true),
        ]
    );
    // Bench scope: timing-exempt, so only the now-stale allow surfaces.
    let bench = lint::scope_for("crates/bench/src/fixture.rs");
    assert_eq!(shape(src, bench), vec![(lint::UNUSED_ALLOW, 15, false)]);
}

#[test]
fn thread_spawn_fixture() {
    let src = include_str!("../fixtures/thread_spawn.rs");
    assert_eq!(
        shape(src, strict()),
        vec![
            (lint::THREAD_SPAWN, 5, false),
            (lint::THREAD_SPAWN, 11, true),
        ]
    );
    // parworker scope: spawning is that crate's job.
    let pool = lint::scope_for("crates/parworker/src/fixture.rs");
    assert_eq!(shape(src, pool), vec![(lint::UNUSED_ALLOW, 10, false)]);
}

#[test]
fn no_alloc_fixture() {
    let src = include_str!("../fixtures/no_alloc.rs");
    assert_eq!(
        shape(src, strict()),
        vec![
            (lint::NO_ALLOC, 6, false),
            (lint::NO_ALLOC, 7, false),
            (lint::NO_ALLOC, 24, true),
        ]
    );
}

#[test]
fn allow_misuse_fixture() {
    let src = include_str!("../fixtures/allow_misuse.rs");
    assert_eq!(
        shape(src, strict()),
        vec![
            (lint::UNUSED_ALLOW, 5, false),
            (lint::INVALID_ALLOW, 10, false),
            (lint::INVALID_ALLOW, 15, false),
            (lint::THREAD_SPAWN, 16, false),
        ]
    );
}

#[test]
fn workspace_ships_green() {
    // The repo's own tree must lint clean: every finding carries a
    // justified allow. This is the same invariant `harness lint` enforces
    // in CI, pinned here so `cargo test` alone catches a regression.
    let root = lint::find_workspace_root().expect("test runs inside the workspace");
    let report = lint::lint_workspace(&root).expect("workspace scan");
    let unallowed = report.unallowed();
    assert!(
        unallowed.is_empty(),
        "unallowed lint findings:\n{}",
        unallowed
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 50, "walk found too few files");
}
