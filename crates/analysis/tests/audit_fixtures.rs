//! Golden-fixture pins for the semantic audit passes. Each pass gets a
//! trio — a violating form, an allowed-escape form, and a lookalike
//! that must NOT fire — audited through [`audit::audit_files`] with
//! workspace-style paths so the real scopes (seed enforcement, layer
//! ranks, deterministic crates) apply. Any drift in a matcher, the call
//! graph, or the allow resolution fails the suite with the exact
//! finding that moved. A final pin runs the real workspace audit twice
//! and requires a green, byte-identical report.

use ess_analysis::audit::{self, AuditReport, DEAD_API, LAYER, PANIC, TAINT, UNUSED_ALLOW};
use ess_analysis::lint;
use ess_analysis::panics::RootSpec;

/// One declared root: `Scheduler::round` in the service crate, the same
/// shape the workspace proof uses.
const ROOT: &[RootSpec] = &[RootSpec {
    krate: "ess_service",
    owner: Some("Scheduler"),
    name: "round",
}];

fn audit(sources: &[(&str, &str)], roots: &[RootSpec]) -> AuditReport {
    let owned: Vec<(String, String)> = sources
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    audit::audit_files(&owned, &[], roots)
}

/// (rule, line, allowed) triples for every finding in the report.
fn shape(report: &AuditReport) -> Vec<(&str, usize, bool)> {
    report
        .findings
        .iter()
        .map(|f| (f.rule, f.line, f.allowed))
        .collect()
}

// ---------------------------------------------------------------- panic

const PANIC_VIOLATING: &str = "\
pub struct Scheduler;
impl Scheduler {
    pub fn round(&mut self) {
        helper();
    }
}
fn helper() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
}
";

const PANIC_ALLOWED: &str = "\
pub struct Scheduler;
impl Scheduler {
    pub fn round(&mut self) {
        helper();
    }
}
fn helper() {
    let v: Option<u32> = Some(1);
    // audit: allow(panic) — fixture: the value is constructed one line up
    let _ = v.unwrap();
}
";

const PANIC_LOOKALIKE: &str = "\
pub struct Scheduler;
impl Scheduler {
    pub fn round(&mut self) {
        helper();
    }
}
fn helper() {
    let v: Option<u32> = None;
    let _ = v.unwrap_or_default();
    let _ = v.unwrap_or_else(|| 7);
}
";

#[test]
fn panic_prover_flags_reachable_unwrap() {
    let r = audit(&[("crates/service/src/fx.rs", PANIC_VIOLATING)], ROOT);
    assert_eq!(shape(&r), vec![(PANIC, 9, false)]);
    assert_eq!(r.roots.len(), 1);
    assert!(r.roots[0].resolved, "root must resolve to a symbol");
    assert_eq!(r.roots[0].unallowed_sites, 1);
}

#[test]
fn panic_prover_honours_site_allow() {
    let r = audit(&[("crates/service/src/fx.rs", PANIC_ALLOWED)], ROOT);
    assert_eq!(shape(&r), vec![(PANIC, 10, true)]);
    assert!(r.unallowed().is_empty());
    assert_eq!(r.roots[0].allowed_sites, 1);
}

#[test]
fn panic_prover_ignores_unwrap_or_lookalikes() {
    let r = audit(&[("crates/service/src/fx.rs", PANIC_LOOKALIKE)], ROOT);
    assert_eq!(shape(&r), vec![]);
    assert_eq!(r.roots[0].unallowed_sites, 0);
}

/// A panic seed in a fn the root never reaches stays silent — the
/// prover is reachability-driven, not a grep.
#[test]
fn panic_prover_is_reachability_scoped() {
    let src = "\
pub struct Scheduler;
impl Scheduler {
    pub fn round(&mut self) {}
}
fn never_called() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
}
";
    let r = audit(&[("crates/service/src/fx.rs", src)], ROOT);
    assert_eq!(shape(&r), vec![]);
}

// ---------------------------------------------------------------- layer

const LAYER_VIOLATING: &str = "\
use ess::scenario::Scenario;
pub fn ignite(_s: Scenario) {}
";

const LAYER_TEST_GATED: &str = "\
pub fn ignite() {}
#[cfg(test)]
mod tests {
    use ess::scenario::Scenario;
    #[test]
    fn smoke() {
        let _ = std::mem::size_of::<Scenario>();
    }
}
";

const LAYER_DOWNWARD: &str = "\
use firelib::sim::FireSim;
pub fn evolve(_s: FireSim) {}
";

#[test]
fn layering_flags_upward_use() {
    // firelib (layer 2) importing ess (layer 3) crosses the DAG upward.
    let r = audit(&[("crates/firelib/src/fx.rs", LAYER_VIOLATING)], &[]);
    assert_eq!(shape(&r), vec![(LAYER, 1, false)]);
}

#[test]
fn layering_skips_test_gated_use() {
    let r = audit(&[("crates/firelib/src/fx.rs", LAYER_TEST_GATED)], &[]);
    assert_eq!(shape(&r), vec![]);
}

#[test]
fn layering_accepts_downward_use() {
    // ess (layer 3) importing firelib (layer 2) is the declared flow.
    let r = audit(&[("crates/ess/src/fx.rs", LAYER_DOWNWARD)], &[]);
    assert_eq!(shape(&r), vec![]);
}

#[test]
fn layering_reserves_thread_spawn_to_parworker() {
    let src = "\
pub fn run() {
    std::thread::spawn(|| {}).join().ok();
}
";
    let r = audit(&[("crates/core/src/fx.rs", src)], &[]);
    assert_eq!(shape(&r), vec![(LAYER, 2, false)]);
    // The identical source inside parworker is the one sanctioned home.
    let r = audit(&[("crates/parworker/src/fx.rs", src)], &[]);
    assert_eq!(shape(&r), vec![]);
}

// ---------------------------------------------------------------- taint

const TAINT_SOURCE: &str = "\
use std::time::Instant;
pub fn clock_probe() -> u64 {
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
";

const TAINT_SOURCE_ALLOWED: &str = "\
use std::time::Instant;
pub fn clock_probe() -> u64 {
    // audit: allow(taint) — fixture: telemetry reading, never fed back
    let t = Instant::now();
    t.elapsed().as_millis() as u64
}
";

const TAINT_SINK: &str = "\
use parworker::clock_probe;
pub fn fitness_step() -> u64 {
    clock_probe()
}
";

#[test]
fn taint_flags_clock_reachable_from_deterministic_crate() {
    let r = audit(
        &[
            ("crates/parworker/src/fx.rs", TAINT_SOURCE),
            ("crates/evoalg/src/fx.rs", TAINT_SINK),
        ],
        &[],
    );
    assert_eq!(shape(&r), vec![(TAINT, 3, false)]);
    let f = &r.findings[0];
    assert!(
        f.witness.as_deref().unwrap_or("").contains("fitness_step"),
        "witness must name the deterministic sink: {:?}",
        f.witness
    );
}

#[test]
fn taint_allow_kills_at_the_source() {
    let r = audit(
        &[
            ("crates/parworker/src/fx.rs", TAINT_SOURCE_ALLOWED),
            ("crates/evoalg/src/fx.rs", TAINT_SINK),
        ],
        &[],
    );
    // The allowed source stays on the audit trail but fails nothing.
    assert_eq!(shape(&r), vec![(TAINT, 4, true)]);
    assert!(r.unallowed().is_empty());
}

#[test]
fn taint_without_deterministic_sink_is_clean() {
    // A service-layer clock with no deterministic-crate caller: fine.
    let r = audit(&[("crates/service/src/fx.rs", TAINT_SOURCE)], &[]);
    assert_eq!(shape(&r), vec![]);
}

// -------------------------------------------------------------- dead-api

const DEAD_API_UNCALLED: &str = "\
#[deprecated]
pub fn old_entry() {}
";

const DEAD_API_CALLED: &str = "\
#[deprecated]
pub fn old_entry() {}
#[allow(deprecated)]
pub fn shim() {
    old_entry();
}
";

#[test]
fn dead_api_flags_uncalled_deprecated_fn() {
    let r = audit(&[("crates/evoalg/src/fx.rs", DEAD_API_UNCALLED)], &[]);
    assert_eq!(shape(&r), vec![(DEAD_API, 2, false)]);
}

#[test]
fn dead_api_spares_deprecated_fn_with_internal_caller() {
    let r = audit(&[("crates/evoalg/src/fx.rs", DEAD_API_CALLED)], &[]);
    assert_eq!(shape(&r), vec![]);
}

#[test]
fn dead_api_honours_allow() {
    let src = "\
// audit: allow(dead-api) — fixture: kept for downstream callers one release longer
#[deprecated]
pub fn old_entry() {}
";
    let r = audit(&[("crates/evoalg/src/fx.rs", src)], &[]);
    assert_eq!(shape(&r), vec![(DEAD_API, 3, true)]);
    assert!(r.unallowed().is_empty());
}

// ----------------------------------------------------------------- meta

#[test]
fn stale_allow_is_a_finding() {
    let src = "\
pub fn fine() {
    // audit: allow(panic) — fixture: nothing here panics any more
    let x = 1 + 1;
    let _ = x;
}
";
    let r = audit(&[("crates/service/src/fx.rs", src)], &[]);
    assert_eq!(shape(&r), vec![(UNUSED_ALLOW, 2, false)]);
}

#[test]
fn malformed_allow_is_a_finding() {
    let src = "\
pub fn fine() {
    // audit: allow(panics) — misspelled rule name
    let x = 1 + 1;
    let _ = x;
}
";
    let r = audit(&[("crates/service/src/fx.rs", src)], &[]);
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.findings[0].rule, "invalid-allow");
    assert!(!r.findings[0].allowed);
}

/// A fn-level allow above the header covers every site of its rule in
/// the body — including ones added later, which is why site-level is
/// preferred; this pins that the escape hatch works at all.
#[test]
fn fn_level_allow_covers_body_sites() {
    let src = "\
pub struct Scheduler;
impl Scheduler {
    pub fn round(&mut self) {
        helper();
    }
}
// audit: allow(panic) — fixture: both unwraps guarded by construction
fn helper() {
    let v: Option<u32> = Some(1);
    let _ = v.unwrap();
    let w: Option<u32> = Some(2);
    let _ = w.unwrap();
}
";
    let r = audit(&[("crates/service/src/fx.rs", src)], ROOT);
    assert_eq!(shape(&r), vec![(PANIC, 10, true), (PANIC, 12, true)]);
    assert!(r.unallowed().is_empty());
}

// ------------------------------------------------------------ workspace

/// The real workspace audit ships green: every finding fixed or
/// carrying a justified allow, and the run is deterministic — two
/// back-to-back audits serialize byte-identically.
#[test]
fn workspace_audit_ships_green() -> Result<(), String> {
    let root = lint::find_workspace_root().ok_or("workspace root not found")?;
    let a = audit::audit_workspace(&root).map_err(|e| e.to_string())?;
    let unallowed: Vec<String> = a
        .unallowed()
        .iter()
        .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        unallowed.is_empty(),
        "workspace audit must ship green:\n{}",
        unallowed.join("\n")
    );
    assert!(a.files_scanned > 50, "walk collapsed: {}", a.files_scanned);
    for rs in &a.roots {
        assert!(
            rs.resolved,
            "panic-free root `{}` no longer resolves",
            rs.root
        );
        assert!(rs.reachable > 0, "root `{}` reaches nothing", rs.root);
    }
    let b = audit::audit_workspace(&root).map_err(|e| e.to_string())?;
    assert_eq!(
        a.to_json().to_pretty(),
        b.to_json().to_pretty(),
        "audit report must be deterministic"
    );
    Ok(())
}
