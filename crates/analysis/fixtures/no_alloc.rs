// Golden fixture: the no-alloc fence.
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

// lint: no_alloc
fn violating(n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let doubled: Vec<f64> = out.iter().map(|x| x * 2.0).collect();
    out.extend(doubled);
    out
}

// lint: no_alloc
fn hot_loop_clean(buf: &mut Vec<f64>, n: usize) {
    // clear + push into a pre-reserved arena is the sanctioned pattern.
    buf.clear();
    for i in 0..n {
        buf.push(i as f64);
    }
}

// lint: no_alloc
fn allowed_escape() -> Vec<f64> {
    // lint: allow(no-alloc) — cold path: runs once at arena construction
    vec![0.0; 8]
}

fn lookalike_unfenced(n: usize) -> Vec<f64> {
    // No fence above this fn — allocation is fine here.
    let mut v = Vec::with_capacity(n);
    v.push(1.0);
    v
}
