// Golden fixture: the unused-allow and invalid-allow meta-rules.
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

fn stale_allow() -> u32 {
    // lint: allow(wall-clock) — nothing on the next line reads a clock
    1 + 1
}

fn unknown_rule() {
    // lint: allow(clock-wall) — the rule name is misspelled
    let _ = 2;
}

fn missing_reason() {
    // lint: allow(thread-spawn)
    let _ = std::thread::spawn(|| ());
}

fn lookalike_prose() {
    // Mentioning lint rules in prose, like wall-clock or allow lists,
    // is not a directive; only `lint:`-prefixed comments are parsed.
    let _ = 3;
}
