// Golden fixture: the wall-clock rule (non-bench scope).
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

use std::time::Instant;

fn violating() -> Instant {
    Instant::now()
}

fn violating_system_time() {
    let _ = std::time::SystemTime::now();
}

fn allowed_escape() -> Instant {
    // lint: allow(wall-clock) — fixture copy of the telemetry stopwatch
    Instant::now()
}

fn lookalike(deadline: Instant, now: Instant) -> bool {
    // Consuming an Instant someone else captured is fine; only the
    // `Instant::now` read itself is the violation.
    now >= deadline
}
