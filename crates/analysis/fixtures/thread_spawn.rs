// Golden fixture: the thread-spawn rule (non-parworker scope).
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

fn violating() {
    let handle = std::thread::spawn(|| 42);
    let _ = handle.join();
}

fn allowed_escape() {
    // lint: allow(thread-spawn) — fixture copy of a sanctioned helper thread
    std::thread::spawn(|| ()).join().unwrap();
}

// A lookalike: defining a spawn wrapper is not spawning.
fn spawn(work: impl FnOnce()) {
    work();
}

fn lookalike_not_a_call() {
    // An identifier named spawn without a call is not spawning either.
    let spawn = 7;
    let _ = spawn;
}
