// Golden fixture: the hash-container rule (deterministic scope).
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

use std::collections::HashMap;

fn violating() -> HashMap<u32, f64> {
    HashMap::default()
}

fn allowed_escape(x: u32) -> bool {
    // lint: allow(hash-container) — membership test only; iteration order never observed
    let seen: std::collections::HashSet<u32> = Default::default();
    seen.contains(&x)
}

fn lookalike_btree() -> std::collections::BTreeMap<u32, f64> {
    // BTreeMap is the sanctioned ordered container — no finding.
    std::collections::BTreeMap::new()
}

fn lookalike_in_text() -> &'static str {
    // The word HashMap inside a comment or string is not a use of one.
    "prefer BTreeMap over HashMap in deterministic code"
}
