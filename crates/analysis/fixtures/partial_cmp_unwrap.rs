// Golden fixture: the partial-cmp-unwrap rule.
// Lines are pinned by tests/lint_fixtures.rs — edit with care.

fn violating(xs: &[f64]) -> f64 {
    *xs.iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap())
        .unwrap()
}

fn allowed_escape(a: f64, b: f64) -> std::cmp::Ordering {
    // lint: allow(partial-cmp-unwrap) — inputs are validated finite at the API boundary
    a.partial_cmp(&b).unwrap()
}

struct Wrapper(f64);

impl PartialOrd for Wrapper {
    // A lookalike: the PartialOrd impl itself must not trip the rule.
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl PartialEq for Wrapper {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

fn lookalike_total(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

fn lookalike_handled(a: f64, b: f64) -> Option<std::cmp::Ordering> {
    a.partial_cmp(&b)
}
