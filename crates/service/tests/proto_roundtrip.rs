//! Property test (seeded loop, repo style): the jsonio pretty printer and
//! the strict parser round-trip **every** v2 envelope kind — requests and
//! frames, with hostile strings (escapes, control characters, unicode),
//! extreme-but-finite floats, and nested snapshot payloads — and the
//! re-canonicalised compact form is byte-for-byte stable:
//! `parse(pretty(x)).to_string() == x.to_string()`.

use ess_service::jsonio::Json;
use ess_service::proto::{DoneFrame, Frame, Reply, Request, RequestKind};
use ess_service::{systems, RunSpec, SessionSnapshot};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A string that stresses the escaper: quotes, backslashes, newlines,
/// tabs, control characters, unicode, and `\uXXXX`-escapable points.
fn hostile_string(rng: &mut StdRng) -> String {
    let alphabet: &[&str] = &[
        "a", "Z", "7", " ", "\"", "\\", "\n", "\r", "\t", "\u{0001}", "\u{001f}", "é", "🔥", "{",
        "}", "[", "]", ":", ",", "null", "\\u0041",
    ];
    let len = rng.random_range(0..12usize);
    (0..len)
        .map(|_| alphabet[rng.random_range(0..alphabet.len())])
        .collect()
}

/// A finite f64 across many magnitudes (including negative zero, exact
/// integers, and subnormal-adjacent values).
fn finite_f64(rng: &mut StdRng) -> f64 {
    match rng.random_range(0..6u32) {
        0 => 0.0,
        1 => -0.0,
        2 => rng.random_range(0..1_000_000u64) as f64, // exact integer
        3 => rng.random::<f64>(),                      // [0, 1)
        4 => rng.random::<f64>() * 1e12 - 5e11,
        _ => rng.random::<f64>() * 1e-9,
    }
}

/// A random valid spec (names must resolve because snapshots validate).
fn random_spec(rng: &mut StdRng) -> RunSpec {
    let names = systems::names();
    let mut spec = RunSpec::new(names[rng.random_range(0..names.len())], "meadow_small")
        .seed(rng.random::<u64>() >> 12)
        .replicates(1 + rng.random_range(0..4usize))
        .scale(0.05 + rng.random::<f64>())
        .weight(0.5 + rng.random::<f64>() * 4.0);
    if rng.random_bool(0.5) {
        spec = spec.max_steps(1 + rng.random_range(0..9usize));
    }
    if rng.random_bool(0.5) {
        spec = spec.max_evaluations(1 + (rng.random::<u64>() >> 40));
    }
    if rng.random_bool(0.5) {
        spec = spec.deadline_ms(1 + (rng.random::<u64>() >> 44));
    }
    if rng.random_bool(0.5) {
        spec = spec.backend(match rng.random_range(0..3u32) {
            0 => ess::fitness::EvalBackend::Serial,
            1 => ess::fitness::EvalBackend::WorkerPool(1 + rng.random_range(0..8usize)),
            _ => ess::fitness::EvalBackend::Rayon(1 + rng.random_range(0..8usize)),
        });
    }
    if rng.random_bool(0.5) {
        spec = spec.kernel(match rng.random_range(0..3u32) {
            0 => firelib::Kernel::Heap,
            1 => firelib::Kernel::Bucket,
            _ => firelib::Kernel::Tiled {
                tile: 1 + rng.random_range(0..512usize),
                workers: rng.random_range(0..9usize),
            },
        });
    }
    spec
}

/// A random snapshot: a real session advanced a random number of steps.
/// (Building it from a live session keeps the steps internally
/// consistent, which `SessionSnapshot::from_json` enforces.)
fn random_snapshot(rng: &mut StdRng) -> SessionSnapshot {
    let spec = random_spec(rng);
    let mut session = spec.session().expect("random spec resolves");
    let advances = rng.random_range(0..3usize);
    for _ in 0..advances {
        if session.is_done() {
            break;
        }
        session.advance();
    }
    session.snapshot().expect("spec-built session snapshots")
}

fn random_request(rng: &mut StdRng) -> Request {
    let id = rng.random::<u64>() >> 12;
    let kind = match rng.random_range(0..7u32) {
        0 => RequestKind::Run {
            spec: random_spec(rng),
            watch: rng.random_bool(0.5),
        },
        1 => RequestKind::Restore {
            snapshot: random_snapshot(rng),
            watch: rng.random_bool(0.5),
        },
        2 => RequestKind::Advance {
            rounds: rng.random_range(0..1000usize),
        },
        3 => RequestKind::Snapshot {
            session: rng.random::<u64>() >> 12,
        },
        4 => RequestKind::Cancel {
            session: rng.random::<u64>() >> 12,
        },
        5 => RequestKind::Drain,
        _ => RequestKind::Quit,
    };
    Request { id, kind }
}

fn random_frame(rng: &mut StdRng) -> Frame {
    match rng.random_range(0..9u32) {
        0 => Frame::Progress {
            session: rng.random::<u64>() >> 12,
            step: rng.random_range(0..100usize),
            evaluations: rng.random::<u64>() >> 20,
            best: finite_f64(rng),
        },
        1 => Frame::Done(DoneFrame {
            session: rng.random::<u64>() >> 12,
            status: ["finished", "exhausted", "cancelled"][rng.random_range(0..3usize)].into(),
            reason: if rng.random_bool(0.5) {
                Some(hostile_string(rng))
            } else {
                None
            },
            system: hostile_string(rng),
            case: hostile_string(rng),
            steps: rng.random_range(0..50usize),
            mean_quality: finite_f64(rng),
            total_evaluations: rng.random::<u64>() >> 20,
            wall_ms: finite_f64(rng).abs(),
        }),
        n => Frame::Reply {
            id: rng.random::<u64>() >> 12,
            reply: match n {
                2 => Reply::Accepted {
                    sessions: (0..rng.random_range(0..6usize))
                        .map(|_| rng.random::<u64>() >> 12)
                        .collect(),
                },
                3 => Reply::Advanced {
                    rounds: rng.random_range(0..100usize),
                    live: rng.random_range(0..100usize),
                },
                4 => Reply::Snapshot {
                    session: rng.random::<u64>() >> 12,
                    snapshot: Box::new(random_snapshot(rng)),
                },
                5 => Reply::Cancelled {
                    session: rng.random::<u64>() >> 12,
                },
                6 => Reply::Drained {
                    sessions: rng.random_range(0..100usize),
                },
                7 => Reply::Bye,
                _ => Reply::Error {
                    message: hostile_string(rng),
                },
            },
        },
    }
}

/// The core property: pretty → strict parse reproduces the value tree,
/// and re-canonicalising gives the compact form byte-for-byte.
fn assert_round_trip(json: &Json, context: &str) {
    let compact = json.to_string();
    let pretty = json.to_pretty();
    let from_pretty = Json::parse(&pretty)
        .unwrap_or_else(|e| panic!("{context}: pretty output must parse: {e}\n{pretty}"));
    assert_eq!(&from_pretty, json, "{context}: pretty round trip");
    assert_eq!(
        from_pretty.to_string(),
        compact,
        "{context}: re-canonicalised compact form must be byte-identical"
    );
    let from_compact = Json::parse(&compact)
        .unwrap_or_else(|e| panic!("{context}: compact output must parse: {e}\n{compact}"));
    assert_eq!(&from_compact, json, "{context}: compact round trip");
}

#[test]
fn every_request_kind_round_trips_through_pretty_and_compact() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for i in 0..200 {
        let request = random_request(&mut rng);
        let json = request.to_json();
        assert_round_trip(&json, &format!("request {i} ({request:?})"));
        // And the typed layer agrees with the value layer.
        let reparsed = Request::from_json(&Json::parse(&json.to_pretty()).expect("parses"))
            .unwrap_or_else(|e| panic!("request {i}: typed parse failed: {e}"));
        assert_eq!(reparsed, request, "request {i}: typed round trip");
    }
}

#[test]
fn every_frame_kind_round_trips_through_pretty_and_compact() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for i in 0..300 {
        let frame = random_frame(&mut rng);
        let json = frame.to_json();
        assert_round_trip(&json, &format!("frame {i}"));
        let reparsed = Frame::from_json(&Json::parse(&json.to_pretty()).expect("parses"))
            .unwrap_or_else(|e| panic!("frame {i}: typed parse failed: {e}"));
        assert_eq!(reparsed, frame, "frame {i}: typed round trip");
    }
}

#[test]
fn hostile_json_values_round_trip_byte_for_byte() {
    // Raw value-tree fuzzing under the same property, so the printer and
    // parser agree beyond the envelope shapes too.
    let mut rng = StdRng::seed_from_u64(0xFACADE);
    for i in 0..500 {
        let value = random_value(&mut rng, 0);
        assert_round_trip(&value, &format!("value {i}"));
    }
}

fn random_value(rng: &mut StdRng, depth: usize) -> Json {
    let leaf_only = depth >= 4;
    match rng.random_range(0..if leaf_only { 4 } else { 6 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.random_bool(0.5)),
        2 => Json::Num(finite_f64(rng)),
        3 => Json::Str(hostile_string(rng)),
        4 => Json::Arr(
            (0..rng.random_range(0..4usize))
                .map(|_| random_value(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Obj(
            (0..rng.random_range(0..4usize))
                .map(|k| {
                    (
                        format!("{}{k}", hostile_string(rng)),
                        random_value(rng, depth + 1),
                    )
                })
                .collect(),
        ),
    }
}
