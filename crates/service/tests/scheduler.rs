//! Scheduler fairness/soundness: many sessions on one shared worker pool
//! all finish, produce exactly the reports of serial runs, interleave
//! fairly, and survive mid-flight cancellation without deadlock — under
//! every scheduling policy.

use ess::fitness::EvalBackend;
use ess::pipeline::StepReport;
use ess_service::{
    systems, DrainSignal, PolicyKind, RunSpec, Scheduler, SessionEvent, SessionOutcome,
};

const CASE: &str = "meadow_small";
const SCALE: f64 = 0.25;

fn fingerprint(s: &StepReport) -> (usize, Option<f64>, f64, f64, u64) {
    (s.step, s.quality, s.kign, s.os_best_fitness, s.evaluations)
}

fn spec_for(system: &str, seed: u64) -> RunSpec {
    RunSpec::new(system, CASE).scale(SCALE).seed(seed)
}

#[test]
fn eight_concurrent_sessions_match_their_serial_runs() {
    // 4 systems × 2 replicates multiplexed over one 2-worker pool.
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(2));
    let mut submitted = Vec::new();
    for system in systems::all() {
        let ids = scheduler
            .submit(&spec_for(system.name, 21).replicates(2))
            .expect("spec resolves");
        assert_eq!(ids.len(), 2);
        for (replicate, id) in ids.into_iter().enumerate() {
            submitted.push((id, system.name, replicate));
        }
    }
    assert_eq!(scheduler.live_count(), 8);

    let outcomes = scheduler.drain().to_vec();
    assert_eq!(outcomes.len(), 8);
    assert!(outcomes.iter().all(|(_, o)| o.is_finished()));

    // Each scheduled run must equal the same replicate run serially on a
    // private backend (sessions() builds per-replicate seeds the same way).
    for (id, system, replicate) in submitted {
        let serial = spec_for(system, 21)
            .replicates(2)
            .sessions()
            .expect("spec resolves")
            .remove(replicate)
            .drain()
            .expect("serial run finishes");
        let outcome = &outcomes
            .iter()
            .find(|(oid, _)| *oid == id)
            .expect("outcome present")
            .1;
        let shared = outcome.report();
        assert_eq!(shared.system, system);
        assert_eq!(shared.steps.len(), serial.steps.len());
        for (a, b) in shared.steps.iter().zip(&serial.steps) {
            assert_eq!(
                fingerprint(a),
                fingerprint(b),
                "{system} replicate {replicate} diverged on the shared pool"
            );
        }
    }
}

#[test]
fn rounds_are_fair_one_step_per_live_session() {
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(2));
    for seed in [1u64, 2, 3] {
        scheduler
            .submit(&spec_for("ESS-NS", seed))
            .expect("spec ok");
    }
    let mut rounds = 0usize;
    while scheduler.live_count() > 0 {
        let live_before = scheduler.live_count();
        let events = scheduler.round();
        rounds += 1;
        // Every live session got exactly one event this round.
        assert_eq!(events.len(), live_before);
        // Progress within one round never differs by more than one step.
        let progress: Vec<usize> = scheduler.live().map(|(_, s)| s.steps().len()).collect();
        if let (Some(min), Some(max)) = (progress.iter().min(), progress.iter().max()) {
            assert!(max - min <= 1, "unfair round: {progress:?}");
        }
        assert!(rounds < 100, "scheduler failed to converge");
    }
    assert_eq!(scheduler.outcomes().len(), 3);
    // Long-lived servers reclaim outcome memory between drains.
    assert_eq!(scheduler.take_outcomes().len(), 3);
    assert!(scheduler.outcomes().is_empty());
}

#[test]
fn cancelling_mid_flight_neither_deadlocks_nor_perturbs_peers() {
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(2));
    let victim = scheduler.submit(&spec_for("ESS", 9)).expect("ok")[0];
    let survivor = scheduler.submit(&spec_for("ESS-NS", 9)).expect("ok")[0];

    // One fair round, then cancel the first session mid-flight.
    let events = scheduler.round();
    assert!(events
        .iter()
        .all(|(_, e)| matches!(e, SessionEvent::StepCompleted(_))));
    assert!(scheduler.cancel(victim));
    assert!(!scheduler.cancel(victim), "double cancel must be a no-op");
    assert_eq!(scheduler.live_count(), 1);

    let outcomes = scheduler.drain().to_vec();
    assert_eq!(outcomes.len(), 2);
    let victim_outcome = &outcomes.iter().find(|(id, _)| *id == victim).unwrap().1;
    match victim_outcome {
        SessionOutcome::Exhausted { partial, .. } => assert_eq!(partial.steps.len(), 1),
        other => panic!("cancelled session reported {other:?}"),
    }
    let survivor_outcome = &outcomes.iter().find(|(id, _)| *id == survivor).unwrap().1;
    assert!(survivor_outcome.is_finished());

    // The survivor still matches its serial run exactly.
    let serial = spec_for("ESS-NS", 9).run().expect("serial run");
    for (a, b) in survivor_outcome.report().steps.iter().zip(&serial.steps) {
        assert_eq!(fingerprint(a), fingerprint(b));
    }
}

#[test]
fn drain_callback_can_cancel_a_session_mid_drain() {
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(2));
    let victim = scheduler.submit(&spec_for("ESS", 31)).expect("ok")[0];
    let bystander = scheduler.submit(&spec_for("ESS-NS", 31)).expect("ok")[0];
    let trigger = scheduler.submit(&spec_for("ESSIM-EA", 31)).expect("ok")[0];

    // When the trigger session completes its second step, the callback
    // cancels the victim — from *inside* the drain.
    let mut cancelled_at = None;
    let outcomes = scheduler
        .drain_controlled(|id, event| {
            if id == trigger {
                if let SessionEvent::StepCompleted(step) = event {
                    if step.step == 2 && cancelled_at.is_none() {
                        cancelled_at = Some(step.step);
                        return DrainSignal::Cancel(victim);
                    }
                }
            }
            DrainSignal::Continue
        })
        .to_vec();
    assert_eq!(cancelled_at, Some(2), "trigger condition must have fired");
    assert_eq!(outcomes.len(), 3, "drain terminates with every outcome");

    // The victim is recorded as cancelled with the steps it had run.
    let victim_outcome = &outcomes.iter().find(|(id, _)| *id == victim).unwrap().1;
    match victim_outcome {
        SessionOutcome::Exhausted { reason, partial } => {
            assert_eq!(
                reason.to_string(),
                "cancelled",
                "outcome must be recorded as cancelled"
            );
            assert_eq!(partial.steps.len(), 2, "cancelled after round 2");
        }
        other => panic!("victim reported {other:?}"),
    }

    // Remaining sessions are unaffected: both finish and match serial.
    for (id, system) in [(bystander, "ESS-NS"), (trigger, "ESSIM-EA")] {
        let outcome = &outcomes.iter().find(|(oid, _)| *oid == id).unwrap().1;
        assert!(outcome.is_finished(), "{system} must finish");
        let serial = spec_for(system, 31).run().expect("serial run");
        for (a, b) in outcome.report().steps.iter().zip(&serial.steps) {
            assert_eq!(fingerprint(a), fingerprint(b), "{system} perturbed");
        }
    }
}

#[test]
fn every_policy_produces_identical_reports() {
    let run_under = |policy: PolicyKind| {
        let mut scheduler = Scheduler::with_policy(EvalBackend::WorkerPool(2), policy);
        for (i, system) in systems::all().iter().enumerate() {
            scheduler
                .submit(
                    &spec_for(system.name, 40 + i as u64)
                        .weight(1.0 + i as f64)
                        .deadline_ms(600_000),
                )
                .expect("spec resolves");
        }
        let mut outcomes: Vec<_> = scheduler
            .drain()
            .iter()
            .map(|(_, o)| {
                let r = o.report();
                (
                    r.system,
                    r.steps.iter().map(fingerprint).collect::<Vec<_>>(),
                )
            })
            .collect();
        outcomes.sort_by_key(|(system, _)| *system);
        outcomes
    };
    let reference = run_under(PolicyKind::RoundRobin);
    for policy in [PolicyKind::WeightedFairShare, PolicyKind::DeadlineFirst] {
        assert_eq!(
            run_under(policy),
            reference,
            "{policy} changed results — policies must only reorder work"
        );
    }
}

#[test]
fn weighted_fair_share_tracks_weight_ratios_mid_drain() {
    let mut scheduler =
        Scheduler::with_policy(EvalBackend::WorkerPool(2), PolicyKind::WeightedFairShare);
    let light = scheduler
        .submit(&spec_for("ESS-NS", 50).weight(1.0))
        .expect("ok")[0];
    let heavy = scheduler
        .submit(&spec_for("ESS-NS", 51).weight(2.0))
        .expect("ok")[0];

    // Run rounds while both are live and track their step counts: the
    // weight-2 session must stay ~2× ahead of the weight-1 session.
    let mut max_light_lead = 0isize;
    while scheduler.live_count() == 2 {
        scheduler.round();
        let count = |wanted| {
            scheduler
                .live()
                .find(|(id, _)| *id == wanted)
                .map(|(_, s)| s.steps().len() as isize)
        };
        if let (Some(l), Some(h)) = (count(light), count(heavy)) {
            // Virtual times l/1 and h/2 stay within one step of each
            // other, so h ≈ 2l while both run.
            let skew = (l - h / 2).abs();
            assert!(skew <= 1, "virtual-time skew {skew} (light {l}, heavy {h})");
            max_light_lead = max_light_lead.max(l - h);
        }
    }
    assert!(
        max_light_lead <= 0,
        "the heavy session must never trail the light one"
    );
    scheduler.drain();
    assert_eq!(scheduler.outcomes().len(), 2);
}

#[test]
fn bad_submissions_enqueue_nothing() {
    let mut scheduler = Scheduler::new(EvalBackend::Serial);
    assert!(scheduler.submit(&RunSpec::new("ESS-X", CASE)).is_err());
    assert!(scheduler.submit(&RunSpec::new("ESS", "atlantis")).is_err());
    assert!(scheduler.submit(&spec_for("ESS", 1).replicates(0)).is_err());
    assert_eq!(scheduler.live_count(), 0);
    assert!(scheduler.drain().is_empty());
}

#[test]
fn serve_protocol_self_test_passes_on_a_shared_pool() {
    let mut transcript = Vec::new();
    let summary = ess_service::serve::self_test(&mut transcript, EvalBackend::WorkerPool(2))
        .expect("self test");
    assert_eq!(summary.accepted, 8);
    let text = String::from_utf8(transcript).expect("utf-8 protocol");
    // Every line of the transcript is a parseable JSON event object.
    for line in text.lines() {
        let event = ess_service::jsonio::Json::parse(line).expect("valid event line");
        assert!(event.get("event").is_some(), "event field missing: {line}");
    }
}
