//! Version-sniff conformance: pure-v2 connections speak v2 end to end
//! (including the EOF-implied drain/quit), pure-v1 connections are
//! byte-compatible with PR 3, and mixed connections never mix shapes for
//! one session.

use ess::fitness::EvalBackend;
use ess_service::jsonio::Json;
use ess_service::proto::Frame;
use ess_service::serve::serve;

#[test]
fn pure_v2_connections_get_v2_frames_even_at_eof() {
    // No explicit drain/quit: EOF implies both.
    let script = concat!(
        r#"{"v":2,"id":1,"kind":"run","watch":true,"spec":{"system":"ESS","case":"meadow_small","seed":4,"scale":0.15,"max_steps":1}}"#,
        "\n",
    );
    let mut out = Vec::new();
    let summary = serve(script.as_bytes(), &mut out, EvalBackend::Serial).expect("serve I/O");
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.exhausted, 1);
    let text = String::from_utf8(out).expect("utf-8");
    for line in text.lines() {
        let json = Json::parse(line).expect("every line parses");
        Frame::from_json(&json)
            .unwrap_or_else(|e| panic!("non-v2 line on a pure-v2 connection: {line} ({e})"));
    }
    assert!(text.contains(r#""kind":"progress""#), "{text}");
    assert!(text.contains(r#""kind":"done""#), "{text}");
    assert!(text.contains(r#""kind":"drained""#), "{text}");
    assert!(text.contains(r#""kind":"bye""#), "{text}");
}

#[test]
fn dialectless_garbage_does_not_flip_a_v2_connection_to_v1() {
    // A corrupted line and a no-envelope object between valid v2 requests
    // must be answered as v2 errors and must not change the EOF dialect.
    let script = concat!(
        r#"{"v":2,"id":1,"kind":"run","spec":{"system":"ESS","case":"meadow_small","scale":0.15,"max_steps":1}}"#,
        "\n",
        "not json at all\n",
        r#"{"typo":1}"#,
        "\n",
    );
    let mut out = Vec::new();
    let summary = serve(script.as_bytes(), &mut out, EvalBackend::Serial).expect("serve I/O");
    assert_eq!(summary.errors, 2);
    let text = String::from_utf8(out).expect("utf-8");
    for line in text.lines() {
        let json = Json::parse(line).expect("every line parses");
        Frame::from_json(&json)
            .unwrap_or_else(|e| panic!("non-v2 line after garbage input: {line} ({e})"));
    }
    assert!(text.contains(r#""kind":"bye""#), "{text}");
}

#[test]
fn v1_run_error_texts_are_unchanged() {
    let script = concat!(
        r#"{"op":"run","case":"meadow_small"}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n"
    );
    let mut out = Vec::new();
    let summary = serve(script.as_bytes(), &mut out, EvalBackend::Serial).expect("serve I/O");
    assert_eq!(summary.errors, 1);
    let text = String::from_utf8(out).expect("utf-8");
    assert!(
        text.contains(r#""message":"run needs a 'system' string""#),
        "v1 error text drifted: {text}"
    );
}

#[test]
fn mixed_connections_keep_v1_shapes_for_v1_sessions() {
    let script = concat!(
        r#"{"v":2,"id":1,"kind":"run","watch":true,"spec":{"system":"ESS","case":"meadow_small","seed":4,"scale":0.15,"max_steps":1}}"#,
        "\n",
        r#"{"op":"run","system":"ESS","case":"meadow_small","seed":5,"scale":0.15,"max_steps":1}"#,
        "\n",
    );
    let mut out = Vec::new();
    let summary = serve(script.as_bytes(), &mut out, EvalBackend::Serial).expect("serve I/O");
    assert_eq!(summary.accepted, 2);
    let text = String::from_utf8(out).expect("utf-8");
    // The v2 session streams v2 frames; the v1 session gets v1 events;
    // the EOF-implied drain stays v1-shaped because v1 traffic appeared.
    assert!(text.contains(r#""kind":"done","session":1"#), "{text}");
    assert!(text.contains(r#""event":"done","session":2"#), "{text}");
    assert!(text.contains(r#""event":"drained""#), "{text}");
    assert!(text.contains(r#""event":"bye""#), "{text}");
    // And a v1 cancel of a v2 session is accepted (state retired, reply
    // in the v1 dialect of the request).
    let cancel_script = concat!(
        r#"{"v":2,"id":1,"kind":"run","watch":true,"spec":{"system":"ESS","case":"meadow_small","seed":6,"scale":0.15}}"#,
        "\n",
        r#"{"op":"cancel","session":1}"#,
        "\n",
        r#"{"op":"quit"}"#,
        "\n",
    );
    let mut out = Vec::new();
    let summary = serve(cancel_script.as_bytes(), &mut out, EvalBackend::Serial).expect("serve");
    assert_eq!(summary.cancelled, 1);
    let text = String::from_utf8(out).expect("utf-8");
    assert!(
        text.contains(r#""event":"cancelled","session":1"#),
        "{text}"
    );
}
