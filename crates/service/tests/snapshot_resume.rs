//! Resume bit-identity: for every paper system, a session checkpointed at
//! step k, serialized through jsonio, and restored from the parsed
//! snapshot produces a final `RunReport` bit-identical (deterministic
//! fields) to the uninterrupted run — at every possible k.

use ess::pipeline::{RunReport, StepReport};
use ess_service::jsonio::Json;
use ess_service::{systems, RunSpec, SessionSnapshot};

const CASE: &str = "meadow_small";
const SCALE: f64 = 0.2;
const SEED: u64 = 777;

/// Every deterministic field of a step report (wall time excluded),
/// floats as bits.
type StepBits = (usize, Option<u64>, u64, u64, u64, u64, u64, usize, u64, u32);

fn fingerprint(s: &StepReport) -> StepBits {
    (
        s.step,
        s.quality.map(f64::to_bits),
        s.kign.to_bits(),
        s.calibration_fitness.to_bits(),
        s.os_best_fitness.to_bits(),
        s.diversity.mean_pairwise.to_bits(),
        s.diversity.mean_gene_std.to_bits(),
        s.diversity.distinct,
        s.evaluations,
        s.generations,
    )
}

fn report_fingerprint(r: &RunReport) -> Vec<StepBits> {
    r.steps.iter().map(fingerprint).collect()
}

#[test]
fn checkpoint_resume_is_bit_identical_for_every_system_at_every_step() {
    for system in systems::all() {
        let spec = RunSpec::new(system.name, CASE).scale(SCALE).seed(SEED);

        // The uninterrupted reference run.
        let reference = spec.run().expect("reference run finishes");
        let total = reference.steps.len();
        assert!(total >= 2, "case must have at least two steps to interrupt");

        for checkpoint in 0..=total {
            // Run to the checkpoint …
            let mut session = spec.session().expect("session builds");
            for _ in 0..checkpoint {
                assert!(!session.advance().is_terminal());
            }
            // … checkpoint through the *serialized* form (string-level,
            // exactly what the wire carries) …
            let line = session
                .snapshot()
                .expect("spec-built session snapshots")
                .to_json()
                .to_string();
            drop(session);
            let snapshot = SessionSnapshot::from_json(&Json::parse(&line).expect("valid json"))
                .expect("snapshot parses");
            assert_eq!(snapshot.completed(), checkpoint);

            // … and drain the restored session to the end.
            let resumed = match snapshot.restore().expect("snapshot restores").drain() {
                Ok(report) => report,
                Err(e) => panic!("{}: resumed run failed: {e}", system.name),
            };
            assert_eq!(resumed.system, reference.system);
            assert_eq!(resumed.case, reference.case);
            assert_eq!(
                report_fingerprint(&resumed),
                report_fingerprint(&reference),
                "{} resumed from step {checkpoint} diverged",
                system.name
            );
        }
    }
}

#[test]
fn resume_respects_remaining_budgets() {
    // A max-steps budget counts the checkpointed steps too: a session
    // restored at step 2 of a 3-step budget runs exactly one more step.
    let spec = RunSpec::new("ESS", CASE).scale(SCALE).seed(3).max_steps(3);
    let mut session = spec.session().expect("session");
    session.advance();
    session.advance();
    let snapshot = session.snapshot().expect("snapshot");
    let mut restored = snapshot.restore().expect("restores");
    assert!(!restored.advance().is_terminal(), "step 3 still in budget");
    assert!(restored.advance().is_terminal(), "budget exhausted at 3");
    assert_eq!(restored.steps().len(), 3);
}
