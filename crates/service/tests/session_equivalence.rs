//! The session-equivalence suite: driving a [`PredictionSession`] to
//! completion must reproduce the old batch path **bit for bit** for every
//! registered system, and budgets/cancellation must stop sessions exactly
//! between steps.

use ess::cases;
use ess::error::{BudgetReason, ServiceError};
use ess::fitness::EvalBackend;
use ess::pipeline::{PredictionPipeline, StepReport};
use ess_service::{systems, RunSpec, SessionEvent};

const CASE: &str = "meadow_small";
const SCALE: f64 = 0.25;
const SEED: u64 = 404;

/// The deterministic fields of a step report (wall time excluded).
fn fingerprint(s: &StepReport) -> (usize, Option<f64>, f64, f64, f64, f64, u64, u32) {
    (
        s.step,
        s.quality,
        s.kign,
        s.calibration_fitness,
        s.os_best_fitness,
        s.diversity.mean_pairwise,
        s.evaluations,
        s.generations,
    )
}

#[test]
fn sessions_reproduce_the_batch_path_for_every_system() {
    let case = cases::by_name(CASE).expect("corpus case");
    for system in systems::all() {
        // The pre-redesign batch path: pipeline.run() to completion.
        let mut optimizer = system.make(SCALE);
        let batch = PredictionPipeline::new(EvalBackend::Serial, SEED).run(&case, &mut *optimizer);

        // The session path: advance() until Finished.
        let mut session = RunSpec::new(system.name, CASE)
            .scale(SCALE)
            .seed(SEED)
            .session()
            .expect("spec resolves");
        let mut stepped = 0usize;
        let report = loop {
            match session.advance() {
                SessionEvent::StepCompleted(_) => stepped += 1,
                SessionEvent::Finished(report) => break report,
                SessionEvent::BudgetExhausted { reason, .. } => {
                    panic!("{}: unbudgeted session exhausted ({reason})", system.name)
                }
            }
        };

        assert_eq!(report.system, batch.system, "{}", system.name);
        assert_eq!(report.case, batch.case, "{}", system.name);
        assert_eq!(stepped, batch.steps.len(), "{}", system.name);
        assert_eq!(report.steps.len(), batch.steps.len(), "{}", system.name);
        for (s, b) in report.steps.iter().zip(&batch.steps) {
            assert_eq!(
                fingerprint(s),
                fingerprint(b),
                "{} step {} diverged from the batch path",
                system.name,
                b.step
            );
        }
        // And the drained wrapper is the same thing again.
        let rerun = RunSpec::new(system.name, CASE)
            .scale(SCALE)
            .seed(SEED)
            .run()
            .expect("drained run");
        assert_eq!(rerun.steps.len(), batch.steps.len());
        for (s, b) in rerun.steps.iter().zip(&batch.steps) {
            assert_eq!(fingerprint(s), fingerprint(b));
        }
    }
}

#[test]
fn cancellation_after_k_steps_keeps_exactly_k_reports() {
    let total = {
        let case = cases::by_name(CASE).expect("corpus case");
        case.intervals() - 1
    };
    assert!(total >= 2, "test case must have at least 2 steps");
    for k in 0..total {
        let mut session = RunSpec::new("ESS-NS", CASE)
            .scale(SCALE)
            .seed(7)
            .session()
            .expect("spec resolves");
        for _ in 0..k {
            assert!(matches!(session.advance(), SessionEvent::StepCompleted(_)));
        }
        session.cancel();
        assert!(session.is_done());
        assert_eq!(session.steps().len(), k, "cancel after {k} steps");
        assert_eq!(session.report().steps.len(), k);
        // The terminal event is sticky and carries the partial report.
        match session.advance() {
            SessionEvent::BudgetExhausted { reason, partial } => {
                assert_eq!(reason, BudgetReason::Cancelled);
                assert_eq!(partial.steps.len(), k);
            }
            other => panic!("cancelled session produced {other:?}"),
        }
        // Advancing again never resurrects the run.
        assert!(session.advance().is_terminal());
        assert_eq!(session.steps().len(), k);
    }
}

#[test]
fn max_steps_budget_stops_between_steps() {
    let mut session = RunSpec::new("ESS", CASE)
        .scale(SCALE)
        .seed(3)
        .max_steps(2)
        .session()
        .expect("spec resolves");
    assert!(matches!(session.advance(), SessionEvent::StepCompleted(_)));
    assert!(matches!(session.advance(), SessionEvent::StepCompleted(_)));
    match session.advance() {
        SessionEvent::BudgetExhausted { reason, partial } => {
            assert_eq!(reason, BudgetReason::MaxSteps);
            assert_eq!(partial.steps.len(), 2);
        }
        other => panic!("expected exhaustion, got {other:?}"),
    }
    // The two completed steps are still the batch path's first two steps.
    let case = cases::by_name(CASE).expect("corpus case");
    let mut optimizer = systems::by_name("ESS").unwrap().make(SCALE);
    let batch = PredictionPipeline::new(EvalBackend::Serial, 3).run(&case, &mut *optimizer);
    for (s, b) in session.steps().iter().zip(&batch.steps) {
        assert_eq!(fingerprint(s), fingerprint(b));
    }
}

#[test]
fn evaluation_budget_and_drain_error_carry_the_partial_report() {
    let err = RunSpec::new("ESS-NS", CASE)
        .scale(SCALE)
        .seed(5)
        .max_evaluations(1)
        .run()
        .expect_err("one evaluation cannot cover a run");
    match err {
        ServiceError::BudgetExhausted { reason, partial } => {
            assert_eq!(reason, BudgetReason::MaxEvaluations);
            // The budget is checked between steps, so exactly one step ran.
            assert_eq!(partial.steps.len(), 1);
            assert!(partial.total_evaluations() >= 1);
        }
        other => panic!("expected budget exhaustion, got {other}"),
    }
}

#[test]
fn observers_see_every_fresh_event_once() {
    use std::cell::RefCell;
    use std::rc::Rc;
    let seen: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&seen);
    let mut session = RunSpec::new("ESS", CASE)
        .scale(SCALE)
        .seed(2)
        .session()
        .expect("spec resolves");
    session.observe(move |event| {
        sink.borrow_mut().push(match event {
            SessionEvent::StepCompleted(s) => format!("step{}", s.step),
            SessionEvent::Finished(_) => "finished".to_string(),
            SessionEvent::BudgetExhausted { .. } => "exhausted".to_string(),
        });
    });
    let total = session.total_steps();
    while !session.advance().is_terminal() {}
    // Replaying the terminal event must not re-notify.
    let _ = session.advance();
    let log = seen.borrow();
    assert_eq!(log.len(), total + 1);
    assert_eq!(log.last().map(String::as_str), Some("finished"));
}
