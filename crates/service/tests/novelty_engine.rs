//! Novelty-engine equivalence at the service level: for every registered
//! paper system, seeded runs must be bit-identical across the brute-force
//! reference, the sorted-scan index, and backend-parallel scoring — the
//! acceptance bar of the novelty-scoring refactor. The fitness-driven
//! baselines do no novelty bookkeeping (the knob must be inert there);
//! for ESS-NS the engines genuinely diverge in code path, so any drift in
//! the kNN semantics shows up as a digest mismatch here.

use ess_ns::NoveltyEngine;
use ess_service::{systems, RunSpec};

/// One step's deterministic fields: (step, quality, kign, calibration
/// fitness, best fitness, evaluations, generations).
type StepDigest = (usize, Option<f64>, f64, f64, f64, u64, u32);

/// Everything deterministic about a run (wall-clock fields excluded).
fn digest(spec: &RunSpec) -> Vec<StepDigest> {
    let report = spec.run().expect("sweep spec must run");
    report
        .steps
        .iter()
        .map(|s| {
            (
                s.step,
                s.quality,
                s.kign,
                s.calibration_fitness,
                s.os_best_fitness,
                s.evaluations,
                s.generations,
            )
        })
        .collect()
}

#[test]
fn all_systems_are_bit_identical_across_novelty_engines() {
    for system in systems::all() {
        let spec = |engine: NoveltyEngine| {
            RunSpec::new(system.name, "meadow_small")
                .scale(0.2)
                .seed(11)
                .novelty(engine)
        };
        let reference = digest(&spec(NoveltyEngine::brute_force()));
        assert!(!reference.is_empty(), "{}: empty run", system.name);
        for engine in [
            NoveltyEngine::indexed(),
            NoveltyEngine::indexed().with_workers(2),
            NoveltyEngine::brute_force().with_workers(2),
        ] {
            assert_eq!(
                digest(&spec(engine)),
                reference,
                "{}: engine {engine} diverged from brute force",
                system.name
            );
        }
    }
}
