//! The fusion-equivalence suite: a scheduler round that fuses every
//! planned session's evaluation batches into shared-pool mega-batches
//! must be **bit-identical** to the unfused per-session path — for every
//! registered system, under every scheduling policy, across mixed
//! workloads and grid shapes in one round, with sessions finishing
//! mid-round and sessions cancelled between plan and complete.

use ess::error::BudgetReason;
use ess::fitness::EvalBackend;
use ess::pipeline::StepReport;
use ess_service::{PolicyKind, RunSpec, Scheduler, SessionEvent, SessionOutcome, StepPlan};
use std::collections::BTreeMap;

/// The deterministic fields of a step report (wall time excluded).
fn step_fingerprint(s: &StepReport) -> (usize, Option<u64>, u64, u64, u64, u64, u64, u32) {
    (
        s.step,
        s.quality.map(f64::to_bits),
        s.kign.to_bits(),
        s.calibration_fitness.to_bits(),
        s.os_best_fitness.to_bits(),
        s.diversity.mean_pairwise.to_bits(),
        s.evaluations,
        s.generations,
    )
}

/// The deterministic fields of a terminal outcome.
type OutcomeDigest = (
    bool,
    Option<String>,
    Vec<(usize, Option<u64>, u64, u64, u64, u64, u64, u32)>,
);

fn outcome_digest(o: &SessionOutcome) -> OutcomeDigest {
    let (finished, reason, report) = match o {
        SessionOutcome::Finished(r) => (true, None, r),
        SessionOutcome::Exhausted { reason, partial } => {
            (false, Some(format!("{reason}")), partial)
        }
    };
    (
        finished,
        reason,
        report.steps.iter().map(step_fingerprint).collect(),
    )
}

/// A mixed fleet exercising every system, two grid shapes, differing
/// weights/deadlines (so every policy has something to order by), and
/// step budgets that make sessions finish in different rounds.
fn submit_mixed_fleet(scheduler: &mut Scheduler) {
    let mixes = [
        ("ESS", "meadow_small", 21u64, None, 1.0),
        ("ESSIM-EA", "grass_uniform", 22, Some(1), 2.0),
        ("ESSIM-DE", "meadow_small", 23, Some(1), 3.0),
        ("ESS-NS", "grass_uniform", 24, None, 1.5),
        ("ESS", "grass_uniform", 25, Some(2), 2.5),
        ("ESS-NS", "meadow_small", 26, Some(1), 1.0),
    ];
    for (i, (system, case, seed, max_steps, weight)) in mixes.into_iter().enumerate() {
        let mut spec = RunSpec::new(system, case)
            .scale(0.15)
            .seed(seed)
            .weight(weight)
            // Deadlines far beyond any plausible run time: they order
            // deadline-first scheduling without ever firing as budgets.
            .deadline_ms(3_600_000 + (i as u64) * 600_000);
        if let Some(n) = max_steps {
            spec = spec.max_steps(n);
        }
        scheduler.submit(&spec).expect("fleet spec must resolve");
    }
}

/// Drains a fleet and returns its outcomes keyed by session id.
fn drain_fleet(policy: PolicyKind, fused: bool) -> BTreeMap<u64, OutcomeDigest> {
    let mut scheduler = Scheduler::with_policy(EvalBackend::WorkerPool(2), policy);
    scheduler.set_fused(fused);
    submit_mixed_fleet(&mut scheduler);
    scheduler
        .drain()
        .iter()
        .map(|(id, o)| (*id, outcome_digest(o)))
        .collect()
}

#[test]
fn fused_rounds_match_unfused_for_every_policy() {
    for policy in PolicyKind::ALL {
        let unfused = drain_fleet(policy, false);
        let fused = drain_fleet(policy, true);
        assert_eq!(
            unfused, fused,
            "fused rounds diverged from unfused under {policy}"
        );
        assert_eq!(unfused.len(), 6, "every fleet session reached an outcome");
    }
}

#[test]
fn fused_round_robin_streams_the_same_events_round_by_round() {
    let mut unfused = Scheduler::new(EvalBackend::WorkerPool(2));
    let mut fused = Scheduler::new(EvalBackend::WorkerPool(2));
    fused.set_fused(true);
    submit_mixed_fleet(&mut unfused);
    submit_mixed_fleet(&mut fused);

    let key = |event: &SessionEvent| match event {
        SessionEvent::StepCompleted(s) => format!("step:{:?}", step_fingerprint(s)),
        SessionEvent::Finished(r) => format!("finished:{}", r.steps.len()),
        SessionEvent::BudgetExhausted { reason, partial } => {
            format!("exhausted:{reason}:{}", partial.steps.len())
        }
    };
    let mut rounds = 0usize;
    while unfused.live_count() > 0 || fused.live_count() > 0 {
        let u: Vec<(u64, String)> = unfused
            .round()
            .iter()
            .map(|(id, e)| (*id, key(e)))
            .collect();
        let f: Vec<(u64, String)> = fused.round().iter().map(|(id, e)| (*id, key(e))).collect();
        assert_eq!(u, f, "round {rounds}: fused event stream diverged");
        rounds += 1;
        assert!(rounds < 100, "fleet must drain in bounded rounds");
    }
}

#[test]
fn fused_drain_survives_mid_drain_cancellation() {
    let mut scheduler = Scheduler::new(EvalBackend::WorkerPool(2));
    scheduler.set_fused(true);
    submit_mixed_fleet(&mut scheduler);
    let victim = scheduler.live().next().expect("live fleet").0;
    scheduler.round();
    assert!(scheduler.cancel(victim), "victim was live");
    scheduler.drain();
    let outcomes = scheduler.take_outcomes();
    assert_eq!(outcomes.len(), 6);
    let cancelled = outcomes
        .iter()
        .find(|(id, _)| *id == victim)
        .expect("victim has an outcome");
    assert!(
        matches!(
            &cancelled.1,
            SessionOutcome::Exhausted {
                reason: BudgetReason::Cancelled,
                ..
            }
        ),
        "victim must record cancellation"
    );
}

#[test]
fn cancel_between_plan_and_complete_discards_the_step() {
    let mut session = RunSpec::new("ESS", "meadow_small")
        .scale(0.15)
        .seed(9)
        .session()
        .expect("spec resolves");
    assert!(matches!(session.plan_step(), StepPlan::Ready));
    // Run the planned step exactly as a fused lane would, via the split
    // driver/optimizer halves.
    let (driver, optimizer) = session.step_parts();
    let step = driver.step(optimizer).expect("planned step runs");
    // The cancellation arrives between plan and complete: it wins.
    session.cancel();
    let event = session.complete_step(step, 1.0);
    match event {
        SessionEvent::BudgetExhausted { reason, partial } => {
            assert_eq!(reason, BudgetReason::Cancelled);
            assert_eq!(partial.steps.len(), 0, "the raced step is discarded");
        }
        other => panic!("expected the sticky cancellation, got {other:?}"),
    }
    assert_eq!(session.steps().len(), 0);
    assert!(session.is_done());
}
