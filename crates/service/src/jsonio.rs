//! Dependency-free JSON: one shared writer + minimal reader.
//!
//! The bench harness has always emitted hand-rolled JSON (`BENCH_*.json`),
//! and the serve protocol needs to *parse* line-delimited requests; this
//! module is the single implementation both sides use. It is deliberately
//! small: a [`Json`] value tree, a compact `Display` plus a pretty
//! printer, and a strict recursive-descent parser. No dependencies, no
//! `unsafe`, numbers are `f64` (integers round-trip exactly up to 2⁵³).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers print without a fractional part).
    Num(f64),
    /// A string (unescaped in memory).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object to grow with [`Json::field`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends `key: value` to an object. Calling it on a non-object is
    /// builder misuse, not data: debug builds trap it, release builds
    /// drop the field rather than take down the serve loop.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => debug_assert!(false, "Json::field on non-object {other}"),
        }
        self
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions
    /// and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    /// [`JsonError`] with a byte offset and a short reason.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Multi-line rendering with two-space indentation (the `BENCH_*.json`
    /// house style).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&pad);
                    out.push_str(&format!("{}: ", Json::Str(k.clone())));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            leaf => {
                out.push_str(&leaf.to_string());
            }
        }
    }
}

/// Compact (single-line) serialization.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // JSON has no NaN/Inf; null is the least-lying choice.
                    write!(f, "null")
                } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Json::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// Parse failure: byte offset + reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Containers may nest this deep before the parser refuses. The parser is
/// recursive descent, so unbounded nesting would let one hostile request
/// line (`[[[[…`) overflow the stack and kill a serve process; 128 levels
/// is far beyond anything the protocol or the bench artifacts produce.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        if rest.starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            let run = self.bytes.get(start..self.pos).unwrap_or_default();
            out.push_str(
                std::str::from_utf8(run).map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // serve protocol; reject instead of mangling.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .ok_or_else(|| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_compact_display() {
        let doc = Json::obj()
            .field("event", "step")
            .field("session", 3u64)
            .field("quality", 0.5)
            .field("done", false)
            .field("note", Json::Null)
            .field("xs", Json::Arr(vec![1u64.into(), 2u64.into()]));
        assert_eq!(
            doc.to_string(),
            r#"{"event":"step","session":3,"quality":0.5,"done":false,"note":null,"xs":[1,2]}"#
        );
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let text = r#"{"op":"run","system":"ESS-NS","case":"meadow_small","seed":7,"scale":0.25,"budgets":[1,2.5,null],"deep":{"a":[{"b":true}]}}"#;
        let parsed = Json::parse(text).expect("valid document");
        assert_eq!(parsed.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(parsed.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(parsed.get("scale").and_then(Json::as_f64), Some(0.25));
        let reparsed = Json::parse(&parsed.to_string()).expect("round trip");
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("line\nbreak \"quoted\" back\\slash\ttab \u{1F525}".to_string());
        let parsed = Json::parse(&original.to_string()).expect("escaped string parses");
        assert_eq!(parsed, original);
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".to_string()));
    }

    #[test]
    fn nesting_is_depth_limited_but_breadth_is_not() {
        // A hostile deep document is rejected instead of overflowing the
        // recursive-descent stack …
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).expect_err("deep nesting rejected");
        assert!(err.reason.contains("nesting"), "{}", err.reason);
        // … while wide documents (many siblings, shallow) stay fine.
        let wide = format!("[{}]", vec!["[]"; 10_000].join(","));
        assert!(Json::parse(&wide).is_ok(), "breadth must not hit the cap");
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in ["", "{", "[1,", "{\"a\"1}", "tru", "\"unterminated", "1 2"] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.offset <= bad.len());
            assert!(!err.reason.is_empty());
        }
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(0.125).to_string(), "0.125");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert!(Json::Num(-1.0).as_u64().is_none());
        assert!(Json::Num(1.5).as_u64().is_none());
    }

    #[test]
    fn pretty_output_parses_back() {
        let doc = Json::obj()
            .field("bench_format", 1u64)
            .field(
                "backends",
                Json::Arr(vec![
                    Json::obj().field("backend", "serial").field("x", 1.5),
                    Json::obj()
                        .field("backend", "worker-pool(2)")
                        .field("x", 0.9),
                ]),
            )
            .field("empty_arr", Json::Arr(vec![]))
            .field("empty_obj", Json::obj());
        let pretty = doc.to_pretty();
        assert!(pretty.contains("\n  \"backends\": ["));
        assert_eq!(Json::parse(&pretty).expect("pretty parses"), doc);
    }
}
