//! The multi-session scheduler: N concurrent prediction runs multiplexed
//! fairly over **one** shared evaluation backend.
//!
//! Each submitted [`RunSpec`] becomes one [`PredictionSession`] per
//! replicate, all built on the scheduler's [`SharedScenarioPool`] — the
//! sessions share the process's worker threads instead of each spawning
//! their own (the old batch API built a fresh pool per run per step).
//! [`Scheduler::round`] advances the sessions its [`SchedulePolicy`]
//! plans — by default every live session, one step each, in submission
//! order ([`crate::policy::RoundRobin`]), so no session can starve
//! another: a 12-step run and a 2-step run interleave step-by-step, and
//! the short one completes while the long one is still going. Other
//! policies (weighted fair share, deadline first) reorder or throttle the
//! rounds without changing any session's results. Cancellation between
//! steps is a plain method call because nothing blocks: the scheduler is
//! single-threaded at the session level and parallel at the scenario
//! level, exactly the paper's Master/Worker shape lifted one level up.

use crate::policy::{PolicyKind, SchedulePolicy, SessionMeta};
use crate::session::{PredictionSession, SessionEvent, StepPlan};
use crate::spec::RunSpec;
use ess::error::{BudgetReason, ServiceError};
use ess::fitness::{DynBackend, EvalBackend, ScenarioEvaluator, SharedScenarioPool};
use ess::fusion::{run_coordinator, FusionLane, LaneGuard};
use ess::pipeline::{RunReport, StepReport};
use parworker::Stopwatch;
use std::sync::Arc;

/// Scheduler-assigned session handle.
pub type SessionId = u64;

/// How a scheduled session ended.
#[derive(Debug, Clone)]
pub enum SessionOutcome {
    /// All steps ran; the full report.
    Finished(RunReport),
    /// A budget or cancellation stopped it; the partial report.
    Exhausted {
        /// Which budget fired ([`BudgetReason::Cancelled`] for explicit
        /// cancellation).
        reason: BudgetReason,
        /// Steps completed before the stop.
        partial: RunReport,
    },
}

impl SessionOutcome {
    /// The report either way (full or partial).
    pub fn report(&self) -> &RunReport {
        match self {
            SessionOutcome::Finished(r) => r,
            SessionOutcome::Exhausted { partial, .. } => partial,
        }
    }

    /// True for [`SessionOutcome::Finished`].
    pub fn is_finished(&self) -> bool {
        matches!(self, SessionOutcome::Finished(_))
    }
}

/// What a [`Scheduler::drain_controlled`] callback tells the scheduler to
/// do after each event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainSignal {
    /// Keep draining.
    Continue,
    /// Cancel this session after the current round (cancelling the
    /// session the event belongs to, or any other live one, is equally
    /// valid — unknown or already-finished ids are ignored).
    Cancel(SessionId),
}

/// Policy-driven multiplexer of prediction sessions over one shared
/// scenario-evaluation pool.
pub struct Scheduler {
    pool: Arc<SharedScenarioPool>,
    policy: Box<dyn SchedulePolicy>,
    next_id: SessionId,
    live: Vec<(SessionId, PredictionSession)>,
    done: Vec<(SessionId, SessionOutcome)>,
    fused: bool,
}

impl Scheduler {
    /// A round-robin scheduler whose sessions share one pool built from
    /// `spec`.
    pub fn new(spec: EvalBackend) -> Self {
        Self::with_policy(spec, PolicyKind::RoundRobin)
    }

    /// A scheduler running `policy` over one pool built from `spec`.
    pub fn with_policy(spec: EvalBackend, policy: PolicyKind) -> Self {
        Self::on_pool_with(Arc::new(SharedScenarioPool::new(spec)), policy.build())
    }

    /// A round-robin scheduler over an existing shared pool (several
    /// schedulers, or a scheduler plus ad-hoc sessions, can share one
    /// substrate).
    pub fn on_pool(pool: Arc<SharedScenarioPool>) -> Self {
        Self::on_pool_with(pool, PolicyKind::RoundRobin.build())
    }

    /// A scheduler running any [`SchedulePolicy`] object over an existing
    /// shared pool — the fully pluggable constructor.
    pub fn on_pool_with(pool: Arc<SharedScenarioPool>, policy: Box<dyn SchedulePolicy>) -> Self {
        Self {
            pool,
            policy,
            next_id: 1,
            live: Vec::new(),
            done: Vec::new(),
            fused: false,
        }
    }

    /// Switches batch fusion on or off (off by default). A fused round
    /// runs every planned session's step concurrently on lane threads
    /// whose evaluation batches are fused into one mega-batch per wave on
    /// the shared pool ([`ess::fusion`]) — same events, same reports, bit
    /// for bit, but the backend sees `sessions × population` scenarios per
    /// submission instead of `population`.
    pub fn set_fused(&mut self, fused: bool) {
        self.fused = fused;
    }

    /// Whether rounds fuse session batches.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Report name of the scheduling policy in force.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Swaps the scheduling policy between rounds.
    pub fn set_policy(&mut self, policy: Box<dyn SchedulePolicy>) {
        self.policy = policy;
    }

    /// The shared evaluation pool.
    pub fn pool(&self) -> &Arc<SharedScenarioPool> {
        &self.pool
    }

    /// Submits every replicate of `spec` as a session on the shared pool;
    /// returns the assigned ids in replicate order.
    ///
    /// # Errors
    /// Unknown-name and bad-spec errors; nothing is enqueued on error.
    pub fn submit(&mut self, spec: &RunSpec) -> Result<Vec<SessionId>, ServiceError> {
        let sessions = spec.sessions_on(&self.pool)?;
        Ok(sessions
            .into_iter()
            .map(|s| self.submit_session(s))
            .collect())
    }

    /// Enqueues an already-built session (it should share this
    /// scheduler's pool, but any session is accepted).
    pub fn submit_session(&mut self, session: PredictionSession) -> SessionId {
        let id = self.next_id;
        self.next_id += 1;
        self.live.push((id, session));
        id
    }

    /// Cancels a live session between steps. Returns `false` when the id
    /// is unknown or the session already finished.
    pub fn cancel(&mut self, id: SessionId) -> bool {
        let Some(pos) = self.live.iter().position(|(sid, _)| *sid == id) else {
            return false;
        };
        let (id, mut session) = self.live.remove(pos);
        session.cancel();
        self.done.push((
            id,
            SessionOutcome::Exhausted {
                reason: BudgetReason::Cancelled,
                partial: session.report(),
            },
        ));
        true
    }

    /// Sessions still running.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Read access to the live sessions (id, session), submission order.
    pub fn live(&self) -> impl Iterator<Item = (SessionId, &PredictionSession)> {
        self.live.iter().map(|(id, s)| (*id, s))
    }

    /// Outcomes of every completed/cancelled session so far.
    pub fn outcomes(&self) -> &[(SessionId, SessionOutcome)] {
        &self.done
    }

    /// Removes and returns every recorded outcome. Long-running callers
    /// (the serve loop) call this after reading a drain's results so a
    /// scheduler that lives for the process does not accumulate every
    /// session's full report forever.
    pub fn take_outcomes(&mut self) -> Vec<(SessionId, SessionOutcome)> {
        std::mem::take(&mut self.done)
    }

    /// What the policy may observe about the live sessions, submission
    /// order (parallel to the internal live list).
    fn metas(&self) -> Vec<SessionMeta> {
        self.live
            .iter()
            .map(|(id, s)| SessionMeta {
                id: *id,
                completed: s.steps().len(),
                total_steps: s.total_steps(),
                evaluations_spent: s.evaluations_spent(),
                weight: s.weight(),
                deadline: s.deadline_remaining(),
            })
            .collect()
    }

    /// The policy's plan with the shared sanitation applied: out-of-range
    /// and duplicate entries are dropped, and an empty plan falls back to
    /// the oldest session — a misbehaving policy cannot stall a drain.
    fn planned_indices(&mut self) -> Vec<usize> {
        let mut plan = self.policy.plan(&self.metas());
        let mut seen = vec![false; self.live.len()];
        plan.retain(|&i| match seen.get_mut(i) {
            Some(slot) => !std::mem::replace(slot, true),
            None => false,
        });
        if plan.is_empty() {
            plan.push(0);
        }
        plan
    }

    /// Books a terminal event into [`Scheduler::outcomes`].
    fn record_outcome(&mut self, id: SessionId, event: &SessionEvent) {
        match event {
            SessionEvent::StepCompleted(_) => {}
            SessionEvent::Finished(report) => {
                self.done
                    .push((id, SessionOutcome::Finished(report.clone())));
            }
            SessionEvent::BudgetExhausted { reason, partial } => {
                self.done.push((
                    id,
                    SessionOutcome::Exhausted {
                        reason: *reason,
                        partial: partial.clone(),
                    },
                ));
            }
        }
    }

    /// Runs one scheduling round: asks the policy which live sessions to
    /// advance (by one step each, in plan order) and returns the produced
    /// events. Sessions that reach a terminal event move to
    /// [`Scheduler::outcomes`]. Out-of-range or duplicate plan entries are
    /// ignored, and an empty plan falls back to advancing the oldest
    /// session — a misbehaving policy cannot stall a drain.
    ///
    /// With [`Scheduler::set_fused`] on, the planned steps run
    /// concurrently with their evaluation batches fused — events (in plan
    /// order), reports and outcomes are bit-identical either way.
    pub fn round(&mut self) -> Vec<(SessionId, SessionEvent)> {
        if self.live.is_empty() {
            return Vec::new();
        }
        if self.fused {
            return self.round_fused();
        }
        let plan = self.planned_indices();
        let mut events = Vec::with_capacity(plan.len());
        for i in plan {
            let Some(entry) = self.live.get_mut(i) else {
                continue; // planned_indices already dropped out-of-range entries
            };
            let id = entry.0;
            let event = entry.1.advance();
            self.record_outcome(id, &event);
            events.push((id, event));
        }
        self.live.retain(|(_, s)| !s.is_done());
        events
    }

    /// The fused round: plan → fuse → scatter.
    ///
    /// 1. **Plan** every scheduled session on this thread
    ///    ([`PredictionSession::plan_step`] — sticky terminals, finished
    ///    runs and fired budgets settle immediately, exactly as `advance`
    ///    would).
    /// 2. **Fuse**: each `Ready` session's step runs on its own scoped
    ///    lane thread ([`PredictionSession::step_parts`] moves only the
    ///    driver and optimizer across; observers stay here), with a
    ///    [`FusionLane`] backend that parks each evaluation batch with the
    ///    round coordinator running on this thread. The coordinator fuses
    ///    the parked batches into one mega-batch per wave on the shared
    ///    pool and scatters the fitness vectors back, so every lane sees
    ///    private-evaluator semantics.
    /// 3. **Scatter** the step reports back in plan order via
    ///    [`PredictionSession::complete_step`], which notifies observers
    ///    and books budgets on the scheduler thread.
    fn round_fused(&mut self) -> Vec<(SessionId, SessionEvent)> {
        enum Planned {
            Settled(SessionEvent),
            Runnable { live_idx: usize, slot: usize },
        }

        let plan = self.planned_indices();
        let mut entries: Vec<(SessionId, Planned)> = Vec::with_capacity(plan.len());
        let mut runnable: Vec<usize> = Vec::new();
        for i in plan {
            let Some(entry) = self.live.get_mut(i) else {
                continue; // planned_indices already dropped out-of-range entries
            };
            let id = entry.0;
            match entry.1.plan_step() {
                StepPlan::Settled(event) => entries.push((id, Planned::Settled(event))),
                StepPlan::Ready => {
                    let slot = runnable.len();
                    entries.push((id, Planned::Runnable { live_idx: i, slot }));
                    runnable.push(i);
                }
            }
        }

        let mut stepped: Vec<Option<(StepReport, f64)>> = Vec::new();
        stepped.resize_with(runnable.len(), || None);
        if !runnable.is_empty() {
            let mut slot_of: Vec<Option<usize>> = vec![None; self.live.len()];
            for (slot, &i) in runnable.iter().enumerate() {
                if let Some(entry) = slot_of.get_mut(i) {
                    *entry = Some(slot);
                }
            }
            // Disjoint mutable borrows of the runnable sessions; the
            // sessions stay in place, only their step halves cross into
            // the lane threads.
            let lanes: Vec<(usize, &mut PredictionSession)> = self
                .live
                .iter_mut()
                .enumerate()
                .filter_map(|(i, (_, s))| slot_of.get(i).copied().flatten().map(|slot| (slot, s)))
                .collect();
            let lane_count = lanes.len();
            let (tx, rx) = std::sync::mpsc::channel();
            let (report_tx, report_rx) = std::sync::mpsc::channel();
            // audit: allow(layer) — fused-round lanes are scoped threads joined before the round returns; evaluation still flows through the shared pool
            std::thread::scope(|scope| {
                for (slot, session) in lanes {
                    let lane = tx.clone();
                    let reports = report_tx.clone();
                    let (driver, optimizer) = session.step_parts();
                    // lint: allow(thread-spawn) — fused-round lanes are scoped threads joined before the round returns; evaluation still flows through the shared pool
                    scope.spawn(move || {
                        // However this thread exits — step done, step
                        // panicked, no evaluator ever built — tell the
                        // coordinator the lane is finished, or its peers
                        // would wait on a flush forever.
                        let _done = LaneGuard::new(lane.clone());
                        let sw = Stopwatch::start();
                        let step = driver.step_with(optimizer, move |ctx| {
                            let backend: DynBackend =
                                Box::new(FusionLane::new(Arc::clone(&ctx), lane));
                            ScenarioEvaluator::with_backend(ctx, backend)
                        });
                        let elapsed = sw.elapsed_ms();
                        if let Some(step) = step {
                            let _ = reports.send((slot, step, elapsed));
                        }
                    });
                }
                drop(tx);
                drop(report_tx);
                run_coordinator(&self.pool, &rx, lane_count);
            });
            for (slot, step, elapsed) in report_rx.try_iter() {
                if let Some(entry) = stepped.get_mut(slot) {
                    *entry = Some((step, elapsed));
                }
            }
        }

        let mut events = Vec::with_capacity(entries.len());
        for (id, planned) in entries {
            let event = match planned {
                Planned::Settled(event) => event,
                Planned::Runnable { live_idx, slot } => {
                    let (step, elapsed) = stepped
                        .get_mut(slot)
                        .and_then(Option::take)
                        // audit: allow(panic) — a missing lane report only follows a lane-thread panic mid-step; amplifying it is the designed failure mode
                        .expect("a planned Ready step always produces a report");
                    match self.live.get_mut(live_idx) {
                        Some(entry) => entry.1.complete_step(step, elapsed),
                        None => continue, // live_idx came from planned_indices
                    }
                }
            };
            self.record_outcome(id, &event);
            events.push((id, event));
        }
        self.live.retain(|(_, s)| !s.is_done());
        events
    }

    /// Runs rounds until no session is live; `on_event` observes every
    /// event as it happens (step streaming for the serve protocol).
    pub fn drain_with(
        &mut self,
        mut on_event: impl FnMut(SessionId, &SessionEvent),
    ) -> &[(SessionId, SessionOutcome)] {
        self.drain_controlled(|id, event| {
            on_event(id, event);
            DrainSignal::Continue
        })
    }

    /// [`Scheduler::drain_with`] where the callback can also steer the
    /// drain: returning [`DrainSignal::Cancel`] cancels the named session
    /// after the current round (its outcome is recorded as cancelled with
    /// the steps completed so far; every other session drains normally).
    pub fn drain_controlled(
        &mut self,
        mut on_event: impl FnMut(SessionId, &SessionEvent) -> DrainSignal,
    ) -> &[(SessionId, SessionOutcome)] {
        while !self.live.is_empty() {
            let mut cancels = Vec::new();
            for (id, event) in self.round() {
                if let DrainSignal::Cancel(victim) = on_event(id, &event) {
                    cancels.push(victim);
                }
            }
            for victim in cancels {
                self.cancel(victim);
            }
        }
        &self.done
    }

    /// Runs rounds until no session is live and returns every outcome.
    pub fn drain(&mut self) -> &[(SessionId, SessionOutcome)] {
        self.drain_with(|_, _| {})
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("backend", &self.pool.name())
            .field("policy", &self.policy.name())
            .field("live", &self.live.len())
            .field("done", &self.done.len())
            .finish()
    }
}
