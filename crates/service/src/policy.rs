//! Pluggable scheduling policies: *which* live sessions advance in a
//! scheduler round, and in what order.
//!
//! The PR 3 scheduler hard-wired one discipline — every live session, one
//! step each, submission order. That is [`RoundRobin`] here; protocol v2
//! makes the discipline a [`SchedulePolicy`] object selected per `serve`
//! invocation ([`PolicyKind`] parses the `--policy` flag), so a deployment
//! can also run:
//!
//! * [`WeightedFairShare`] — each round advances the session(s) with the
//!   lowest *virtual time* `completed_steps / weight`, so a weight-2
//!   session receives twice the step rate of a weight-1 peer;
//! * [`DeadlineFirst`] — every session still advances each round, but
//!   deadline-constrained sessions go first (nearest deadline wins),
//!   so urgent work is never stuck behind unconstrained batch runs.
//!
//! Sessions are deterministic given their spec and seed — per-step seeds
//! depend only on the session's own seed stream, never on scheduling
//! order — so every policy produces bit-identical per-session reports;
//! policies change *latency and fairness*, not results. The loadgen
//! harness asserts exactly that.

use crate::scheduler::SessionId;
use std::fmt;
use std::str::FromStr;
use std::time::Duration;

/// What a policy may observe about one live session when planning a round.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Scheduler-assigned id.
    pub id: SessionId,
    /// Prediction steps completed so far.
    pub completed: usize,
    /// Steps a full run would execute.
    pub total_steps: usize,
    /// Scenario evaluations spent so far.
    pub evaluations_spent: u64,
    /// Fair-share weight from the spec (≥ `0`, default 1).
    pub weight: f64,
    /// Wall-clock time *remaining* before the deadline budget fires, when
    /// the spec set one (recomputed every round, so urgency reflects how
    /// long each session has already been running).
    pub deadline: Option<Duration>,
}

/// A round-planning discipline. [`SchedulePolicy::plan`] receives the live
/// sessions in submission order and returns the indices to advance this
/// round, in execution order. Indices out of range or repeated are
/// ignored; an empty plan falls back to advancing the oldest session, so
/// no policy can livelock a drain.
pub trait SchedulePolicy: Send {
    /// Report name of the policy.
    fn name(&self) -> &'static str;

    /// Indices into `live` to advance this round, in order.
    fn plan(&mut self, live: &[SessionMeta]) -> Vec<usize>;
}

/// Every live session advances one step per round, submission order — the
/// PR 3 behaviour, and the default.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl SchedulePolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn plan(&mut self, live: &[SessionMeta]) -> Vec<usize> {
        (0..live.len()).collect()
    }
}

/// Advances the session(s) whose virtual time `completed / weight` is
/// minimal (all ties advance, submission order), so step rates converge to
/// the weight ratios: over any window, a weight-2 session completes ~2×
/// the steps of a weight-1 session.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedFairShare;

impl WeightedFairShare {
    fn virtual_time(meta: &SessionMeta) -> f64 {
        // Weights are validated positive by `RunSpec::validate`; guard
        // anyway so a hand-built session cannot produce NaN ordering.
        meta.completed as f64 / meta.weight.max(f64::MIN_POSITIVE)
    }
}

impl SchedulePolicy for WeightedFairShare {
    fn name(&self) -> &'static str {
        "weighted-fair-share"
    }

    fn plan(&mut self, live: &[SessionMeta]) -> Vec<usize> {
        let Some(min) = live.iter().map(Self::virtual_time).min_by(f64::total_cmp) else {
            return Vec::new();
        };
        live.iter()
            .enumerate()
            .filter(|(_, meta)| Self::virtual_time(meta).total_cmp(&min).is_eq())
            .map(|(i, _)| i)
            .collect()
    }
}

/// Every live session advances each round (no starvation), ordered by
/// urgency: least wall-clock time remaining before its deadline first
/// ([`SessionMeta::deadline`] is the *remaining* time, recomputed every
/// round), deadline-free sessions last, ties by submission order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadlineFirst;

impl SchedulePolicy for DeadlineFirst {
    fn name(&self) -> &'static str {
        "deadline-first"
    }

    fn plan(&mut self, live: &[SessionMeta]) -> Vec<usize> {
        let mut order: Vec<(Duration, usize)> = live
            .iter()
            .enumerate()
            .map(|(i, meta)| (meta.deadline.unwrap_or(Duration::MAX), i))
            .collect();
        order.sort();
        order.into_iter().map(|(_, i)| i).collect()
    }
}

/// The nameable policies — the value the `serve --policy` flag and the
/// loadgen sweep select by. Parses from `round-robin` / `rr`,
/// `weighted-fair-share` / `wfs` / `fair`, `deadline-first` / `deadline` /
/// `edf`; the `Display` form round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// [`RoundRobin`].
    #[default]
    RoundRobin,
    /// [`WeightedFairShare`].
    WeightedFairShare,
    /// [`DeadlineFirst`].
    DeadlineFirst,
}

impl PolicyKind {
    /// Every selectable policy, declaration order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::RoundRobin,
        PolicyKind::WeightedFairShare,
        PolicyKind::DeadlineFirst,
    ];

    /// Canonical name (the `Display`/`FromStr` round-trip form).
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::WeightedFairShare => "weighted-fair-share",
            PolicyKind::DeadlineFirst => "deadline-first",
        }
    }

    /// Instantiates the policy object.
    pub fn build(&self) -> Box<dyn SchedulePolicy> {
        match self {
            PolicyKind::RoundRobin => Box::new(RoundRobin),
            PolicyKind::WeightedFairShare => Box::new(WeightedFairShare),
            PolicyKind::DeadlineFirst => Box::new(DeadlineFirst),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`PolicyKind`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scheduling policy '{}' (expected round-robin | weighted-fair-share | deadline-first)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for PolicyKind {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "round-robin" | "roundrobin" | "rr" => Ok(PolicyKind::RoundRobin),
            "weighted-fair-share" | "wfs" | "fair" => Ok(PolicyKind::WeightedFairShare),
            "deadline-first" | "deadline" | "edf" => Ok(PolicyKind::DeadlineFirst),
            _ => Err(ParsePolicyError(s.into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(id: SessionId, completed: usize, weight: f64, deadline_ms: Option<u64>) -> SessionMeta {
        SessionMeta {
            id,
            completed,
            total_steps: 10,
            evaluations_spent: 0,
            weight,
            deadline: deadline_ms.map(Duration::from_millis),
        }
    }

    #[test]
    fn round_robin_advances_everyone_in_submission_order() {
        let live = vec![meta(1, 0, 1.0, None), meta(2, 5, 1.0, None)];
        assert_eq!(RoundRobin.plan(&live), vec![0, 1]);
        assert!(RoundRobin.plan(&[]).is_empty());
    }

    #[test]
    fn weighted_fair_share_tracks_virtual_time() {
        // Session 2 has weight 2: it lags in virtual time until it has
        // run twice as many steps as session 1.
        let mut policy = WeightedFairShare;
        assert_eq!(
            policy.plan(&[meta(1, 1, 1.0, None), meta(2, 1, 2.0, None)]),
            vec![1]
        );
        // Equal virtual times all advance (ties keep submission order).
        assert_eq!(
            policy.plan(&[meta(1, 1, 1.0, None), meta(2, 2, 2.0, None)]),
            vec![0, 1]
        );
    }

    #[test]
    fn deadline_first_orders_by_urgency_without_starvation() {
        let live = vec![
            meta(1, 0, 1.0, None),
            meta(2, 0, 1.0, Some(5_000)),
            meta(3, 0, 1.0, Some(1_000)),
        ];
        // Everyone advances; the tightest deadline goes first and the
        // deadline-free session last.
        assert_eq!(DeadlineFirst.plan(&live), vec![2, 1, 0]);
    }

    #[test]
    fn policy_kind_names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(kind.name().parse::<PolicyKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        for (alias, kind) in [
            ("rr", PolicyKind::RoundRobin),
            ("WFS", PolicyKind::WeightedFairShare),
            ("edf", PolicyKind::DeadlineFirst),
        ] {
            assert_eq!(alias.parse::<PolicyKind>().unwrap(), kind);
        }
        assert!("fifo".parse::<PolicyKind>().is_err());
        assert_eq!(PolicyKind::default(), PolicyKind::RoundRobin);
    }
}
